//! Individual optimizer rules.

use ivm_sql::ast::BinaryOp;

use crate::expr::{flatten_and, BoundExpr};
use crate::planner::physical::PhysicalPlan;
use crate::planner::LogicalPlan;
use crate::schema::Schema;
use crate::types::DataType;
use crate::value::Value;

/// Fold constant sub-expressions throughout the plan.
pub(crate) fn fold_constants(plan: LogicalPlan) -> LogicalPlan {
    map_exprs(plan, &fold_expr)
}

/// Remove filters whose predicate folded to literal TRUE.
pub(crate) fn remove_trivial_filters(plan: LogicalPlan) -> LogicalPlan {
    transform_up(plan, &|node| match node {
        LogicalPlan::Filter {
            input,
            predicate: BoundExpr::Literal(Value::Boolean(true)),
        } => *input,
        other => other,
    })
}

/// Push filters through projections and into join inputs when every
/// referenced column comes from one side.
pub(crate) fn push_down_filters(plan: LogicalPlan) -> LogicalPlan {
    transform_up(plan, &|node| {
        let LogicalPlan::Filter { input, predicate } = node else {
            return node;
        };
        match *input {
            // Filter(Project(x)) → Project(Filter'(x)) when the predicate
            // only references pass-through columns (plain column refs).
            LogicalPlan::Project {
                input: pinput,
                exprs,
                schema,
            } => {
                let mut cols = Vec::new();
                predicate.referenced_columns(&mut cols);
                let all_passthrough = cols
                    .iter()
                    .all(|&c| matches!(exprs.get(c), Some(BoundExpr::Column { .. })));
                if all_passthrough {
                    let mut pushed = predicate.clone();
                    pushed.remap_columns(&|c| match &exprs[c] {
                        BoundExpr::Column { index, .. } => *index,
                        _ => unreachable!("checked passthrough"),
                    });
                    LogicalPlan::Project {
                        input: Box::new(LogicalPlan::Filter {
                            input: pinput,
                            predicate: pushed,
                        }),
                        exprs,
                        schema,
                    }
                } else {
                    LogicalPlan::Filter {
                        input: Box::new(LogicalPlan::Project {
                            input: pinput,
                            exprs,
                            schema,
                        }),
                        predicate,
                    }
                }
            }
            // Filter(InnerJoin(l, r)) → push single-side conjuncts down.
            LogicalPlan::Join {
                left,
                right,
                kind,
                on,
                schema,
            } if kind == ivm_sql::ast::JoinKind::Inner => {
                let lwidth = left.schema().len();
                let mut conjuncts = Vec::new();
                flatten_and(&predicate, &mut conjuncts);
                let mut left_preds = Vec::new();
                let mut right_preds = Vec::new();
                let mut keep = Vec::new();
                for c in conjuncts {
                    let mut cols = Vec::new();
                    c.referenced_columns(&mut cols);
                    if !cols.is_empty() && cols.iter().all(|&i| i < lwidth) {
                        left_preds.push(c);
                    } else if !cols.is_empty() && cols.iter().all(|&i| i >= lwidth) {
                        let mut shifted = c.clone();
                        shifted.remap_columns(&|i| i - lwidth);
                        right_preds.push(shifted);
                    } else {
                        keep.push(c);
                    }
                }
                let new_left = wrap_filter(*left, left_preds);
                let new_right = wrap_filter(*right, right_preds);
                let joined = LogicalPlan::Join {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    kind,
                    on,
                    schema,
                };
                wrap_filter(joined, keep)
            }
            other => LogicalPlan::Filter {
                input: Box::new(other),
                predicate,
            },
        }
    })
}

/// Physical rule: fold `Filter` nodes sitting directly on a `TableScan`
/// into the scan itself, so storage evaluates the predicate per chunk
/// (and can answer `column = literal` conjuncts through an ART index).
/// Runs after lowering, over the whole physical tree.
pub(crate) fn push_scan_predicates(plan: PhysicalPlan) -> PhysicalPlan {
    transform_physical_up(plan, &|node| {
        let PhysicalPlan::Filter { input, predicate } = node else {
            return node;
        };
        match *input {
            PhysicalPlan::TableScan {
                table,
                schema,
                predicate: existing,
                ..
            } => {
                let merged = match existing {
                    Some(e) => BoundExpr::Binary {
                        op: BinaryOp::And,
                        left: Box::new(e),
                        right: Box::new(predicate),
                    },
                    None => predicate,
                };
                let index_eq = index_equality_keys(&merged, &schema);
                PhysicalPlan::TableScan {
                    table,
                    schema,
                    predicate: Some(merged),
                    index_eq,
                }
            }
            other => PhysicalPlan::Filter {
                input: Box::new(other),
                predicate,
            },
        }
    })
}

/// Extract `column = literal` conjuncts usable as ART lookup keys. The
/// literal must match the column's declared type exactly; DOUBLE columns
/// are excluded because they may physically store INTEGER values whose
/// index encoding differs from an equal DOUBLE literal.
fn index_equality_keys(predicate: &BoundExpr, schema: &Schema) -> Vec<(usize, Value)> {
    let mut conjuncts = Vec::new();
    flatten_and(predicate, &mut conjuncts);
    let mut keys = Vec::new();
    for c in &conjuncts {
        let BoundExpr::Binary {
            op: BinaryOp::Eq,
            left,
            right,
        } = c
        else {
            continue;
        };
        let (index, lit) = match (left.as_ref(), right.as_ref()) {
            (BoundExpr::Column { index, .. }, BoundExpr::Literal(v))
            | (BoundExpr::Literal(v), BoundExpr::Column { index, .. }) => (*index, v),
            _ => continue,
        };
        let Some(col) = schema.columns.get(index) else {
            continue;
        };
        if col.ty == DataType::Double || lit.data_type() != Some(col.ty) {
            continue;
        }
        keys.push((index, lit.clone()));
    }
    keys
}

/// Bottom-up transformation over a physical plan.
fn transform_physical_up(
    plan: PhysicalPlan,
    f: &impl Fn(PhysicalPlan) -> PhysicalPlan,
) -> PhysicalPlan {
    let with_children = match plan {
        PhysicalPlan::TableScan { .. } | PhysicalPlan::Dual => plan,
        PhysicalPlan::Filter { input, predicate } => PhysicalPlan::Filter {
            input: Box::new(transform_physical_up(*input, f)),
            predicate,
        },
        PhysicalPlan::Project {
            input,
            exprs,
            schema,
        } => PhysicalPlan::Project {
            input: Box::new(transform_physical_up(*input, f)),
            exprs,
            schema,
        },
        PhysicalPlan::HashJoin {
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
            join,
            schema,
        } => PhysicalPlan::HashJoin {
            probe: Box::new(transform_physical_up(*probe, f)),
            build: Box::new(transform_physical_up(*build, f)),
            probe_keys,
            build_keys,
            residual,
            join,
            schema,
        },
        PhysicalPlan::NestedLoopJoin {
            probe,
            build,
            on,
            join,
            schema,
        } => PhysicalPlan::NestedLoopJoin {
            probe: Box::new(transform_physical_up(*probe, f)),
            build: Box::new(transform_physical_up(*build, f)),
            on,
            join,
            schema,
        },
        PhysicalPlan::HashAggregate {
            input,
            group,
            aggs,
            mode,
            schema,
        } => PhysicalPlan::HashAggregate {
            input: Box::new(transform_physical_up(*input, f)),
            group,
            aggs,
            mode,
            schema,
        },
        PhysicalPlan::SetOp {
            op,
            all,
            left,
            right,
            schema,
        } => PhysicalPlan::SetOp {
            op,
            all,
            left: Box::new(transform_physical_up(*left, f)),
            right: Box::new(transform_physical_up(*right, f)),
            schema,
        },
        PhysicalPlan::Distinct { input } => PhysicalPlan::Distinct {
            input: Box::new(transform_physical_up(*input, f)),
        },
        PhysicalPlan::Sort { input, keys } => PhysicalPlan::Sort {
            input: Box::new(transform_physical_up(*input, f)),
            keys,
        },
        PhysicalPlan::TopK {
            input,
            keys,
            limit,
            offset,
        } => PhysicalPlan::TopK {
            input: Box::new(transform_physical_up(*input, f)),
            keys,
            limit,
            offset,
        },
        PhysicalPlan::Limit {
            input,
            limit,
            offset,
        } => PhysicalPlan::Limit {
            input: Box::new(transform_physical_up(*input, f)),
            limit,
            offset,
        },
    };
    f(with_children)
}

fn wrap_filter(plan: LogicalPlan, preds: Vec<BoundExpr>) -> LogicalPlan {
    match preds.into_iter().reduce(|l, r| BoundExpr::Binary {
        op: BinaryOp::And,
        left: Box::new(l),
        right: Box::new(r),
    }) {
        Some(predicate) => LogicalPlan::Filter {
            input: Box::new(plan),
            predicate,
        },
        None => plan,
    }
}

/// Bottom-up plan transformation.
fn transform_up(plan: LogicalPlan, f: &impl Fn(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    let with_children = match plan {
        LogicalPlan::Scan { .. } | LogicalPlan::Dual { .. } => plan,
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(transform_up(*input, f)),
            predicate,
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(transform_up(*input, f)),
            exprs,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(transform_up(*input, f)),
            group,
            aggs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(transform_up(*left, f)),
            right: Box::new(transform_up(*right, f)),
            kind,
            on,
            schema,
        },
        LogicalPlan::SetOp {
            op,
            all,
            left,
            right,
            schema,
        } => LogicalPlan::SetOp {
            op,
            all,
            left: Box::new(transform_up(*left, f)),
            right: Box::new(transform_up(*right, f)),
            schema,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(transform_up(*input, f)),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(transform_up(*input, f)),
            keys,
        },
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(transform_up(*input, f)),
            limit,
            offset,
        },
    };
    f(with_children)
}

/// Apply an expression rewriter to every expression in the plan.
fn map_exprs(plan: LogicalPlan, f: &impl Fn(BoundExpr) -> BoundExpr) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { .. } | LogicalPlan::Dual { .. } => plan,
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(map_exprs(*input, f)),
            predicate: f(predicate),
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(map_exprs(*input, f)),
            exprs: exprs.into_iter().map(f).collect(),
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(map_exprs(*input, f)),
            group: group.into_iter().map(f).collect(),
            aggs: aggs
                .into_iter()
                .map(|mut a| {
                    a.arg = a.arg.map(f);
                    a
                })
                .collect(),
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(map_exprs(*left, f)),
            right: Box::new(map_exprs(*right, f)),
            kind,
            on: on.map(f),
            schema,
        },
        LogicalPlan::SetOp {
            op,
            all,
            left,
            right,
            schema,
        } => LogicalPlan::SetOp {
            op,
            all,
            left: Box::new(map_exprs(*left, f)),
            right: Box::new(map_exprs(*right, f)),
            schema,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(map_exprs(*input, f)),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(map_exprs(*input, f)),
            keys: keys
                .into_iter()
                .map(|mut k| {
                    k.expr = f(k.expr);
                    k
                })
                .collect(),
        },
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(map_exprs(*input, f)),
            limit,
            offset,
        },
    }
}

/// Recursively fold constant sub-expressions. Folding is best-effort: any
/// evaluation error (overflow, bad cast) leaves the expression unfolded so
/// the runtime reports it in context.
fn fold_expr(e: BoundExpr) -> BoundExpr {
    // First fold children.
    let e = match e {
        BoundExpr::Binary { op, left, right } => BoundExpr::Binary {
            op,
            left: Box::new(fold_expr(*left)),
            right: Box::new(fold_expr(*right)),
        },
        BoundExpr::Unary { op, expr } => BoundExpr::Unary {
            op,
            expr: Box::new(fold_expr(*expr)),
        },
        BoundExpr::Case {
            branches,
            else_result,
        } => BoundExpr::Case {
            branches: branches
                .into_iter()
                .map(|(w, t)| (fold_expr(w), fold_expr(t)))
                .collect(),
            else_result: else_result.map(|b| Box::new(fold_expr(*b))),
        },
        BoundExpr::Cast { expr, ty } => BoundExpr::Cast {
            expr: Box::new(fold_expr(*expr)),
            ty,
        },
        BoundExpr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(fold_expr(*expr)),
            negated,
        },
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => BoundExpr::InList {
            expr: Box::new(fold_expr(*expr)),
            list: list.into_iter().map(fold_expr).collect(),
            negated,
        },
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => BoundExpr::Like {
            expr: Box::new(fold_expr(*expr)),
            pattern: Box::new(fold_expr(*pattern)),
            negated,
        },
        BoundExpr::ScalarFn { func, args } => BoundExpr::ScalarFn {
            func,
            args: args.into_iter().map(fold_expr).collect(),
        },
        other => other,
    };
    // Then fold this node if it became constant (subqueries excluded).
    if !matches!(e, BoundExpr::Literal(_)) && e.is_constant() {
        if let Ok(v) = e.eval(&[]) {
            return BoundExpr::Literal(v);
        }
    }
    e
}
