//! Query binder: turns an AST [`Query`] into a [`LogicalPlan`].

use ivm_sql::ast::{Expr, JoinKind, Literal, Query, Select, SelectItem, SetExpr, SetOp, TableRef};
use ivm_sql::{print_expr, Dialect};

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::expr::{bind::bind_expr_with, AggExpr, AggFunc, BindColumn, BoundExpr, Scope};
use crate::planner::{LogicalPlan, SetOpKind, SortKey};
use crate::schema::{Column, Schema};
use crate::types::DataType;

/// Plan a query against the catalog.
pub fn plan_query(query: &Query, catalog: &Catalog) -> Result<LogicalPlan, EngineError> {
    let mut binder = QueryBinder {
        catalog,
        ctes: Vec::new(),
    };
    let (plan, _) = binder.plan_query(query)?;
    Ok(plan)
}

/// A planned relation plus its binder scope; plain SELECTs also expose the
/// pre-projection pair so ORDER BY can sort on input columns.
type PlannedSelect = (LogicalPlan, Scope, Option<(LogicalPlan, Scope)>);

struct QueryBinder<'a> {
    catalog: &'a Catalog,
    /// CTE environment: name → planned body (cloned per reference).
    ctes: Vec<(String, LogicalPlan)>,
}

impl QueryBinder<'_> {
    fn plan_query(&mut self, query: &Query) -> Result<(LogicalPlan, Scope), EngineError> {
        let cte_base = self.ctes.len();
        for cte in &query.ctes {
            let (plan, _) = self.plan_query(&cte.query)?;
            self.ctes.push((cte.name.normalized().to_string(), plan));
        }
        let result = self.plan_query_body(query);
        self.ctes.truncate(cte_base);
        result
    }

    fn plan_query_body(&mut self, query: &Query) -> Result<(LogicalPlan, Scope), EngineError> {
        let (mut plan, out_scope, pre_scope) = self.plan_set_expr(&query.body)?;

        if !query.order_by.is_empty() {
            plan = self.plan_order_by(plan, &out_scope, pre_scope.as_ref(), query)?;
        }
        if query.limit.is_some() || query.offset.is_some() {
            let limit = match &query.limit {
                Some(e) => Some(const_usize(e, "LIMIT")?),
                None => None,
            };
            let offset = match &query.offset {
                Some(e) => const_usize(e, "OFFSET")?,
                None => 0,
            };
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                limit,
                offset,
            };
        }
        Ok((plan, out_scope))
    }

    /// Plan a set expression. Returns the plan, its output scope, and — for
    /// plain non-aggregate SELECTs — the pre-projection scope usable by
    /// ORDER BY over input columns.
    fn plan_set_expr(&mut self, body: &SetExpr) -> Result<PlannedSelect, EngineError> {
        match body {
            SetExpr::Select(s) => self.plan_select(s),
            SetExpr::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let (lp, lscope, _) = self.plan_set_expr(left)?;
                let (rp, rscope, _) = self.plan_set_expr(right)?;
                if lp.schema().len() != rp.schema().len() {
                    return Err(EngineError::bind(format!(
                        "set operation column-count mismatch: {} vs {}",
                        lp.schema().len(),
                        rp.schema().len()
                    )));
                }
                let kind = match op {
                    SetOp::Union => SetOpKind::Union,
                    SetOp::Except => SetOpKind::Except,
                    SetOp::Intersect => SetOpKind::Intersect,
                };
                // Output schema: names from the left, types promoted.
                let columns = lp
                    .schema()
                    .columns
                    .iter()
                    .zip(&rp.schema().columns)
                    .map(|(l, r)| Column::new(l.name.clone(), promote_or(l.ty, r.ty)))
                    .collect();
                let schema = Schema::new(columns);
                let scope = Scope {
                    columns: lscope
                        .columns
                        .into_iter()
                        .zip(rscope.columns)
                        .map(|(l, _)| BindColumn {
                            qualifier: None,
                            ..l
                        })
                        .collect(),
                };
                let plan = LogicalPlan::SetOp {
                    op: kind,
                    all: *all,
                    left: Box::new(lp),
                    right: Box::new(rp),
                    schema,
                };
                Ok((plan, scope, None))
            }
        }
    }

    fn plan_select(&mut self, select: &Select) -> Result<PlannedSelect, EngineError> {
        // FROM clause: comma lists become cross joins.
        let (mut plan, scope) = if select.from.is_empty() {
            (
                LogicalPlan::Dual {
                    schema: Schema::default(),
                },
                Scope::empty(),
            )
        } else {
            let mut iter = select.from.iter();
            let (mut plan, mut scope) = self.plan_table_ref(iter.next().expect("non-empty"))?;
            for tref in iter {
                let (rp, rscope) = self.plan_table_ref(tref)?;
                let schema = concat_schemas(plan.schema(), rp.schema());
                plan = LogicalPlan::Join {
                    left: Box::new(plan),
                    right: Box::new(rp),
                    kind: JoinKind::Cross,
                    on: None,
                    schema,
                };
                scope = scope.join(rscope);
            }
            (plan, scope)
        };

        // WHERE.
        if let Some(pred) = &select.selection {
            let predicate = bind_expr_with(pred, &scope, Some(self.catalog))?;
            check_boolean(&predicate, "WHERE")?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        let is_aggregate = !select.group_by.is_empty()
            || select.having.is_some()
            || select.projection.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => contains_aggregate(expr),
                _ => false,
            });

        if is_aggregate {
            let (plan, out_scope) = self.plan_aggregate_select(select, plan, &scope)?;
            let plan = if select.distinct {
                LogicalPlan::Distinct {
                    input: Box::new(plan),
                }
            } else {
                plan
            };
            return Ok((plan, out_scope, None));
        }

        // Plain projection.
        let pre = (plan.clone(), scope.clone());
        let items = self.expand_projection(&select.projection, &scope)?;
        let mut exprs = Vec::with_capacity(items.len());
        let mut columns = Vec::with_capacity(items.len());
        let mut out_cols = Vec::with_capacity(items.len());
        for (expr_ast, name) in items {
            let bound = bind_expr_with(&expr_ast, &scope, Some(self.catalog))?;
            columns.push(Column::new(
                name.clone(),
                bound.ty().unwrap_or(DataType::Varchar),
            ));
            out_cols.push(BindColumn {
                qualifier: None,
                name,
                ty: bound.ty(),
            });
            exprs.push(bound);
        }
        let mut plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs,
            schema: Schema::new(columns),
        };
        if select.distinct {
            plan = LogicalPlan::Distinct {
                input: Box::new(plan),
            };
        }
        Ok((plan, Scope { columns: out_cols }, Some(pre)))
    }

    /// Expand wildcards into (expression, output name) pairs.
    fn expand_projection(
        &self,
        projection: &[SelectItem],
        scope: &Scope,
    ) -> Result<Vec<(Expr, String)>, EngineError> {
        let mut out = Vec::new();
        for item in projection {
            match item {
                SelectItem::Wildcard => {
                    if scope.columns.is_empty() {
                        return Err(EngineError::bind("SELECT * with no FROM clause"));
                    }
                    for col in &scope.columns {
                        out.push((column_expr(col), col.name.clone()));
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let qn = q.normalized();
                    let matched: Vec<_> = scope
                        .columns
                        .iter()
                        .filter(|c| c.qualifier.as_deref() == Some(qn))
                        .collect();
                    if matched.is_empty() {
                        return Err(EngineError::bind(format!(
                            "unknown relation {qn} in {qn}.*"
                        )));
                    }
                    for col in matched {
                        out.push((column_expr(col), col.name.clone()));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let name = match alias {
                        Some(a) => a.normalized().to_string(),
                        None => default_name(expr),
                    };
                    out.push((expr.clone(), name));
                }
            }
        }
        Ok(out)
    }

    fn plan_table_ref(&mut self, tref: &TableRef) -> Result<(LogicalPlan, Scope), EngineError> {
        match tref {
            TableRef::Table { name, alias } => {
                let tname = name.normalized().to_string();
                let qualifier = alias
                    .as_ref()
                    .map(|a| a.normalized().to_string())
                    .unwrap_or_else(|| tname.clone());
                // CTEs shadow catalog objects; later CTEs shadow earlier.
                if let Some((_, plan)) = self.ctes.iter().rev().find(|(n, _)| *n == tname) {
                    let plan = plan.clone();
                    let scope = scope_from_schema(Some(&qualifier), plan.schema());
                    return Ok((plan, scope));
                }
                if let Some(view) = self.catalog.view(&tname) {
                    let view = view.clone();
                    let (plan, _) = self.plan_query(&view)?;
                    let scope = scope_from_schema(Some(&qualifier), plan.schema());
                    return Ok((plan, scope));
                }
                let table = self.catalog.table(&tname)?;
                let schema = table.schema.clone();
                let scope = scope_from_schema(Some(&qualifier), &schema);
                Ok((
                    LogicalPlan::Scan {
                        table: tname,
                        schema,
                    },
                    scope,
                ))
            }
            TableRef::Subquery { query, alias } => {
                let (plan, _) = self.plan_query(query)?;
                let scope = scope_from_schema(Some(alias.normalized()), plan.schema());
                Ok((plan, scope))
            }
            TableRef::Join {
                left,
                right,
                kind,
                constraint,
            } => {
                let (lp, lscope) = self.plan_table_ref(left)?;
                let (rp, rscope) = self.plan_table_ref(right)?;
                let scope = lscope.join(rscope);
                let on = match constraint {
                    Some(c) => {
                        let bound = bind_expr_with(c, &scope, Some(self.catalog))?;
                        check_boolean(&bound, "JOIN ON")?;
                        Some(bound)
                    }
                    None => None,
                };
                if *kind != JoinKind::Cross && on.is_none() {
                    return Err(EngineError::bind("non-cross join requires ON"));
                }
                let schema = concat_schemas(lp.schema(), rp.schema());
                Ok((
                    LogicalPlan::Join {
                        left: Box::new(lp),
                        right: Box::new(rp),
                        kind: *kind,
                        on,
                        schema,
                    },
                    scope,
                ))
            }
        }
    }

    /// Plan a SELECT with grouping/aggregation.
    fn plan_aggregate_select(
        &mut self,
        select: &Select,
        input: LogicalPlan,
        scope: &Scope,
    ) -> Result<(LogicalPlan, Scope), EngineError> {
        let items = self.expand_projection(&select.projection, scope)?;

        // Resolve GROUP BY items: ordinals and projection aliases first.
        let mut group_asts: Vec<Expr> = Vec::with_capacity(select.group_by.len());
        for g in &select.group_by {
            let resolved = match g {
                Expr::Literal(Literal::Number(n)) => {
                    let idx: usize = n
                        .parse()
                        .map_err(|_| EngineError::bind(format!("invalid GROUP BY ordinal {n}")))?;
                    if idx == 0 || idx > items.len() {
                        return Err(EngineError::bind(format!(
                            "GROUP BY ordinal {idx} out of range"
                        )));
                    }
                    items[idx - 1].0.clone()
                }
                Expr::Column(c) if c.table.is_none() => {
                    // A bare name may be a projection alias; otherwise bind
                    // it as an input column below.
                    let name = c.column.normalized();
                    if scope.resolve(None, name).is_err() {
                        match items.iter().find(|(_, n)| n == name) {
                            Some((e, _)) => e.clone(),
                            None => g.clone(),
                        }
                    } else {
                        g.clone()
                    }
                }
                other => other.clone(),
            };
            if contains_aggregate(&resolved) {
                return Err(EngineError::bind(
                    "aggregate functions are not allowed in GROUP BY",
                ));
            }
            group_asts.push(resolved);
        }

        // Collect aggregate calls from projection and HAVING.
        let mut agg_asts: Vec<Expr> = Vec::new();
        for (e, _) in &items {
            collect_aggregates(e, &mut agg_asts)?;
        }
        if let Some(h) = &select.having {
            collect_aggregates(h, &mut agg_asts)?;
        }

        // Bind group keys and aggregates against the input scope.
        let mut group_bound = Vec::with_capacity(group_asts.len());
        let mut columns = Vec::new();
        for g in &group_asts {
            let b = bind_expr_with(g, scope, Some(self.catalog))?;
            let name = default_name(g);
            columns.push(Column::new(name, b.ty().unwrap_or(DataType::Varchar)));
            group_bound.push(b);
        }
        let mut aggs = Vec::with_capacity(agg_asts.len());
        for a in &agg_asts {
            let Expr::Function {
                name,
                args,
                distinct,
                star,
            } = a
            else {
                unreachable!("collect_aggregates only gathers calls")
            };
            let func = AggFunc::lookup(name.normalized()).expect("checked aggregate");
            let arg = if *star {
                None
            } else {
                if args.len() != 1 {
                    return Err(EngineError::bind(format!(
                        "aggregate {} expects one argument",
                        func.name()
                    )));
                }
                let bound = bind_expr_with(&args[0], scope, Some(self.catalog))?;
                if matches!(func, AggFunc::Sum | AggFunc::Avg) {
                    if let Some(t) = bound.ty() {
                        if !t.is_numeric() {
                            return Err(EngineError::bind(format!(
                                "{}({t}) is not defined",
                                func.name()
                            )));
                        }
                    }
                }
                Some(bound)
            };
            let agg = AggExpr {
                func,
                arg,
                distinct: *distinct,
                name: default_name(a),
            };
            columns.push(Column::new(
                agg.name.clone(),
                agg.ty().unwrap_or(DataType::Varchar),
            ));
            aggs.push(agg);
        }

        let agg_schema = Schema::new(columns);
        let agg_plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            group: group_bound,
            aggs,
            schema: agg_schema.clone(),
        };

        // Placeholder scope: #c0..#cN map to the aggregate output columns.
        let placeholder_scope = Scope {
            columns: agg_schema
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| BindColumn {
                    qualifier: None,
                    name: format!("#c{i}"),
                    ty: Some(c.ty),
                })
                .collect(),
        };
        let rewrite = |e: &Expr| -> Expr { replace_agg_subtrees(e, &group_asts, &agg_asts, scope) };

        // HAVING → Filter above the aggregate.
        let mut plan = agg_plan;
        if let Some(h) = &select.having {
            let replaced = rewrite(h);
            let bound = bind_in_agg(&replaced, &placeholder_scope, self.catalog)?;
            check_boolean(&bound, "HAVING")?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: bound,
            };
        }

        // Final projection over the aggregate output.
        let mut exprs = Vec::with_capacity(items.len());
        let mut out_columns = Vec::with_capacity(items.len());
        let mut out_scope_cols = Vec::with_capacity(items.len());
        for (e, name) in &items {
            let replaced = rewrite(e);
            let bound = bind_in_agg(&replaced, &placeholder_scope, self.catalog)?;
            out_columns.push(Column::new(
                name.clone(),
                bound.ty().unwrap_or(DataType::Varchar),
            ));
            out_scope_cols.push(BindColumn {
                qualifier: None,
                name: name.clone(),
                ty: bound.ty(),
            });
            exprs.push(bound);
        }
        let plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs,
            schema: Schema::new(out_columns),
        };
        Ok((
            plan,
            Scope {
                columns: out_scope_cols,
            },
        ))
    }

    fn plan_order_by(
        &mut self,
        plan: LogicalPlan,
        out_scope: &Scope,
        pre: Option<&(LogicalPlan, Scope)>,
        query: &Query,
    ) -> Result<LogicalPlan, EngineError> {
        // First attempt: bind all keys over the output scope (plus ordinals).
        let mut keys = Vec::with_capacity(query.order_by.len());
        let mut output_ok = true;
        for ob in &query.order_by {
            let bound = match &ob.expr {
                Expr::Literal(Literal::Number(n)) => {
                    let idx: usize = n
                        .parse()
                        .map_err(|_| EngineError::bind(format!("invalid ORDER BY ordinal {n}")))?;
                    if idx == 0 || idx > out_scope.columns.len() {
                        return Err(EngineError::bind(format!(
                            "ORDER BY ordinal {idx} out of range"
                        )));
                    }
                    Ok(BoundExpr::Column {
                        index: idx - 1,
                        ty: out_scope.columns[idx - 1].ty,
                        name: out_scope.columns[idx - 1].name.clone(),
                    })
                }
                e => bind_expr_with(e, out_scope, Some(self.catalog)),
            };
            match bound {
                Ok(b) => keys.push(SortKey {
                    expr: b,
                    desc: ob.desc,
                }),
                Err(_) => {
                    output_ok = false;
                    break;
                }
            }
        }
        if output_ok {
            return Ok(LogicalPlan::Sort {
                input: Box::new(plan),
                keys,
            });
        }
        // Second attempt (plain selects only): sort below the projection on
        // input columns; the order-preserving Project keeps the ordering.
        let Some((pre_plan, pre_scope)) = pre else {
            return Err(EngineError::bind(
                "ORDER BY expression is not in the select list",
            ));
        };
        let mut keys = Vec::with_capacity(query.order_by.len());
        for ob in &query.order_by {
            let b = bind_expr_with(&ob.expr, pre_scope, Some(self.catalog))?;
            keys.push(SortKey {
                expr: b,
                desc: ob.desc,
            });
        }
        // Rebuild: pre_plan → Sort → (original projection layers).
        // The outer plan was Project/Distinct over pre_plan; re-plan by
        // grafting: we know `plan` contains pre_plan as its descendant, so
        // splice the sort underneath the projection chain.
        fn splice(plan: LogicalPlan, target: &LogicalPlan, keys: Vec<SortKey>) -> LogicalPlan {
            match plan {
                LogicalPlan::Project {
                    input,
                    exprs,
                    schema,
                } => {
                    if *input == *target {
                        LogicalPlan::Project {
                            input: Box::new(LogicalPlan::Sort { input, keys }),
                            exprs,
                            schema,
                        }
                    } else {
                        LogicalPlan::Project {
                            input: Box::new(splice(*input, target, keys)),
                            exprs,
                            schema,
                        }
                    }
                }
                LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
                    input: Box::new(splice(*input, target, keys)),
                },
                other => other,
            }
        }
        Ok(splice(plan, pre_plan, keys))
    }
}

/// Build a scope over a plan's output schema.
fn scope_from_schema(qualifier: Option<&str>, schema: &Schema) -> Scope {
    Scope {
        columns: schema
            .columns
            .iter()
            .map(|c| BindColumn {
                qualifier: qualifier.map(str::to_string),
                name: c.name.clone(),
                ty: Some(c.ty),
            })
            .collect(),
    }
}

fn concat_schemas(l: &Schema, r: &Schema) -> Schema {
    let mut columns = l.columns.clone();
    columns.extend(r.columns.clone());
    Schema::new(columns)
}

fn promote_or(l: DataType, r: DataType) -> DataType {
    DataType::promote(l, r).unwrap_or(l)
}

fn check_boolean(e: &BoundExpr, clause: &str) -> Result<(), EngineError> {
    if let Some(t) = e.ty() {
        if t != DataType::Boolean {
            return Err(EngineError::bind(format!(
                "{clause} predicate must be BOOLEAN, got {t}"
            )));
        }
    }
    Ok(())
}

fn const_usize(e: &Expr, clause: &str) -> Result<usize, EngineError> {
    if let Expr::Literal(Literal::Number(n)) = e {
        if let Ok(v) = n.parse::<usize>() {
            return Ok(v);
        }
    }
    Err(EngineError::bind(format!(
        "{clause} must be a non-negative integer literal"
    )))
}

fn column_expr(col: &BindColumn) -> Expr {
    match &col.qualifier {
        Some(q) => Expr::qcol(q.clone(), col.name.clone()),
        None => Expr::col(col.name.clone()),
    }
}

/// Output name for an unaliased projection item.
fn default_name(e: &Expr) -> String {
    match e {
        Expr::Column(c) => c.column.normalized().to_string(),
        Expr::Function { name, .. } => name.normalized().to_string(),
        other => print_expr(other, Dialect::DuckDb).to_lowercase(),
    }
}

/// Whether an expression contains an aggregate function call.
pub(crate) fn contains_aggregate(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |node| {
        if let Expr::Function { name, .. } = node {
            if AggFunc::is_aggregate_name(name.normalized()) {
                found = true;
            }
        }
    });
    found
}

/// Collect top-level aggregate calls; rejects nested aggregates.
fn collect_aggregates(e: &Expr, out: &mut Vec<Expr>) -> Result<(), EngineError> {
    match e {
        Expr::Function { name, args, .. } if AggFunc::is_aggregate_name(name.normalized()) => {
            for a in args {
                if contains_aggregate(a) {
                    return Err(EngineError::bind("nested aggregate functions"));
                }
            }
            if !out.contains(e) {
                out.push(e.clone());
            }
            Ok(())
        }
        _ => {
            // Walk one level manually to avoid re-visiting the node itself.
            match e {
                Expr::Binary { left, right, .. } => {
                    collect_aggregates(left, out)?;
                    collect_aggregates(right, out)?;
                }
                Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
                    collect_aggregates(expr, out)?
                }
                Expr::Function { args, .. } => {
                    for a in args {
                        collect_aggregates(a, out)?;
                    }
                }
                Expr::Case {
                    operand,
                    branches,
                    else_result,
                } => {
                    if let Some(op) = operand {
                        collect_aggregates(op, out)?;
                    }
                    for (w, t) in branches {
                        collect_aggregates(w, out)?;
                        collect_aggregates(t, out)?;
                    }
                    if let Some(el) = else_result {
                        collect_aggregates(el, out)?;
                    }
                }
                Expr::InList { expr, list, .. } => {
                    collect_aggregates(expr, out)?;
                    for i in list {
                        collect_aggregates(i, out)?;
                    }
                }
                Expr::Between {
                    expr, low, high, ..
                } => {
                    collect_aggregates(expr, out)?;
                    collect_aggregates(low, out)?;
                    collect_aggregates(high, out)?;
                }
                Expr::Like { expr, pattern, .. } => {
                    collect_aggregates(expr, out)?;
                    collect_aggregates(pattern, out)?;
                }
                Expr::InSubquery { expr, .. } => collect_aggregates(expr, out)?,
                Expr::Literal(_) | Expr::Column(_) => {}
            }
            Ok(())
        }
    }
}

/// Replace group-by expressions and aggregate calls with placeholder columns
/// `#c{i}` over the aggregate output.
fn replace_agg_subtrees(
    e: &Expr,
    group_asts: &[Expr],
    agg_asts: &[Expr],
    input_scope: &Scope,
) -> Expr {
    // Exact syntactic match against a GROUP BY expression.
    for (i, g) in group_asts.iter().enumerate() {
        if e == g || columns_equivalent(e, g, input_scope) {
            return Expr::col(format!("#c{i}"));
        }
    }
    // Aggregate call match.
    for (j, a) in agg_asts.iter().enumerate() {
        if e == a {
            return Expr::col(format!("#c{}", group_asts.len() + j));
        }
    }
    // Recurse structurally.
    let rec = |x: &Expr| replace_agg_subtrees(x, group_asts, agg_asts, input_scope);
    match e {
        Expr::Literal(_) | Expr::Column(_) => e.clone(),
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rec(left)),
            op: *op,
            right: Box::new(rec(right)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rec(expr)),
        },
        Expr::Function {
            name,
            args,
            distinct,
            star,
        } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(rec).collect(),
            distinct: *distinct,
            star: *star,
        },
        Expr::Case {
            operand,
            branches,
            else_result,
        } => Expr::Case {
            operand: operand.as_ref().map(|o| Box::new(rec(o))),
            branches: branches.iter().map(|(w, t)| (rec(w), rec(t))).collect(),
            else_result: else_result.as_ref().map(|el| Box::new(rec(el))),
        },
        Expr::Cast { expr, ty } => Expr::Cast {
            expr: Box::new(rec(expr)),
            ty: *ty,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rec(expr)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(rec(expr)),
            list: list.iter().map(rec).collect(),
            negated: *negated,
        },
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => Expr::InSubquery {
            expr: Box::new(rec(expr)),
            query: query.clone(),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(rec(expr)),
            low: Box::new(rec(low)),
            high: Box::new(rec(high)),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(rec(expr)),
            pattern: Box::new(rec(pattern)),
            negated: *negated,
        },
    }
}

/// Two column references are equivalent when they resolve to the same input
/// position (handles `t.a` in GROUP BY vs bare `a` in the projection).
fn columns_equivalent(a: &Expr, b: &Expr, scope: &Scope) -> bool {
    let (Expr::Column(ca), Expr::Column(cb)) = (a, b) else {
        return false;
    };
    let ra = scope.resolve(
        ca.table.as_ref().map(|t| t.normalized()),
        ca.column.normalized(),
    );
    let rb = scope.resolve(
        cb.table.as_ref().map(|t| t.normalized()),
        cb.column.normalized(),
    );
    matches!((ra, rb), (Ok(x), Ok(y)) if x == y)
}

/// Bind a rewritten (placeholder-bearing) expression, translating unknown
/// column errors into the standard GROUP BY diagnostic.
fn bind_in_agg(
    e: &Expr,
    placeholder_scope: &Scope,
    catalog: &Catalog,
) -> Result<BoundExpr, EngineError> {
    bind_expr_with(e, placeholder_scope, Some(catalog)).map_err(|err| {
        if err.message().starts_with("unknown column") {
            EngineError::bind(format!(
                "{} — expression must appear in GROUP BY or inside an aggregate",
                err.message().replace("#c", "output ")
            ))
        } else {
            err
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Table;
    use ivm_sql::ast::Statement;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(Table::new(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Integer),
                Column::new("b", DataType::Varchar),
            ]),
            vec![],
        ))
        .unwrap();
        c.create_table(Table::new(
            "u",
            Schema::new(vec![
                Column::new("a", DataType::Integer),
                Column::new("c", DataType::Double),
            ]),
            vec![],
        ))
        .unwrap();
        c
    }

    fn plan(sql: &str) -> Result<LogicalPlan, EngineError> {
        let c = catalog();
        let Statement::Query(q) = ivm_sql::parse_statement(sql).unwrap() else {
            unreachable!()
        };
        plan_query(&q, &c)
    }

    #[test]
    fn scan_project_shape() {
        let p = plan("SELECT a, b FROM t").unwrap();
        let LogicalPlan::Project { input, schema, .. } = &p else {
            panic!("expected projection, got {p:?}")
        };
        assert!(matches!(**input, LogicalPlan::Scan { .. }));
        assert_eq!(schema.names(), vec!["a", "b"]);
    }

    #[test]
    fn aggregate_shape_and_output_names() {
        let p = plan("SELECT b, SUM(a) AS total FROM t GROUP BY b").unwrap();
        let LogicalPlan::Project { input, schema, .. } = &p else {
            panic!()
        };
        assert!(matches!(**input, LogicalPlan::Aggregate { .. }));
        assert_eq!(schema.names(), vec!["b", "total"]);
        assert_eq!(schema.types(), vec![DataType::Varchar, DataType::Integer]);
    }

    #[test]
    fn wildcard_expansion_order() {
        let p = plan("SELECT * FROM t, u").unwrap();
        assert_eq!(p.schema().names(), vec!["a", "b", "a", "c"]);
        let p = plan("SELECT u.* FROM t, u").unwrap();
        assert_eq!(p.schema().names(), vec!["a", "c"]);
    }

    #[test]
    fn ambiguity_and_unknowns_error() {
        assert!(plan("SELECT a FROM t, u").is_err(), "ambiguous a");
        assert!(plan("SELECT zz FROM t").is_err(), "unknown column");
        assert!(plan("SELECT t.a FROM u").is_err(), "unknown qualifier");
        assert!(plan("SELECT * FROM missing").is_err(), "unknown table");
    }

    #[test]
    fn group_by_violations_detected() {
        assert!(plan("SELECT a, SUM(a) FROM t GROUP BY b").is_err());
        assert!(
            plan("SELECT SUM(SUM(a)) FROM t GROUP BY b").is_err(),
            "nested agg"
        );
        assert!(plan("SELECT b FROM t GROUP BY 9").is_err(), "bad ordinal");
    }

    #[test]
    fn having_binds_aggregates() {
        let p = plan("SELECT b FROM t GROUP BY b HAVING SUM(a) > 3").unwrap();
        // Filter sits between Project and Aggregate.
        let LogicalPlan::Project { input, .. } = &p else {
            panic!()
        };
        assert!(matches!(**input, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn order_by_alias_ordinal_and_input_column() {
        assert!(plan("SELECT a AS x FROM t ORDER BY x").is_ok());
        assert!(plan("SELECT a FROM t ORDER BY 1").is_ok());
        // ORDER BY an input column not in the projection (sorts pre-project).
        assert!(plan("SELECT a FROM t ORDER BY b").is_ok());
        assert!(plan("SELECT a FROM t ORDER BY 5").is_err());
    }

    #[test]
    fn scanned_tables_includes_subquery_plans() {
        let p = plan("SELECT a FROM t WHERE a IN (SELECT a FROM u)").unwrap();
        assert_eq!(p.scanned_tables(), vec!["t", "u"]);
    }

    #[test]
    fn set_op_arity_mismatch() {
        assert!(plan("SELECT a, b FROM t UNION SELECT a FROM u").is_err());
        let p = plan("SELECT a FROM t UNION ALL SELECT a FROM u").unwrap();
        assert!(matches!(p, LogicalPlan::SetOp { all: true, .. }));
    }

    #[test]
    fn explain_renders_tree() {
        let p = plan("SELECT b, COUNT(*) FROM t WHERE a > 0 GROUP BY b").unwrap();
        let e = p.explain();
        assert!(e.contains("Project"));
        assert!(e.contains("Aggregate"));
        assert!(e.contains("Scan t"));
    }

    #[test]
    fn where_must_be_boolean() {
        assert!(plan("SELECT a FROM t WHERE a + 1").is_err());
        assert!(plan("SELECT a FROM t WHERE b").is_err());
    }

    #[test]
    fn limit_requires_constants() {
        assert!(plan("SELECT a FROM t LIMIT 3").is_ok());
        assert!(plan("SELECT a FROM t LIMIT a").is_err());
    }
}
