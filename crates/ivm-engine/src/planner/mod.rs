//! Logical plans, the AST → plan binder, and physical lowering.

mod binder;
pub mod physical;

pub use binder::plan_query;
pub use physical::{lower, PhysicalPlan};

use ivm_sql::ast::JoinKind;

use crate::expr::{AggExpr, BoundExpr};
use crate::schema::Schema;

/// Set operations at the plan level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    /// Bag/set union.
    Union,
    /// Bag/set difference.
    Except,
    /// Bag/set intersection.
    Intersect,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Expression over the input row.
    pub expr: BoundExpr,
    /// Descending order.
    pub desc: bool,
}

/// A relational logical plan. This is what the OpenIVM rewriter transforms:
/// leaves are substituted (`T → ΔT`) and operators rewritten bottom-up into
/// their DBSP incremental forms before the plan is lowered back to SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base table scan.
    Scan {
        /// Catalog table name.
        table: String,
        /// Output columns (the table schema).
        schema: Schema,
    },
    /// A single row with no columns (`SELECT 1` with no FROM).
    Dual {
        /// Empty schema.
        schema: Schema,
    },
    /// Row filter.
    Filter {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Boolean predicate over input rows.
        predicate: BoundExpr,
    },
    /// Column projection / computation.
    Project {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// One expression per output column.
        exprs: Vec<BoundExpr>,
        /// Output columns.
        schema: Schema,
    },
    /// Hash aggregation.
    Aggregate {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Group-by expressions (over the input row).
        group: Vec<BoundExpr>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
        /// Output columns: group keys then aggregate results.
        schema: Schema,
    },
    /// Join.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// INNER/LEFT/RIGHT/FULL/CROSS.
        kind: JoinKind,
        /// ON condition over the concatenated row, absent for CROSS.
        on: Option<BoundExpr>,
        /// Output columns: left then right.
        schema: Schema,
    },
    /// UNION / EXCEPT / INTERSECT.
    SetOp {
        /// Which set operation.
        op: SetOpKind,
        /// Bag semantics (ALL) when true.
        all: bool,
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Output columns (names from the left input).
        schema: Schema,
    },
    /// Duplicate elimination over whole rows.
    Distinct {
        /// Input operator.
        input: Box<LogicalPlan>,
    },
    /// Sorting.
    Sort {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// LIMIT/OFFSET.
    Limit {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Maximum rows to emit.
        limit: Option<usize>,
        /// Rows to skip.
        offset: usize,
    },
}

impl LogicalPlan {
    /// Output schema of the operator.
    pub fn schema(&self) -> &Schema {
        match self {
            LogicalPlan::Scan { schema, .. }
            | LogicalPlan::Dual { schema }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Aggregate { schema, .. }
            | LogicalPlan::Join { schema, .. }
            | LogicalPlan::SetOp { schema, .. } => schema,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Names of the base tables this plan scans (deduplicated, in first-use
    /// order). Subquery plans inside `IN` predicates are included.
    pub fn scanned_tables(&self) -> Vec<String> {
        fn visit_expr(e: &BoundExpr, out: &mut Vec<String>) {
            if let BoundExpr::InSubquery { plan, .. } = e {
                walk(plan, out);
            }
        }
        fn walk(plan: &LogicalPlan, out: &mut Vec<String>) {
            match plan {
                LogicalPlan::Dual { .. } => {}
                LogicalPlan::Scan { table, .. } => {
                    if !out.contains(table) {
                        out.push(table.clone());
                    }
                }
                LogicalPlan::Filter { input, predicate } => {
                    walk(input, out);
                    visit_expr(predicate, out);
                }
                LogicalPlan::Project { input, .. }
                | LogicalPlan::Distinct { input }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Limit { input, .. }
                | LogicalPlan::Aggregate { input, .. } => walk(input, out),
                LogicalPlan::Join { left, right, .. } | LogicalPlan::SetOp { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Render an indented EXPLAIN-style tree (stored in OpenIVM metadata
    /// tables as the "query plan" property).
    pub fn explain(&self) -> String {
        fn fmt(plan: &LogicalPlan, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            let line = match plan {
                LogicalPlan::Scan { table, .. } => format!("Scan {table}"),
                LogicalPlan::Dual { .. } => "Dual".to_string(),
                LogicalPlan::Filter { .. } => "Filter".to_string(),
                LogicalPlan::Project { schema, .. } => {
                    format!("Project [{}]", schema.names().join(", "))
                }
                LogicalPlan::Aggregate { group, aggs, .. } => format!(
                    "Aggregate groups={} aggs=[{}]",
                    group.len(),
                    aggs.iter()
                        .map(|a| a.func.name().to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                LogicalPlan::Join { kind, .. } => format!("Join {}", kind.as_str()),
                LogicalPlan::SetOp { op, all, .. } => {
                    format!("SetOp {:?}{}", op, if *all { " ALL" } else { "" })
                }
                LogicalPlan::Distinct { .. } => "Distinct".to_string(),
                LogicalPlan::Sort { keys, .. } => format!("Sort keys={}", keys.len()),
                LogicalPlan::Limit { limit, offset, .. } => {
                    format!("Limit limit={limit:?} offset={offset}")
                }
            };
            out.push_str(&pad);
            out.push_str(&line);
            out.push('\n');
            match plan {
                LogicalPlan::Scan { .. } | LogicalPlan::Dual { .. } => {}
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Aggregate { input, .. }
                | LogicalPlan::Distinct { input }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Limit { input, .. } => fmt(input, depth + 1, out),
                LogicalPlan::Join { left, right, .. } | LogicalPlan::SetOp { left, right, .. } => {
                    fmt(left, depth + 1, out);
                    fmt(right, depth + 1, out);
                }
            }
        }
        let mut out = String::new();
        fmt(self, 0, &mut out);
        out
    }
}
