//! Physical plans: the executable form of a [`LogicalPlan`].
//!
//! Lowering decides *how* each operator runs, so the executor stays a dumb
//! pipeline driver:
//! - **join-side selection** — the estimated-smaller input becomes the hash
//!   join's build side (RIGHT joins are mirrored; a restoring projection
//!   keeps the output column order);
//! - **equi-key extraction** — `a = b` conjuncts across the join split into
//!   build/probe key columns plus a residual predicate;
//! - **aggregate mode** — grouped hash aggregation vs. single-group
//!   (scalar) aggregation is fixed here, not probed per row.

use ivm_sql::ast::{BinaryOp, JoinKind};

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::expr::{flatten_and, AggExpr, BoundExpr};
use crate::planner::{LogicalPlan, SetOpKind, SortKey};
use crate::schema::Schema;
use crate::value::Value;

/// Join semantics after lowering. RIGHT joins no longer exist physically:
/// they become a mirrored `LeftOuter` plus a column-restoring projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysJoinKind {
    /// Emit matching pairs only.
    Inner,
    /// Also emit unmatched probe-side rows, padded with NULLs.
    LeftOuter,
    /// Also emit unmatched rows from both sides.
    FullOuter,
}

/// Aggregation mode, decided at plan time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggMode {
    /// No GROUP BY: one output row, even for empty input.
    Ungrouped,
    /// GROUP BY: hash-partitioned groups, first-seen output order.
    HashGrouped,
}

/// An executable operator tree. Children are in pull order: the executor
/// asks the root for batches and demand propagates down.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Batched scan over a base table's column vectors, optionally with a
    /// pushed-down predicate evaluated per storage chunk.
    TableScan {
        /// Catalog table name.
        table: String,
        /// Table schema.
        schema: Schema,
        /// Pushed-down filter over the table's columns (`None` = full scan).
        predicate: Option<BoundExpr>,
        /// `column = literal` conjuncts of `predicate` eligible for an ART
        /// point lookup (column position, literal value).
        index_eq: Vec<(usize, Value)>,
    },
    /// A single zero-column row (`SELECT 1` with no FROM).
    Dual,
    /// Streaming row filter.
    Filter {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Boolean predicate over input rows.
        predicate: BoundExpr,
    },
    /// Streaming projection / computation.
    Project {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// One expression per output column.
        exprs: Vec<BoundExpr>,
        /// Output columns.
        schema: Schema,
    },
    /// Build-probe hash join on extracted equi-keys.
    HashJoin {
        /// Streamed side; its rows lead the output layout.
        probe: Box<PhysicalPlan>,
        /// Materialized side the hash table is built over.
        build: Box<PhysicalPlan>,
        /// Probe-side key column positions.
        probe_keys: Vec<usize>,
        /// Build-side key column positions (parallel to `probe_keys`).
        build_keys: Vec<usize>,
        /// Non-equi leftovers of the ON clause, evaluated over
        /// `probe_row ++ build_row`.
        residual: Option<BoundExpr>,
        /// Join semantics (probe side is the preserved side).
        join: PhysJoinKind,
        /// Output columns: probe then build.
        schema: Schema,
    },
    /// Fallback join without equi-keys (CROSS, non-equi ON).
    NestedLoopJoin {
        /// Streamed side.
        probe: Box<PhysicalPlan>,
        /// Materialized side.
        build: Box<PhysicalPlan>,
        /// ON condition over `probe_row ++ build_row`, absent for CROSS.
        on: Option<BoundExpr>,
        /// Join semantics (probe side is the preserved side).
        join: PhysJoinKind,
        /// Output columns: probe then build.
        schema: Schema,
    },
    /// Hash aggregation.
    HashAggregate {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Group-by expressions.
        group: Vec<BoundExpr>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
        /// Grouped vs. single-group execution.
        mode: AggMode,
        /// Output columns: group keys then aggregate results.
        schema: Schema,
    },
    /// UNION / EXCEPT / INTERSECT (right side materialized, left streamed).
    SetOp {
        /// Which set operation.
        op: SetOpKind,
        /// Bag semantics (ALL) when true.
        all: bool,
        /// Streamed input.
        left: Box<PhysicalPlan>,
        /// Materialized input.
        right: Box<PhysicalPlan>,
        /// Output columns.
        schema: Schema,
    },
    /// Streaming duplicate elimination over whole rows.
    Distinct {
        /// Input operator.
        input: Box<PhysicalPlan>,
    },
    /// Full sort (pipeline breaker).
    Sort {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// Bounded-heap `ORDER BY … LIMIT k` (keeps `limit + offset` rows).
    TopK {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
        /// Maximum rows to emit after the offset.
        limit: usize,
        /// Rows to skip.
        offset: usize,
    },
    /// Streaming LIMIT/OFFSET with early termination.
    Limit {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Maximum rows to emit.
        limit: Option<usize>,
        /// Rows to skip.
        offset: usize,
    },
}

static EMPTY_SCHEMA: Schema = Schema {
    columns: Vec::new(),
};

impl PhysicalPlan {
    /// Output schema of the operator.
    pub fn schema(&self) -> &Schema {
        match self {
            PhysicalPlan::TableScan { schema, .. }
            | PhysicalPlan::Project { schema, .. }
            | PhysicalPlan::HashJoin { schema, .. }
            | PhysicalPlan::NestedLoopJoin { schema, .. }
            | PhysicalPlan::HashAggregate { schema, .. }
            | PhysicalPlan::SetOp { schema, .. } => schema,
            PhysicalPlan::Dual => &EMPTY_SCHEMA,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::TopK { input, .. }
            | PhysicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Render an indented EXPLAIN-style tree of the physical operators.
    pub fn explain(&self) -> String {
        fn fmt(plan: &PhysicalPlan, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            let line = match plan {
                PhysicalPlan::TableScan {
                    table,
                    predicate,
                    index_eq,
                    ..
                } => format!(
                    "TableScan {table}{}{}",
                    if predicate.is_some() {
                        " [filtered]"
                    } else {
                        ""
                    },
                    if index_eq.is_empty() {
                        String::new()
                    } else {
                        format!(" [index_eq={}]", index_eq.len())
                    }
                ),
                PhysicalPlan::Dual => "Dual".to_string(),
                PhysicalPlan::Filter { .. } => "Filter".to_string(),
                PhysicalPlan::Project { schema, .. } => {
                    format!("Project [{}]", schema.names().join(", "))
                }
                PhysicalPlan::HashJoin {
                    probe_keys,
                    build_keys,
                    residual,
                    join,
                    ..
                } => {
                    format!(
                        "HashJoin {join:?} probe_keys={probe_keys:?} build_keys={build_keys:?}{}",
                        if residual.is_some() { " residual" } else { "" }
                    )
                }
                PhysicalPlan::NestedLoopJoin { join, on, .. } => format!(
                    "NestedLoopJoin {join:?}{}",
                    if on.is_some() { " on" } else { "" }
                ),
                PhysicalPlan::HashAggregate {
                    group, aggs, mode, ..
                } => format!(
                    "HashAggregate {mode:?} groups={} aggs=[{}]",
                    group.len(),
                    aggs.iter()
                        .map(|a| a.func.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                PhysicalPlan::SetOp { op, all, .. } => {
                    format!("SetOp {:?}{}", op, if *all { " ALL" } else { "" })
                }
                PhysicalPlan::Distinct { .. } => "Distinct".to_string(),
                PhysicalPlan::Sort { keys, .. } => format!("Sort keys={}", keys.len()),
                PhysicalPlan::TopK {
                    keys,
                    limit,
                    offset,
                    ..
                } => format!("TopK keys={} limit={limit} offset={offset}", keys.len()),
                PhysicalPlan::Limit { limit, offset, .. } => {
                    format!("Limit limit={limit:?} offset={offset}")
                }
            };
            out.push_str(&pad);
            out.push_str(&line);
            out.push('\n');
            match plan {
                PhysicalPlan::TableScan { .. } | PhysicalPlan::Dual => {}
                PhysicalPlan::Filter { input, .. }
                | PhysicalPlan::Project { input, .. }
                | PhysicalPlan::HashAggregate { input, .. }
                | PhysicalPlan::Distinct { input }
                | PhysicalPlan::Sort { input, .. }
                | PhysicalPlan::TopK { input, .. }
                | PhysicalPlan::Limit { input, .. } => fmt(input, depth + 1, out),
                PhysicalPlan::HashJoin { probe, build, .. }
                | PhysicalPlan::NestedLoopJoin { probe, build, .. } => {
                    fmt(probe, depth + 1, out);
                    fmt(build, depth + 1, out);
                }
                PhysicalPlan::SetOp { left, right, .. } => {
                    fmt(left, depth + 1, out);
                    fmt(right, depth + 1, out);
                }
            }
        }
        let mut out = String::new();
        fmt(self, 0, &mut out);
        out
    }
}

/// Lower an optimized logical plan into a physical operator tree, then
/// fold eligible `Filter` nodes into their `TableScan` inputs (predicate
/// pushdown into storage — see [`crate::optimizer`]'s physical rule).
pub fn lower(plan: &LogicalPlan, catalog: &Catalog) -> Result<PhysicalPlan, EngineError> {
    lower_with_budget(plan, catalog, None)
}

/// [`lower`] with the session memory budget (bytes; `None` = unbounded)
/// available to cost decisions: when a join's predicted build side
/// exceeds the budget — i.e. a spill is coming — INNER join side
/// selection compares *physical* row estimates so the cheaper-to-spill
/// side builds. Unbounded sessions lower identically to [`lower`].
pub fn lower_with_budget(
    plan: &LogicalPlan,
    catalog: &Catalog,
    budget_limit: Option<usize>,
) -> Result<PhysicalPlan, EngineError> {
    Ok(crate::optimizer::push_scan_predicates(lower_node(
        plan,
        catalog,
        budget_limit,
    )?))
}

fn lower_node(
    plan: &LogicalPlan,
    catalog: &Catalog,
    budget_limit: Option<usize>,
) -> Result<PhysicalPlan, EngineError> {
    Ok(match plan {
        LogicalPlan::Scan { table, schema } => PhysicalPlan::TableScan {
            table: table.clone(),
            schema: schema.clone(),
            predicate: None,
            index_eq: Vec::new(),
        },
        LogicalPlan::Dual { .. } => PhysicalPlan::Dual,
        LogicalPlan::Filter { input, predicate } => PhysicalPlan::Filter {
            input: Box::new(lower_node(input, catalog, budget_limit)?),
            predicate: predicate.clone(),
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => PhysicalPlan::Project {
            input: Box::new(lower_node(input, catalog, budget_limit)?),
            exprs: exprs.clone(),
            schema: schema.clone(),
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => PhysicalPlan::HashAggregate {
            input: Box::new(lower_node(input, catalog, budget_limit)?),
            group: group.clone(),
            aggs: aggs.clone(),
            mode: if group.is_empty() {
                AggMode::Ungrouped
            } else {
                AggMode::HashGrouped
            },
            schema: schema.clone(),
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            schema,
        } => lower_join(
            left,
            right,
            *kind,
            on.as_ref(),
            schema,
            catalog,
            budget_limit,
        )?,
        LogicalPlan::SetOp {
            op,
            all,
            left,
            right,
            schema,
        } => PhysicalPlan::SetOp {
            op: *op,
            all: *all,
            left: Box::new(lower_node(left, catalog, budget_limit)?),
            right: Box::new(lower_node(right, catalog, budget_limit)?),
            schema: schema.clone(),
        },
        LogicalPlan::Distinct { input } => PhysicalPlan::Distinct {
            input: Box::new(lower_node(input, catalog, budget_limit)?),
        },
        LogicalPlan::Sort { input, keys } => PhysicalPlan::Sort {
            input: Box::new(lower_node(input, catalog, budget_limit)?),
            keys: keys.clone(),
        },
        // ORDER BY … LIMIT k lowers to a bounded-heap top-k instead of a
        // full sort followed by a limit.
        LogicalPlan::Limit {
            input,
            limit: Some(limit),
            offset,
        } => {
            if let LogicalPlan::Sort {
                input: sorted,
                keys,
            } = input.as_ref()
            {
                PhysicalPlan::TopK {
                    input: Box::new(lower_node(sorted, catalog, budget_limit)?),
                    keys: keys.clone(),
                    limit: *limit,
                    offset: *offset,
                }
            } else {
                PhysicalPlan::Limit {
                    input: Box::new(lower_node(input, catalog, budget_limit)?),
                    limit: Some(*limit),
                    offset: *offset,
                }
            }
        }
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => PhysicalPlan::Limit {
            input: Box::new(lower_node(input, catalog, budget_limit)?),
            limit: *limit,
            offset: *offset,
        },
    })
}

/// Cheap cardinality estimate used for join-side selection. Base tables
/// report live row counts; everything else applies classic textbook
/// selectivities. Only relative order matters.
pub fn estimate_rows(plan: &LogicalPlan, catalog: &Catalog) -> f64 {
    match plan {
        LogicalPlan::Scan { table, .. } => catalog
            .table(table)
            .map(|t| t.live_rows() as f64)
            .unwrap_or(1000.0),
        LogicalPlan::Dual { .. } => 1.0,
        LogicalPlan::Filter { input, .. } => estimate_rows(input, catalog) / 3.0,
        LogicalPlan::Project { input, .. } | LogicalPlan::Sort { input, .. } => {
            estimate_rows(input, catalog)
        }
        LogicalPlan::Distinct { input } => estimate_rows(input, catalog) / 2.0,
        LogicalPlan::Aggregate { input, group, .. } => {
            if group.is_empty() {
                1.0
            } else {
                estimate_rows(input, catalog).sqrt().max(1.0)
            }
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            ..
        } => {
            let l = estimate_rows(left, catalog);
            let r = estimate_rows(right, catalog);
            match (kind, on) {
                (JoinKind::Cross, _) | (_, None) => l * r,
                // Equi-joins: assume FK-ish fan-out bounded by the larger side.
                _ => l.max(r),
            }
        }
        LogicalPlan::SetOp { left, right, .. } => {
            estimate_rows(left, catalog) + estimate_rows(right, catalog)
        }
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => {
            let bound = limit.map_or(f64::INFINITY, |l| (l + offset) as f64);
            estimate_rows(input, catalog).min(bound)
        }
    }
}

/// Cardinality estimate over *physical* plans, used as a sizing hint for
/// the flat hash tables of aggregation and distinct-style operators
/// (pre-sizing avoids rehash churn; see [`crate::exec::hash`]). Same
/// textbook selectivities as [`estimate_rows`], so hints stay cheap and
/// only roughly right — flat tables grow gracefully past them.
pub fn estimate_physical_rows(plan: &PhysicalPlan, catalog: &Catalog) -> f64 {
    match plan {
        PhysicalPlan::TableScan {
            table, predicate, ..
        } => {
            let base = catalog
                .table(table)
                .map(|t| t.live_rows() as f64)
                .unwrap_or(1000.0);
            if predicate.is_some() {
                base / 3.0
            } else {
                base
            }
        }
        PhysicalPlan::Dual => 1.0,
        PhysicalPlan::Filter { input, .. } => estimate_physical_rows(input, catalog) / 3.0,
        PhysicalPlan::Project { input, .. } | PhysicalPlan::Sort { input, .. } => {
            estimate_physical_rows(input, catalog)
        }
        PhysicalPlan::Distinct { input } => estimate_physical_rows(input, catalog) / 2.0,
        PhysicalPlan::HashAggregate { input, mode, .. } => match mode {
            AggMode::Ungrouped => 1.0,
            AggMode::HashGrouped => estimate_physical_rows(input, catalog).sqrt().max(1.0),
        },
        PhysicalPlan::HashJoin { probe, build, .. } => {
            estimate_physical_rows(probe, catalog).max(estimate_physical_rows(build, catalog))
        }
        PhysicalPlan::NestedLoopJoin {
            probe, build, on, ..
        } => {
            let p = estimate_physical_rows(probe, catalog);
            let b = estimate_physical_rows(build, catalog);
            if on.is_some() {
                p.max(b)
            } else {
                p * b
            }
        }
        PhysicalPlan::SetOp { left, right, .. } => {
            estimate_physical_rows(left, catalog) + estimate_physical_rows(right, catalog)
        }
        PhysicalPlan::TopK { limit, offset, .. } => (limit + offset) as f64,
        PhysicalPlan::Limit {
            input,
            limit,
            offset,
        } => {
            let bound = limit.map_or(f64::INFINITY, |l| (l + offset) as f64);
            estimate_physical_rows(input, catalog).min(bound)
        }
    }
}

/// Clamp a [`estimate_physical_rows`] result into a hash-table
/// pre-sizing hint: bounded so a wild over-estimate can never balloon an
/// allocation (the table grows past the hint on demand anyway).
pub fn table_size_hint(estimate: f64) -> usize {
    const MAX_HINT: usize = 1 << 20;
    if estimate.is_finite() && estimate > 0.0 {
        (estimate as usize).min(MAX_HINT)
    } else {
        0
    }
}

/// Rough bytes per materialized build-side row, used only to predict
/// whether a join build fits the memory budget. Precision doesn't matter:
/// the prediction just decides which cardinality estimate picks sides.
const SPILL_EST_ROW_BYTES: f64 = 64.0;

#[allow(clippy::too_many_arguments)]
fn lower_join(
    left: &LogicalPlan,
    right: &LogicalPlan,
    kind: JoinKind,
    on: Option<&BoundExpr>,
    schema: &Schema,
    catalog: &Catalog,
    budget_limit: Option<usize>,
) -> Result<PhysicalPlan, EngineError> {
    let lwidth = left.schema().len();
    let rwidth = right.schema().len();

    // Children lower first so side selection can consult physical
    // estimates (which see pushed predicates the logical ones don't).
    let left_phys = lower_node(left, catalog, budget_limit)?;
    let right_phys = lower_node(right, catalog, budget_limit)?;

    // Pick sides. The probe side is the preserved side of outer joins, so
    // only INNER joins are free to swap for a smaller build table; RIGHT
    // joins must mirror (probe = right). Unbounded sessions keep the
    // legacy logical-estimate comparison (plans lower identically);
    // under a budget that the smaller side is predicted to outgrow —
    // i.e. the build will spill — the physical estimates decide, so the
    // side with fewer expected rows (partitions, spill files, grace
    // passes) builds.
    let swap = match kind {
        JoinKind::Right => true,
        JoinKind::Inner => {
            let le = estimate_physical_rows(&left_phys, catalog);
            let re = estimate_physical_rows(&right_phys, catalog);
            match budget_limit {
                Some(limit) if le.min(re) * SPILL_EST_ROW_BYTES > limit as f64 => le < re,
                _ => estimate_rows(left, catalog) < estimate_rows(right, catalog),
            }
        }
        _ => false,
    };
    let join = match kind {
        JoinKind::Inner | JoinKind::Cross => PhysJoinKind::Inner,
        JoinKind::Left | JoinKind::Right => PhysJoinKind::LeftOuter,
        JoinKind::Full => PhysJoinKind::FullOuter,
    };

    let (probe_phys, build_phys, probe_width, build_width) = if swap {
        (right_phys, left_phys, rwidth, lwidth)
    } else {
        (left_phys, right_phys, lwidth, rwidth)
    };

    // The ON clause was bound over `left ++ right`; re-express it over the
    // execution frame `probe ++ build`.
    let on_in_frame = on.map(|e| {
        let mut e = e.clone();
        if swap {
            e.remap_columns(&|i| if i < lwidth { i + rwidth } else { i - lwidth });
        }
        e
    });

    // Frame schema: probe columns then build columns.
    let frame_schema = if swap {
        let mut cols = right.schema().columns.clone();
        cols.extend(left.schema().columns.iter().cloned());
        Schema::new(cols)
    } else {
        schema.clone()
    };

    let probe = Box::new(probe_phys);
    let build = Box::new(build_phys);

    let (equi, residual) = match &on_in_frame {
        Some(pred) => split_equi_conjuncts(pred, probe_width, probe_width + build_width),
        None => (Vec::new(), None),
    };

    let joined = if equi.is_empty() {
        PhysicalPlan::NestedLoopJoin {
            probe,
            build,
            on: on_in_frame,
            join,
            schema: frame_schema,
        }
    } else {
        let (probe_keys, build_keys) = equi.into_iter().unzip();
        PhysicalPlan::HashJoin {
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
            join,
            schema: frame_schema,
        }
    };

    if !swap {
        return Ok(joined);
    }
    // Mirrored execution emitted `right ++ left`; restore `left ++ right`.
    let restore: Vec<BoundExpr> = schema
        .columns
        .iter()
        .enumerate()
        .map(|(i, col)| BoundExpr::Column {
            index: if i < lwidth { rwidth + i } else { i - lwidth },
            ty: Some(col.ty),
            name: col.name.clone(),
        })
        .collect();
    Ok(PhysicalPlan::Project {
        input: Box::new(joined),
        exprs: restore,
        schema: schema.clone(),
    })
}

/// Split a join predicate over `probe ++ build` into `(probe_col,
/// build_col)` equality pairs plus a residual (None when fully consumed).
/// Only top-level AND conjuncts are considered.
fn split_equi_conjuncts(
    pred: &BoundExpr,
    probe_width: usize,
    total_width: usize,
) -> (Vec<(usize, usize)>, Option<BoundExpr>) {
    let mut conjuncts = Vec::new();
    flatten_and(pred, &mut conjuncts);
    let mut equi = Vec::new();
    let mut residual: Vec<BoundExpr> = Vec::new();
    for c in conjuncts {
        if let BoundExpr::Binary {
            op: BinaryOp::Eq,
            left,
            right,
        } = &c
        {
            if let (BoundExpr::Column { index: a, .. }, BoundExpr::Column { index: b, .. }) =
                (left.as_ref(), right.as_ref())
            {
                if *a < probe_width && (probe_width..total_width).contains(b) {
                    equi.push((*a, *b - probe_width));
                    continue;
                }
                if *b < probe_width && (probe_width..total_width).contains(a) {
                    equi.push((*b, *a - probe_width));
                    continue;
                }
            }
        }
        residual.push(c);
    }
    let residual = residual.into_iter().reduce(|l, r| BoundExpr::Binary {
        op: BinaryOp::And,
        left: Box::new(l),
        right: Box::new(r),
    });
    (equi, residual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::storage::Table;
    use crate::types::DataType;
    use crate::value::Value;
    use ivm_sql::ast::Statement;

    fn catalog_with_sizes(small_rows: usize, big_rows: usize) -> Catalog {
        let mut c = Catalog::new();
        let mut small = Table::new(
            "small",
            Schema::new(vec![Column::new("id", DataType::Integer)]),
            vec![],
        );
        for v in 0..small_rows {
            small.insert(vec![Value::Integer(v as i64)]).unwrap();
        }
        let mut big = Table::new(
            "big",
            Schema::new(vec![
                Column::new("id", DataType::Integer),
                Column::new("v", DataType::Integer),
            ]),
            vec![],
        );
        for v in 0..big_rows {
            big.insert(vec![Value::Integer(v as i64), Value::Integer(0)])
                .unwrap();
        }
        c.create_table(small).unwrap();
        c.create_table(big).unwrap();
        c
    }

    fn lower_sql(sql: &str, catalog: &Catalog) -> PhysicalPlan {
        let q = match ivm_sql::parse_statement(sql).unwrap() {
            Statement::Query(q) => q,
            _ => unreachable!(),
        };
        let plan = crate::optimizer::optimize(crate::planner::plan_query(&q, catalog).unwrap());
        lower(&plan, catalog).unwrap()
    }

    fn find_hash_join(plan: &PhysicalPlan) -> &PhysicalPlan {
        match plan {
            PhysicalPlan::HashJoin { .. } => plan,
            PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Distinct { input } => find_hash_join(input),
            other => panic!("no hash join in {}", other.explain()),
        }
    }

    #[test]
    fn inner_join_builds_on_smaller_side() {
        let catalog = catalog_with_sizes(5, 5000);
        let p = lower_sql(
            "SELECT * FROM big JOIN small ON big.id = small.id",
            &catalog,
        );
        // big is left in SQL, but small must end up as the build side, with
        // a restoring projection on top.
        let PhysicalPlan::HashJoin {
            probe,
            build,
            probe_keys,
            build_keys,
            join,
            ..
        } = find_hash_join(&p)
        else {
            unreachable!()
        };
        assert_eq!(*join, PhysJoinKind::Inner);
        assert!(matches!(**build, PhysicalPlan::TableScan { ref table, .. } if table == "small"));
        assert!(matches!(**probe, PhysicalPlan::TableScan { ref table, .. } if table == "big"));
        assert_eq!(probe_keys, &vec![0]);
        assert_eq!(build_keys, &vec![0]);
    }

    #[test]
    fn right_join_mirrors_to_left_outer_with_restore() {
        let catalog = catalog_with_sizes(5, 50);
        let p = lower_sql(
            "SELECT * FROM small RIGHT JOIN big ON small.id = big.id",
            &catalog,
        );
        // A restoring projection must sit above the mirrored join.
        let PhysicalPlan::Project { input, schema, .. } = &p else {
            panic!("expected restoring projection:\n{}", p.explain());
        };
        assert_eq!(schema.names(), vec!["id", "id", "v"]);
        let PhysicalPlan::HashJoin { probe, join, .. } = find_hash_join(input) else {
            unreachable!()
        };
        assert_eq!(*join, PhysJoinKind::LeftOuter);
        // The preserved (right) side streams as the probe.
        assert!(matches!(**probe, PhysicalPlan::TableScan { ref table, .. } if table == "big"));
    }

    #[test]
    fn outer_joins_never_swap() {
        let catalog = catalog_with_sizes(5, 5000);
        let p = lower_sql(
            "SELECT * FROM big LEFT JOIN small ON big.id = small.id",
            &catalog,
        );
        let PhysicalPlan::HashJoin { probe, join, .. } = find_hash_join(&p) else {
            unreachable!()
        };
        assert_eq!(*join, PhysJoinKind::LeftOuter);
        assert!(matches!(**probe, PhysicalPlan::TableScan { ref table, .. } if table == "big"));
    }

    #[test]
    fn residual_splits_from_equi_keys() {
        let catalog = catalog_with_sizes(10, 20);
        let p = lower_sql(
            "SELECT * FROM big JOIN small ON big.id = small.id AND big.v > 3",
            &catalog,
        );
        let PhysicalPlan::HashJoin {
            residual,
            probe_keys,
            ..
        } = find_hash_join(&p)
        else {
            unreachable!()
        };
        assert!(residual.is_some());
        assert_eq!(probe_keys.len(), 1);
    }

    #[test]
    fn non_equi_join_lowers_to_nested_loop() {
        let catalog = catalog_with_sizes(10, 20);
        let p = lower_sql(
            "SELECT * FROM big JOIN small ON big.id < small.id",
            &catalog,
        );
        assert!(p.explain().contains("NestedLoopJoin"), "{}", p.explain());
    }

    #[test]
    fn aggregate_mode_fixed_at_plan_time() {
        let catalog = catalog_with_sizes(10, 20);
        let grouped = lower_sql("SELECT id, COUNT(*) FROM big GROUP BY id", &catalog);
        assert!(
            grouped.explain().contains("HashGrouped"),
            "{}",
            grouped.explain()
        );
        let global = lower_sql("SELECT COUNT(*) FROM big", &catalog);
        assert!(
            global.explain().contains("Ungrouped"),
            "{}",
            global.explain()
        );
    }

    #[test]
    fn filters_fold_into_scans() {
        let catalog = catalog_with_sizes(10, 20);
        let p = lower_sql("SELECT v FROM big WHERE v > 3 AND id = 7", &catalog);
        fn find_scan(plan: &PhysicalPlan) -> &PhysicalPlan {
            match plan {
                PhysicalPlan::TableScan { .. } => plan,
                PhysicalPlan::Project { input, .. }
                | PhysicalPlan::Filter { input, .. }
                | PhysicalPlan::Limit { input, .. } => find_scan(input),
                other => panic!("unexpected node in {}", other.explain()),
            }
        }
        let PhysicalPlan::TableScan {
            predicate,
            index_eq,
            ..
        } = find_scan(&p)
        else {
            unreachable!()
        };
        assert!(predicate.is_some(), "{}", p.explain());
        assert_eq!(index_eq.len(), 1, "{}", p.explain());
        assert_eq!(index_eq[0].0, 0, "id is column 0");
        assert!(
            !p.explain().contains("Filter"),
            "no standalone filter left:\n{}",
            p.explain()
        );
    }

    #[test]
    fn filters_above_joins_stay_filters_only_on_scans() {
        // HAVING filters sit above aggregates and must not be folded.
        let catalog = catalog_with_sizes(10, 20);
        let p = lower_sql(
            "SELECT id, COUNT(*) AS c FROM big GROUP BY id HAVING COUNT(*) > 1",
            &catalog,
        );
        assert!(p.explain().contains("Filter"), "{}", p.explain());
    }

    #[test]
    fn order_by_limit_lowers_to_top_k() {
        let catalog = catalog_with_sizes(10, 20);
        let p = lower_sql(
            "SELECT v FROM big ORDER BY v DESC LIMIT 5 OFFSET 2",
            &catalog,
        );
        let explain = p.explain();
        assert!(
            explain.contains("TopK keys=1 limit=5 offset=2"),
            "{explain}"
        );
        assert!(!explain.contains("Sort"), "{explain}");
        // LIMIT without ORDER BY stays a streaming limit.
        let p = lower_sql("SELECT v FROM big LIMIT 5", &catalog);
        assert!(p.explain().contains("Limit"), "{}", p.explain());
        // ORDER BY without LIMIT stays a full sort.
        let p = lower_sql("SELECT v FROM big ORDER BY v", &catalog);
        assert!(p.explain().contains("Sort"), "{}", p.explain());
    }

    #[test]
    fn estimates_track_table_sizes() {
        let catalog = catalog_with_sizes(5, 5000);
        let small = LogicalPlan::Scan {
            table: "small".into(),
            schema: catalog.table("small").unwrap().schema.clone(),
        };
        let big = LogicalPlan::Scan {
            table: "big".into(),
            schema: catalog.table("big").unwrap().schema.clone(),
        };
        assert!(estimate_rows(&small, &catalog) < estimate_rows(&big, &catalog));
    }
}
