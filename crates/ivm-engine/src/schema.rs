//! Column and schema descriptors.

use crate::types::DataType;

/// One column of a table or intermediate result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (normalized lower case for unquoted identifiers).
    pub name: String,
    /// Column type.
    pub ty: DataType,
    /// NOT NULL constraint (only enforced on base tables).
    pub not_null: bool,
}

impl Column {
    /// A nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Column {
        Column {
            name: name.into(),
            ty,
            not_null: false,
        }
    }

    /// A NOT NULL column.
    pub fn not_null(name: impl Into<String>, ty: DataType) -> Column {
        Column {
            name: name.into(),
            ty,
            not_null: true,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The columns, in position order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from columns.
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Position of the column with the given (normalized) name.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Column types in order.
    pub fn types(&self) -> Vec<DataType> {
        self.columns.iter().map(|c| c.ty).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_lookup() {
        let s = Schema::new(vec![
            Column::new("a", DataType::Integer),
            Column::not_null("b", DataType::Varchar),
        ]);
        assert_eq!(s.position("b"), Some(1));
        assert_eq!(s.position("missing"), None);
        assert_eq!(s.len(), 2);
        assert!(s.columns[1].not_null);
    }
}
