//! The embedded database session: `Database::execute(sql)`.

use std::collections::HashMap;
use std::sync::Arc;

use ivm_sql::ast::{
    Assignment, ConflictAction, CreateIndex, CreateTable, Delete, Drop, DropKind, Insert,
    InsertSource, Query, Statement, Update,
};
use ivm_sql::{parse_statement, parse_statements};

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::exec::{
    clean_orphan_spill_files, execute_parallel, execute_physical_budgeted, parallel_filter_row_ids,
    prepare_expr_with_batch_size, MemoryBudget, ParallelOptions, Row, SpillStats,
    DEFAULT_BATCH_SIZE, DEFAULT_MORSEL_SIZE,
};
use crate::expr::bind::{bind_expr_with, Scope};
use crate::expr::BindColumn;
use crate::optimizer::optimize;
use crate::planner::physical::{lower_with_budget, PhysicalPlan};
use crate::planner::plan_query;
use crate::schema::{Column, Schema};
use crate::storage::durability::{Durability, DurabilityOptions, RecoveryStats};
use crate::storage::wal::WalStats;
use crate::storage::{BufferPoolStats, Table};
use crate::types::DataType;
use crate::value::Value;

/// Environment variable read by [`Database::new`] for the default number
/// of executor worker threads (CI runs the test suite at 1 and 4). When
/// unset, the pool defaults to `std::thread::available_parallelism()`;
/// setting it to `1` is the explicit serial bypass.
pub const PARALLELISM_ENV: &str = "OPENIVM_PARALLELISM";

/// Environment variable read by [`Database::new`] for the default
/// executor memory budget (bytes, with optional `K`/`KB`/`M`/`MB`/`G`/
/// `GB` suffix; `0` or `unbounded` disables the budget). CI runs the
/// whole test suite once with a small value so every test doubles as a
/// spill-correctness test.
pub const MEMORY_BUDGET_ENV: &str = "OPENIVM_MEMORY_BUDGET";

/// Environment variable read by [`Database::new`] for the directory
/// spill files are created in (default: the system temp directory).
pub const SPILL_DIR_ENV: &str = "OPENIVM_SPILL_DIR";

/// Environment variable read by [`Database::new`]: when set, every
/// database created through `new`/`default` is durable, backed by a
/// fresh *ephemeral* subdirectory of the given path (unique per
/// database, removed on drop). This is the CI switch that runs the
/// whole test suite against the page/WAL stack; explicitly durable
/// databases use [`Database::open`] instead. WAL fsync is off in this
/// mode — crash-safety is exercised by the dedicated harness, not the
/// suite-wide leg.
pub const DATA_DIR_ENV: &str = "OPENIVM_DATA_DIR";

/// Parse an `OPENIVM_DATA_DIR` value: a non-empty path.
///
/// Shared by the env reader (which turns `Err` into a loud startup
/// panic — a typo'd setting must never silently fall back) and tests.
pub fn parse_data_dir_setting(raw: &str) -> Result<std::path::PathBuf, EngineError> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err(EngineError::bind(format!(
            "invalid {DATA_DIR_ENV} value {raw:?}: expected a directory path"
        )));
    }
    Ok(std::path::PathBuf::from(trimmed))
}

/// Parse an `OPENIVM_PARALLELISM` value: a positive integer.
///
/// Shared by the env reader (which turns `Err` into a loud startup
/// panic — a typo'd setting must never silently fall back) and tests.
pub fn parse_parallelism_setting(raw: &str) -> Result<usize, EngineError> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(EngineError::bind(format!(
            "invalid {PARALLELISM_ENV} value {raw:?}: expected a positive integer \
             (e.g. 1 for serial, 4 for four workers)"
        ))),
    }
}

/// Parse an `OPENIVM_MEMORY_BUDGET` value: a byte count with an optional
/// `K`/`KB`/`M`/`MB`/`G`/`GB` suffix (case-insensitive); `0` or
/// `unbounded` disables the budget. Returns `None` for unbounded.
pub fn parse_memory_budget_setting(raw: &str) -> Result<Option<usize>, EngineError> {
    let s = raw.trim();
    let invalid = || {
        EngineError::bind(format!(
            "invalid {MEMORY_BUDGET_ENV} value {raw:?}: expected bytes with an optional \
             K/KB/M/MB/G/GB suffix (e.g. 64KB, 512M), or 0/unbounded to disable"
        ))
    };
    if s.eq_ignore_ascii_case("unbounded") {
        return Ok(None);
    }
    let upper = s.to_ascii_uppercase();
    let (digits, multiplier) = if let Some(p) = upper.strip_suffix("KB").or(upper.strip_suffix("K"))
    {
        (p, 1usize << 10)
    } else if let Some(p) = upper.strip_suffix("MB").or(upper.strip_suffix("M")) {
        (p, 1 << 20)
    } else if let Some(p) = upper.strip_suffix("GB").or(upper.strip_suffix("G")) {
        (p, 1 << 30)
    } else {
        (upper.as_str(), 1)
    };
    let digits = digits.trim();
    if digits.is_empty() {
        return Err(invalid());
    }
    let n: usize = digits.parse().map_err(|_| invalid())?;
    let bytes = n.checked_mul(multiplier).ok_or_else(invalid)?;
    Ok(if bytes == 0 { None } else { Some(bytes) })
}

/// Read and validate an environment setting; invalid values are a loud
/// startup error (panic with the parse message), never a silent default.
fn env_setting<T>(name: &str, parse: impl FnOnce(&str) -> Result<T, EngineError>) -> Option<T> {
    match std::env::var(name) {
        Ok(raw) => Some(parse(&raw).unwrap_or_else(|e| panic!("{e}"))),
        Err(_) => None,
    }
}

pub(crate) fn env_parallelism() -> usize {
    // An explicit setting wins; `1` is the explicit serial bypass.
    // Unset: size the worker pool from the machine.
    env_setting(PARALLELISM_ENV, parse_parallelism_setting)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
}

pub(crate) fn env_budget() -> MemoryBudget {
    let budget = match env_setting(MEMORY_BUDGET_ENV, parse_memory_budget_setting).flatten() {
        Some(bytes) => MemoryBudget::with_limit(bytes),
        None => MemoryBudget::unbounded(),
    };
    if let Some(dir) = std::env::var_os(SPILL_DIR_ENV) {
        budget.set_spill_dir(std::path::PathBuf::from(dir));
    }
    budget
}

/// Cache key of a bound plan: the SQL text plus the session settings the
/// lowered shape depends on. `lower_with_budget` bakes a budget-dependent
/// build-side choice into the physical plan, so a plan lowered under one
/// memory budget must never be reused under another — keying (rather
/// than invalidating) also lets a session that flips a setting back
/// re-hit its earlier plans, and lets sessions with different settings
/// share one cache without evicting each other's entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    sql: String,
    budget: Option<usize>,
    parallelism: usize,
}

/// A cached optimized physical plan, valid while the catalog shape
/// (tables, views, indexes) is unchanged.
#[derive(Debug, Clone)]
struct CachedPlan {
    generation: u64,
    physical: Arc<PhysicalPlan>,
    columns: Vec<String>,
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Output column names (empty for DML/DDL).
    pub columns: Vec<String>,
    /// Result rows (empty for DML/DDL).
    pub rows: Vec<Row>,
    /// Rows inserted/updated/deleted by DML.
    pub rows_affected: usize,
}

impl QueryResult {
    fn dml(rows_affected: usize) -> QueryResult {
        QueryResult {
            rows_affected,
            ..Default::default()
        }
    }

    /// First value of the first row, if any (convenience for scalar queries).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// An embedded database instance — the role DuckDB plays inside OpenIVM
/// ("linking it as a library" per Figure 1).
///
/// Queries run through the batched physical-operator pipeline: logical
/// plans are lowered to [`crate::planner::PhysicalPlan`]s and executed
/// batch-at-a-time (see [`crate::exec`]). With
/// [`set_parallelism`](Database::set_parallelism) above 1, plans run on
/// the morsel-driven parallel executor ([`crate::exec::parallel`]);
/// at 1 (the default) execution is the unchanged serial operator tree.
#[derive(Debug)]
pub struct Database {
    catalog: Catalog,
    batch_size: usize,
    parallelism: usize,
    morsel_size: usize,
    /// Whether [`set_morsel_size`](Database::set_morsel_size) was called:
    /// an explicit size disables adaptive morsel scaling.
    morsel_size_explicit: bool,
    /// Memory budget shared by every query of the session; bounded
    /// budgets make pipeline breakers spill radix partitions to disk.
    budget: MemoryBudget,
    /// Physical-plan cache for repeated statements (maintenance scripts),
    /// invalidated by bumping `ddl_generation`.
    plan_cache: HashMap<PlanKey, CachedPlan>,
    ddl_generation: u64,
    plan_cache_hits: usize,
    /// Durable backing (pages + WAL + checkpoints); `None` = in-memory
    /// mode, where every code path behaves exactly as before.
    durability: Option<Durability>,
    /// Depth of open [`begin_atomic`](Database::begin_atomic) batches;
    /// while positive, per-statement WAL commits are deferred.
    atomic_depth: u32,
    /// Checkpoint automatically once the WAL has this many bytes
    /// (`None` = only explicit checkpoints). Checked after each
    /// statement-level commit, outside atomic batches.
    auto_checkpoint_bytes: Option<u64>,
    /// Removes the (env-driven, per-database) data directory on drop.
    /// Declared after `durability` so files are closed first.
    ephemeral_dir: Option<EphemeralDir>,
}

/// Drop guard deleting an env-driven ephemeral data directory.
#[derive(Debug)]
struct EphemeralDir(std::path::PathBuf);

impl std::ops::Drop for EphemeralDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Sequence for unique ephemeral data subdirectories within one process.
static EPHEMERAL_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl Default for Database {
    fn default() -> Database {
        let mut db = Database::base();
        if let Some(root) = env_setting(DATA_DIR_ENV, parse_data_dir_setting) {
            let seq = EPHEMERAL_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let dir = root.join(format!("db-{}-{seq}", std::process::id()));
            let opts = DurabilityOptions {
                sync_on_commit: false,
                ..DurabilityOptions::default()
            };
            db.open_at(&dir, opts)
                .unwrap_or_else(|e| panic!("{DATA_DIR_ENV}: cannot open {}: {e}", dir.display()));
            db.ephemeral_dir = Some(EphemeralDir(dir));
        }
        db
    }
}

impl Database {
    /// An empty in-memory database, before any `OPENIVM_DATA_DIR` wrap.
    fn base() -> Database {
        Database {
            catalog: Catalog::new(),
            batch_size: DEFAULT_BATCH_SIZE,
            parallelism: env_parallelism(),
            morsel_size: DEFAULT_MORSEL_SIZE,
            morsel_size_explicit: false,
            budget: env_budget(),
            plan_cache: HashMap::new(),
            ddl_generation: 0,
            plan_cache_hits: 0,
            durability: None,
            atomic_depth: 0,
            auto_checkpoint_bytes: None,
            ephemeral_dir: None,
        }
    }

    /// An empty database. Executor parallelism defaults to
    /// `$OPENIVM_PARALLELISM` when set (1 = explicit serial bypass), else
    /// to `std::thread::available_parallelism()`. With
    /// `$OPENIVM_DATA_DIR` set, the database is durable in a fresh
    /// ephemeral subdirectory of that path (see [`DATA_DIR_ENV`]).
    pub fn new() -> Database {
        Database::default()
    }

    /// Open (or create) a durable database at `path`: recover the last
    /// checkpoint, replay the committed WAL prefix, and fsync every
    /// commit from here on. Tables, views, and row ids come back exactly
    /// as of the last committed statement.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Database, EngineError> {
        Database::open_with_options(path, DurabilityOptions::default())
    }

    /// [`Database::open`] with explicit durability tuning (fsync policy,
    /// buffer pool size, WAL segment size bound).
    pub fn open_with_options(
        path: impl AsRef<std::path::Path>,
        opts: DurabilityOptions,
    ) -> Result<Database, EngineError> {
        let mut db = Database::base();
        db.open_at(path.as_ref(), opts)?;
        Ok(db)
    }

    /// Attach durable backing from `dir` to this (empty) database.
    fn open_at(
        &mut self,
        dir: &std::path::Path,
        opts: DurabilityOptions,
    ) -> Result<(), EngineError> {
        // A crashed process leaves spill temp files behind; reclaim the
        // dead ones while we're recovering its durable state anyway.
        clean_orphan_spill_files(&self.budget.spill_dir());
        let (durability, mut catalog) = Durability::open(dir, opts)?;
        catalog.set_wal(Some(durability.wal_handle()));
        self.catalog = catalog;
        self.durability = Some(durability);
        self.invalidate_plans();
        Ok(())
    }

    /// Whether this database has durable backing.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The durable data directory, when [`Database::is_durable`].
    pub fn data_dir(&self) -> Option<&std::path::Path> {
        self.durability.as_ref().map(Durability::dir)
    }

    /// Checkpoint the durable state: write dirty tables to fresh pages,
    /// publish the new catalog meta atomically, and truncate the WAL.
    /// A no-op for in-memory databases.
    pub fn checkpoint(&mut self) -> Result<(), EngineError> {
        match &mut self.durability {
            Some(d) => d.checkpoint(&self.catalog),
            None => Ok(()),
        }
    }

    /// Checkpoint and drop the database (the clean shutdown path). When
    /// the WAL is poisoned (read-only degraded mode after a commit-path
    /// I/O failure) the checkpoint is skipped and close still succeeds:
    /// the durable state on disk is exactly the last acknowledged commit.
    pub fn close(mut self) -> Result<(), EngineError> {
        if self.is_degraded() {
            return Ok(());
        }
        self.checkpoint()
    }

    /// Whether the database has dropped into read-only degraded mode: a
    /// WAL commit-path write or fsync failed, so DML is refused (queries
    /// keep working) until the database is reopened.
    pub fn is_degraded(&self) -> bool {
        self.durability
            .as_ref()
            .is_some_and(Durability::wal_poisoned)
    }

    /// Checkpoint automatically once the WAL holds `bytes` (`None`
    /// disables, the default). Checked after each statement-level commit,
    /// outside atomic batches — the knob that keeps a long uncheckpointed
    /// run from accumulating unbounded WAL segments.
    pub fn set_auto_checkpoint(&mut self, bytes: Option<u64>) {
        self.auto_checkpoint_bytes = bytes;
    }

    /// Refuse mutating statements in degraded mode with a clean error.
    fn degraded_gate(&self, stmt: &Statement) -> Result<(), EngineError> {
        let mutates = !matches!(
            stmt,
            Statement::Query(_)
                | Statement::Explain(_)
                | Statement::Begin
                | Statement::Commit
                | Statement::Rollback
        );
        if mutates && self.is_degraded() {
            return Err(EngineError::execution(
                "database is in read-only degraded mode (WAL commit failed); \
                 reopen it to resume writes",
            ));
        }
        Ok(())
    }

    /// Statement-level durability epilogue: commit the WAL, then take the
    /// size-triggered auto-checkpoint when configured.
    fn commit_statement(&mut self) -> Result<(), EngineError> {
        self.wal_commit()?;
        if let Some(threshold) = self.auto_checkpoint_bytes {
            if self.atomic_depth == 0 && !self.is_degraded() {
                let bytes = self
                    .durability
                    .as_ref()
                    .map(|d| d.wal_stats().bytes_written)
                    .unwrap_or(0);
                if bytes >= threshold {
                    self.checkpoint()?;
                }
            }
        }
        Ok(())
    }

    /// Make the current WAL statement durable (group-commit point). The
    /// SQL execution paths call this automatically after every
    /// statement; direct [`Database::catalog_mut`] mutations should call
    /// it when they want their writes to survive a crash. A no-op for
    /// in-memory databases and inside an open atomic batch.
    pub fn wal_commit(&mut self) -> Result<(), EngineError> {
        if self.atomic_depth > 0 {
            return Ok(());
        }
        match &self.durability {
            Some(d) => d.wal_commit(),
            None => Ok(()),
        }
    }

    /// Start an atomic durability batch: until the matching
    /// [`end_atomic`](Database::end_atomic), per-statement WAL commits are
    /// deferred, so recovery sees the whole batch or none of it. Callers
    /// composing one logical operation out of several statements (delta
    /// capture, view propagation scripts) use this to keep crash recovery
    /// from resurfacing a half-applied operation. Batches nest; only the
    /// outermost end commits. A no-op for in-memory databases.
    pub fn begin_atomic(&mut self) {
        self.atomic_depth += 1;
    }

    /// Close an atomic durability batch and, at the outermost level,
    /// commit its WAL records as one durability point. Call this even
    /// when a statement inside the batch failed: in-memory semantics keep
    /// the applied prefix, and recovery must reproduce exactly that.
    pub fn end_atomic(&mut self) -> Result<(), EngineError> {
        debug_assert!(self.atomic_depth > 0, "end_atomic without begin_atomic");
        self.atomic_depth = self.atomic_depth.saturating_sub(1);
        if self.atomic_depth == 0 {
            self.wal_commit()
        } else {
            Ok(())
        }
    }

    /// Drop a durable table's rows from memory, keeping it queryable
    /// metadata-wise (data at rest can exceed RAM; the working set is
    /// reloaded on demand). Checkpoints first if the table has
    /// uncheckpointed changes. Errors for in-memory databases.
    pub fn unload_table(&mut self, name: &str) -> Result<(), EngineError> {
        if self.durability.is_none() {
            return Err(EngineError::unsupported(
                "unload_table requires a durable database",
            ));
        }
        let generation = self.catalog.table(name)?.generation();
        let clean = self
            .durability
            .as_ref()
            .is_some_and(|d| d.is_clean(name, generation));
        if !clean {
            self.checkpoint()?;
        }
        self.catalog.evict_table(name)?;
        Ok(())
    }

    /// Reload an unloaded table from its checkpointed pages. A no-op if
    /// the table is already resident.
    pub fn load_table(&mut self, name: &str) -> Result<(), EngineError> {
        if !self.catalog.is_unloaded(name) {
            // Resident (or missing: surface the catalog error).
            self.catalog.table(name).map(|_| ())?;
            return Ok(());
        }
        let d = self
            .durability
            .as_mut()
            .ok_or_else(|| EngineError::unsupported("load_table requires a durable database"))?;
        let table = d.load_table(name)?;
        self.catalog.restore_table(table)
    }

    /// Counters from the last recovery ([`Database::open`]), when durable.
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        self.durability.as_ref().map(Durability::recovery_stats)
    }

    /// Cumulative WAL counters, when durable.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.durability.as_ref().map(Durability::wal_stats)
    }

    /// Cumulative buffer pool counters, when durable.
    pub fn buffer_pool_stats(&self) -> Option<BufferPoolStats> {
        self.durability.as_ref().map(Durability::pool_stats)
    }

    /// An empty database with an explicit executor batch size (rows per
    /// [`crate::exec::RowBatch`]; clamped to ≥ 1).
    pub fn with_batch_size(batch_size: usize) -> Database {
        let mut db = Database::default();
        db.set_batch_size(batch_size);
        db
    }

    /// The executor batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Change the executor batch size (rows per batch; clamped to ≥ 1).
    pub fn set_batch_size(&mut self, batch_size: usize) {
        self.batch_size = batch_size.max(1);
    }

    /// The number of executor worker threads.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Set the number of executor worker threads (clamped to ≥ 1). At 1,
    /// queries run the serial operator tree; above 1, the morsel-driven
    /// parallel executor.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.parallelism = workers.max(1);
    }

    /// The morsel size (physical slots per scheduling unit) used by the
    /// parallel executor.
    pub fn morsel_size(&self) -> usize {
        self.morsel_size
    }

    /// Set the parallel executor's morsel size (clamped to ≥ 1). Tables
    /// spanning at most one morsel run serially; tests shrink this to
    /// exercise multi-morsel scheduling on small tables. An explicit
    /// size also disables the adaptive scaling that grows morsels on
    /// large scans.
    pub fn set_morsel_size(&mut self, slots: usize) {
        self.morsel_size = slots.max(1);
        self.morsel_size_explicit = true;
    }

    /// `(entries, hits)` of the bound-plan cache (see
    /// [`execute_statement_cached`](Database::execute_statement_cached)).
    pub fn plan_cache_stats(&self) -> (usize, usize) {
        (self.plan_cache.len(), self.plan_cache_hits)
    }

    /// Set the executor memory budget in bytes (`None` = unbounded, the
    /// default). Under a bounded budget, hash-join builds, group tables,
    /// DISTINCT, and set operations spill radix partitions to temp files
    /// when their tracked state exceeds the budget, and rehydrate them
    /// partition-at-a-time — results are row-identical to unbounded
    /// execution at any [`parallelism`](Database::parallelism): above 1,
    /// breaker inputs stream through per-worker spill partitioners
    /// (never staged as materialized row vectors), spill writes happen
    /// on a background writer thread, and spilled output merge-emits in
    /// sequence order. Environment default: `$OPENIVM_MEMORY_BUDGET`.
    ///
    /// Trade-offs: grouped aggregation, DISTINCT, and set operations
    /// cannot re-scan their input, so a bounded budget routes them
    /// through the partitioned spill framework even when nothing ends up
    /// spilling (serial joins fall back to the streaming path when the
    /// build side fits).
    pub fn set_memory_budget(&mut self, bytes: Option<usize>) {
        self.budget.set_limit(bytes);
        // The planner's build-side choice is budget-aware; the plan
        // cache is keyed on the budget, so entries lowered under the old
        // setting simply stop matching (and match again if it returns).
    }

    /// The executor memory budget in bytes (`None` = unbounded).
    pub fn memory_budget(&self) -> Option<usize> {
        self.budget.limit()
    }

    /// Set the directory spill files are created in (default: the system
    /// temp directory, or `$OPENIVM_SPILL_DIR`).
    pub fn set_spill_dir(&mut self, dir: impl Into<std::path::PathBuf>) {
        self.budget.set_spill_dir(dir.into());
    }

    /// Cumulative spill/rehydrate counters for this session.
    pub fn spill_stats(&self) -> SpillStats {
        self.budget.stats()
    }

    /// Cumulative `(typed, fallback)` row counters for the typed columnar
    /// key path (process-wide — see
    /// [`exec::typed_path_stats`](crate::exec::typed_path_stats)).
    pub fn typed_path_stats(&self) -> (u64, u64) {
        crate::exec::typed_path_stats()
    }

    /// Run an already-lowered physical plan with this session's batch
    /// size, parallelism, and memory budget.
    fn run_physical(&self, physical: &PhysicalPlan) -> Result<Vec<Row>, EngineError> {
        if self.parallelism > 1 {
            execute_parallel(
                physical,
                &self.catalog,
                self.batch_size,
                ParallelOptions {
                    workers: self.parallelism,
                    morsel_size: self.morsel_size,
                    budget: self.budget.clone(),
                    adaptive_morsels: !self.morsel_size_explicit,
                },
            )
        } else {
            execute_physical_budgeted(physical, &self.catalog, self.batch_size, &self.budget)
        }
    }

    /// Plan, lower, and run a logical plan.
    fn run_plan(&self, plan: &crate::planner::LogicalPlan) -> Result<Vec<Row>, EngineError> {
        let physical = lower_with_budget(plan, &self.catalog, self.budget.limit())?;
        self.run_physical(&physical)
    }

    /// The optimized physical plan for `q`, from the plan cache when the
    /// catalog shape is unchanged since it was stored.
    fn cached_physical(
        &mut self,
        key: &str,
        q: &Query,
    ) -> Result<(Arc<PhysicalPlan>, Vec<String>), EngineError> {
        let cache_key = PlanKey {
            sql: key.to_string(),
            budget: self.budget.limit(),
            parallelism: self.parallelism,
        };
        if let Some(hit) = self.plan_cache.get(&cache_key) {
            if hit.generation == self.ddl_generation {
                self.plan_cache_hits += 1;
                return Ok((Arc::clone(&hit.physical), hit.columns.clone()));
            }
        }
        let plan = optimize(plan_query(q, &self.catalog)?);
        let columns = plan.schema().names();
        let physical = Arc::new(lower_with_budget(
            &plan,
            &self.catalog,
            self.budget.limit(),
        )?);
        // Keep the cache bounded: evict stale-generation entries first,
        // and wholesale if distinct keys alone exceed the cap (a fixed
        // maintenance-script set never comes close).
        const PLAN_CACHE_CAP: usize = 1024;
        if self.plan_cache.len() >= PLAN_CACHE_CAP {
            let generation = self.ddl_generation;
            self.plan_cache.retain(|_, e| e.generation == generation);
            if self.plan_cache.len() >= PLAN_CACHE_CAP {
                self.plan_cache.clear();
            }
        }
        self.plan_cache.insert(
            cache_key,
            CachedPlan {
                generation: self.ddl_generation,
                physical: Arc::clone(&physical),
                columns: columns.clone(),
            },
        );
        Ok((physical, columns))
    }

    /// Borrow the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutably borrow the catalog (bulk loads, index rebuilds). Data
    /// mutations never stale the plan cache; if you *drop or re-create
    /// tables* through this handle (instead of SQL DDL, which invalidates
    /// automatically), call [`invalidate_plans`](Database::invalidate_plans).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Drop every cached physical plan (catalog shape changed outside the
    /// SQL DDL path).
    pub fn invalidate_plans(&mut self) {
        self.ddl_generation += 1;
        self.plan_cache.clear();
    }

    /// The catalog-shape generation the plan cache validates against;
    /// snapshot publication stamps it into each published snapshot so
    /// shared prepared-statement caches can do the same validation.
    pub(crate) fn ddl_generation(&self) -> u64 {
        self.ddl_generation
    }

    /// Execute a single SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, EngineError> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute a `;`-separated script, returning one result per statement.
    /// Execution stops at the first error.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<QueryResult>, EngineError> {
        let stmts = parse_statements(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(self.execute_statement(stmt)?);
        }
        Ok(out)
    }

    /// Execute a read-only query and return its rows.
    pub fn query(&self, sql: &str) -> Result<QueryResult, EngineError> {
        let stmt = parse_statement(sql)?;
        match &stmt {
            Statement::Query(q) => {
                let plan = optimize(plan_query(q, &self.catalog)?);
                let rows = self.run_plan(&plan)?;
                Ok(QueryResult {
                    columns: plan.schema().names(),
                    rows,
                    rows_affected: 0,
                })
            }
            _ => Err(EngineError::unsupported(
                "query() accepts SELECT statements only",
            )),
        }
    }

    /// Execute one parsed statement. In a durable database this also (a)
    /// reloads any unloaded tables the statement touches and (b) commits
    /// the statement's WAL records afterwards — including after an error,
    /// because in-memory semantics keep the applied prefix of a partially
    /// failed statement, and recovery must reproduce exactly that state.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<QueryResult, EngineError> {
        self.degraded_gate(stmt)?;
        self.ensure_resident_for(stmt)?;
        let result = self.execute_statement_inner(stmt);
        let commit = self.commit_statement();
        match result {
            Err(e) => Err(e),
            Ok(r) => commit.map(|()| r),
        }
    }

    /// Tables the statement touches, for the durable residency pre-pass.
    fn ensure_resident_for(&mut self, stmt: &Statement) -> Result<(), EngineError> {
        if self.durability.is_none() || self.catalog.unloaded_names().is_empty() {
            return Ok(());
        }
        fn query_tables(q: &Query, out: &mut Vec<String>) {
            out.extend(
                q.referenced_tables()
                    .iter()
                    .map(|i| i.normalized().to_string()),
            );
        }
        let mut names: Vec<String> = Vec::new();
        match stmt {
            Statement::Query(q) => query_tables(q, &mut names),
            Statement::Insert(ins) => {
                names.push(ins.table.normalized().to_string());
                if let InsertSource::Query(q) = &ins.source {
                    query_tables(q, &mut names);
                }
            }
            Statement::Update(u) => names.push(u.table.normalized().to_string()),
            Statement::Delete(d) => names.push(d.table.normalized().to_string()),
            Statement::CreateIndex(ci) => names.push(ci.table.normalized().to_string()),
            Statement::CreateView(cv) => query_tables(&cv.query, &mut names),
            Statement::Explain(inner) => {
                if let Statement::Query(q) = inner.as_ref() {
                    query_tables(q, &mut names);
                }
            }
            // DROP INDEX searches every table for the index; DROP TABLE of
            // an unloaded table works without residency.
            Statement::Drop(d) if matches!(d.kind, DropKind::Index) => {
                names.extend(self.catalog.unloaded_names());
            }
            _ => {}
        }
        // Views reference further tables; expand transitively.
        let mut visited = std::collections::HashSet::new();
        while let Some(name) = names.pop() {
            if !visited.insert(name.clone()) {
                continue;
            }
            if let Some(view) = self.catalog.view(&name) {
                let more: Vec<String> = view
                    .referenced_tables()
                    .iter()
                    .map(|i| i.normalized().to_string())
                    .collect();
                names.extend(more);
            } else if self.catalog.is_unloaded(&name) {
                self.load_table(&name)?;
            }
        }
        Ok(())
    }

    fn execute_statement_inner(&mut self, stmt: &Statement) -> Result<QueryResult, EngineError> {
        match stmt {
            Statement::Query(q) => {
                let plan = optimize(plan_query(q, &self.catalog)?);
                let rows = self.run_plan(&plan)?;
                Ok(QueryResult {
                    columns: plan.schema().names(),
                    rows,
                    rows_affected: 0,
                })
            }
            Statement::CreateTable(ct) => self.create_table(ct),
            Statement::CreateIndex(ci) => self.create_index(ci),
            Statement::CreateView(cv) => {
                if cv.materialized {
                    // Mirrors stock DuckDB: materialized views need the
                    // OpenIVM extension (ivm-core's IvmSession fallback).
                    return Err(EngineError::unsupported(
                        "CREATE MATERIALIZED VIEW requires the OpenIVM extension",
                    ));
                }
                // Validate the view body eagerly, as real engines do.
                plan_query(&cv.query, &self.catalog)?;
                self.ddl_generation += 1;
                self.catalog
                    .create_view(cv.name.normalized(), (*cv.query).clone())?;
                Ok(QueryResult::default())
            }
            Statement::Drop(d) => self.drop(d),
            Statement::Insert(ins) => self.insert(ins),
            Statement::Update(u) => self.update(u),
            Statement::Delete(d) => self.delete(d),
            // The analytical engine auto-commits; real transaction scoping
            // lives in the OLTP substrate (ivm-oltp).
            Statement::Begin | Statement::Commit | Statement::Rollback => {
                Ok(QueryResult::default())
            }
            Statement::Explain(inner) => {
                let Statement::Query(q) = inner.as_ref() else {
                    return Err(EngineError::unsupported("EXPLAIN supports queries only"));
                };
                let plan = optimize(plan_query(q, &self.catalog)?);
                // Show what will actually run: the lowered physical tree,
                // under this session's budget.
                let physical = lower_with_budget(&plan, &self.catalog, self.budget.limit())?;
                let rows = physical
                    .explain()
                    .lines()
                    .map(|l| vec![Value::Varchar(l.to_string())])
                    .collect();
                Ok(QueryResult {
                    columns: vec!["explain".to_string()],
                    rows,
                    rows_affected: 0,
                })
            }
        }
    }

    /// Execute one parsed statement, caching the optimized physical plan
    /// of queries and `INSERT … SELECT` sources under `cache_key`. The
    /// cache is invalidated by any SQL DDL; catalog-shape changes made
    /// through [`catalog_mut`](Database::catalog_mut) require an explicit
    /// [`invalidate_plans`](Database::invalidate_plans). Repeated
    /// executions of the same maintenance script skip planning,
    /// optimization, and physical lowering entirely. Non-plan-bearing
    /// statements behave exactly like
    /// [`execute_statement`](Database::execute_statement).
    pub fn execute_statement_cached(
        &mut self,
        cache_key: &str,
        stmt: &Statement,
    ) -> Result<QueryResult, EngineError> {
        self.degraded_gate(stmt)?;
        self.ensure_resident_for(stmt)?;
        let result = match stmt {
            Statement::Query(q) => {
                let (physical, columns) = self.cached_physical(cache_key, q)?;
                self.run_physical(&physical).map(|rows| QueryResult {
                    columns,
                    rows,
                    rows_affected: 0,
                })
            }
            Statement::Insert(ins) if matches!(ins.source, InsertSource::Query(_)) => {
                self.insert_impl(ins, Some(cache_key))
            }
            _ => self.execute_statement_inner(stmt),
        };
        let commit = self.commit_statement();
        match result {
            Err(e) => Err(e),
            Ok(r) => commit.map(|()| r),
        }
    }

    fn create_table(&mut self, ct: &CreateTable) -> Result<QueryResult, EngineError> {
        self.ddl_generation += 1;
        let name = ct.name.normalized().to_string();
        if self.catalog.has_table(&name) {
            if ct.if_not_exists {
                return Ok(QueryResult::default());
            }
            return Err(EngineError::catalog(format!("{name} already exists")));
        }
        let columns: Vec<Column> = ct
            .columns
            .iter()
            .map(|c| Column {
                name: c.name.normalized().to_string(),
                ty: DataType::from(c.ty),
                not_null: c.not_null,
            })
            .collect();
        let schema = Schema::new(columns);
        let mut pk = Vec::with_capacity(ct.primary_key.len());
        for k in &ct.primary_key {
            let pos = schema.position(k.normalized()).ok_or_else(|| {
                EngineError::bind(format!("unknown PRIMARY KEY column {}", k.normalized()))
            })?;
            pk.push(pos);
        }
        self.catalog.create_table(Table::new(name, schema, pk))?;
        Ok(QueryResult::default())
    }

    fn create_index(&mut self, ci: &CreateIndex) -> Result<QueryResult, EngineError> {
        self.ddl_generation += 1;
        let tname = ci.table.normalized();
        let table = self.catalog.table_mut(tname)?;
        let mut cols = Vec::with_capacity(ci.columns.len());
        for c in &ci.columns {
            let pos = table.schema.position(c.normalized()).ok_or_else(|| {
                EngineError::bind(format!("unknown column {} in index", c.normalized()))
            })?;
            cols.push(pos);
        }
        // A UNIQUE index on a keyless table becomes its primary-key ART —
        // the paper's "ART is generated after having populated V" path.
        if ci.unique && !table.has_pk_index() {
            table.add_pk_index(cols)?;
        } else {
            table.create_secondary_index(ci.name.normalized().to_string(), cols, ci.unique)?;
        }
        Ok(QueryResult::default())
    }

    fn drop(&mut self, d: &Drop) -> Result<QueryResult, EngineError> {
        self.ddl_generation += 1;
        let name = d.name.normalized();
        match d.kind {
            DropKind::Table => {
                self.catalog.drop_table(name, d.if_exists)?;
            }
            DropKind::View => {
                self.catalog.drop_view(name, d.if_exists)?;
            }
            DropKind::Index => {
                // Indexes are table-scoped; search all tables.
                let mut dropped = false;
                for tname in self.catalog.table_names() {
                    let t = self.catalog.table_mut(&tname)?;
                    if t.drop_secondary_index(name) {
                        dropped = true;
                        break;
                    }
                }
                if !dropped && !d.if_exists {
                    return Err(EngineError::catalog(format!("index {name} does not exist")));
                }
            }
        }
        Ok(QueryResult::default())
    }

    fn insert(&mut self, ins: &Insert) -> Result<QueryResult, EngineError> {
        self.insert_impl(ins, None)
    }

    fn insert_impl(
        &mut self,
        ins: &Insert,
        cache_key: Option<&str>,
    ) -> Result<QueryResult, EngineError> {
        let tname = ins.table.normalized().to_string();
        let (schema, column_map) = {
            let table = self.catalog.table(&tname)?;
            let schema = table.schema.clone();
            let map: Vec<usize> = if ins.columns.is_empty() {
                (0..schema.len()).collect()
            } else {
                let mut m = Vec::with_capacity(ins.columns.len());
                for c in &ins.columns {
                    let pos = schema.position(c.normalized()).ok_or_else(|| {
                        EngineError::bind(format!("unknown column {} in INSERT", c.normalized()))
                    })?;
                    m.push(pos);
                }
                m
            };
            (schema, map)
        };

        // Materialize source rows (before mutating the target table).
        let source_rows: Vec<Row> = match &ins.source {
            InsertSource::Values(rows) => {
                let scope = Scope::empty();
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    if row.len() != column_map.len() {
                        return Err(EngineError::bind(format!(
                            "INSERT expects {} values per row, got {}",
                            column_map.len(),
                            row.len()
                        )));
                    }
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        let bound = bind_expr_with(e, &scope, Some(&self.catalog))?;
                        let prepared =
                            prepare_expr_with_batch_size(&bound, &self.catalog, self.batch_size)?;
                        vals.push(prepared.eval(&[])?);
                    }
                    out.push(vals);
                }
                out
            }
            InsertSource::Query(q) => {
                let (physical, columns) = match cache_key {
                    Some(key) => self.cached_physical(key, q)?,
                    None => {
                        let plan = optimize(plan_query(q, &self.catalog)?);
                        let columns = plan.schema().names();
                        (
                            Arc::new(lower_with_budget(
                                &plan,
                                &self.catalog,
                                self.budget.limit(),
                            )?),
                            columns,
                        )
                    }
                };
                if columns.len() != column_map.len() {
                    return Err(EngineError::bind(format!(
                        "INSERT expects {} columns, query returns {}",
                        column_map.len(),
                        columns.len()
                    )));
                }
                self.run_physical(&physical)?
            }
        };

        // Widen each source row to full table width and coerce types.
        let mut full_rows = Vec::with_capacity(source_rows.len());
        for src in source_rows {
            let mut row = vec![Value::Null; schema.len()];
            for (i, v) in src.into_iter().enumerate() {
                let target = column_map[i];
                row[target] = coerce(v, schema.columns[target].ty)?;
            }
            full_rows.push(row);
        }

        // Pre-bind ON CONFLICT assignments.
        let conflict = ins.on_conflict.as_ref();
        let do_update: Option<Vec<(usize, crate::expr::BoundExpr)>> = match conflict {
            Some(oc) => match &oc.action {
                ConflictAction::DoNothing => None,
                ConflictAction::DoUpdate(assignments) => {
                    Some(self.bind_conflict_assignments(&tname, &schema, assignments)?)
                }
            },
            None => None,
        };

        let mut affected = 0usize;
        for row in full_rows {
            let table = self.catalog.table(&tname)?;
            let dup = match table.pk_index() {
                Some(pk) => {
                    let key = pk.key_of(&row);
                    pk.get_encoded(&key)
                }
                None => None,
            };
            match dup {
                None => {
                    self.catalog.table_mut(&tname)?.insert(row)?;
                    affected += 1;
                }
                Some(existing) => {
                    if ins.or_replace {
                        self.catalog.table_mut(&tname)?.upsert(row)?;
                        affected += 1;
                    } else if let Some(oc) = conflict {
                        match &oc.action {
                            ConflictAction::DoNothing => {}
                            ConflictAction::DoUpdate(_) => {
                                let assignments = do_update.as_ref().expect("bound with DoUpdate");
                                let old = self.catalog.table(&tname)?.row(existing);
                                // Scope row: existing row ++ excluded row.
                                let mut env = old.clone();
                                env.extend(row.iter().cloned());
                                let mut updated = old;
                                for (pos, expr) in assignments {
                                    let prepared = prepare_expr_with_batch_size(
                                        expr,
                                        &self.catalog,
                                        self.batch_size,
                                    )?;
                                    updated[*pos] =
                                        coerce(prepared.eval(&env)?, schema.columns[*pos].ty)?;
                                }
                                self.catalog.table_mut(&tname)?.update(existing, updated)?;
                                affected += 1;
                            }
                        }
                    } else {
                        return Err(EngineError::constraint(format!(
                            "duplicate key in table {tname}"
                        )));
                    }
                }
            }
        }
        Ok(QueryResult::dml(affected))
    }

    fn bind_conflict_assignments(
        &self,
        tname: &str,
        schema: &Schema,
        assignments: &[Assignment],
    ) -> Result<Vec<(usize, crate::expr::BoundExpr)>, EngineError> {
        // Visible names: the table's columns, then `excluded.*`.
        let mut scope_cols: Vec<BindColumn> = schema
            .columns
            .iter()
            .map(|c| BindColumn {
                qualifier: Some(tname.to_string()),
                name: c.name.clone(),
                ty: Some(c.ty),
            })
            .collect();
        scope_cols.extend(schema.columns.iter().map(|c| BindColumn {
            qualifier: Some("excluded".to_string()),
            name: c.name.clone(),
            ty: Some(c.ty),
        }));
        let scope = Scope {
            columns: scope_cols,
        };
        let mut out = Vec::with_capacity(assignments.len());
        for a in assignments {
            let pos = schema.position(a.column.normalized()).ok_or_else(|| {
                EngineError::bind(format!(
                    "unknown column {} in DO UPDATE",
                    a.column.normalized()
                ))
            })?;
            let bound = bind_expr_with(&a.value, &scope, Some(&self.catalog))?;
            out.push((pos, bound));
        }
        Ok(out)
    }

    fn update(&mut self, u: &Update) -> Result<QueryResult, EngineError> {
        let tname = u.table.normalized().to_string();
        let (schema, scope) = self.table_scope(&tname)?;
        let predicate = match &u.selection {
            Some(e) => {
                let b = bind_expr_with(e, &scope, Some(&self.catalog))?;
                Some(prepare_expr_with_batch_size(
                    &b,
                    &self.catalog,
                    self.batch_size,
                )?)
            }
            None => None,
        };
        let mut bound_assignments = Vec::with_capacity(u.assignments.len());
        for a in &u.assignments {
            let pos = schema.position(a.column.normalized()).ok_or_else(|| {
                EngineError::bind(format!(
                    "unknown column {} in UPDATE",
                    a.column.normalized()
                ))
            })?;
            let b = bind_expr_with(&a.value, &scope, Some(&self.catalog))?;
            bound_assignments.push((
                pos,
                prepare_expr_with_batch_size(&b, &self.catalog, self.batch_size)?,
            ));
        }
        // Phase 1: compute new rows against a stable snapshot. Victims are
        // found by a chunked vectorized scan; only they are materialized.
        let mut changes: Vec<(u64, Row)> = Vec::new();
        {
            let table = self.catalog.table(&tname)?;
            let victims = match &predicate {
                Some(p) => {
                    let kernel = crate::expr::VectorKernel::compile(p);
                    self.victim_row_ids(table, &kernel)?
                }
                None => table.live_row_ids(),
            };
            for row_id in victims {
                let row = table.row(row_id);
                let mut updated = row.clone();
                for (pos, expr) in &bound_assignments {
                    updated[*pos] = coerce(expr.eval(&row)?, schema.columns[*pos].ty)?;
                }
                changes.push((row_id, updated));
            }
        }
        // Phase 2: apply.
        let affected = changes.len();
        let table = self.catalog.table_mut(&tname)?;
        for (row_id, updated) in changes {
            table.update(row_id, updated)?;
        }
        Ok(QueryResult::dml(affected))
    }

    fn delete(&mut self, d: &Delete) -> Result<QueryResult, EngineError> {
        let tname = d.table.normalized().to_string();
        let (_, scope) = self.table_scope(&tname)?;
        let predicate = match &d.selection {
            Some(e) => {
                let b = bind_expr_with(e, &scope, Some(&self.catalog))?;
                Some(prepare_expr_with_batch_size(
                    &b,
                    &self.catalog,
                    self.batch_size,
                )?)
            }
            None => None,
        };
        let Some(predicate) = predicate else {
            // Unconditional DELETE clears the table wholesale — the shape
            // every propagation script ends with (`DELETE FROM Δ…`).
            let table = self.catalog.table_mut(&tname)?;
            let affected = table.live_rows();
            table.truncate();
            return Ok(QueryResult::dml(affected));
        };
        let victims: Vec<u64> = {
            let table = self.catalog.table(&tname)?;
            let kernel = crate::expr::VectorKernel::compile(&predicate);
            self.victim_row_ids(table, &kernel)?
        };
        let affected = victims.len();
        let table = self.catalog.table_mut(&tname)?;
        for row_id in victims {
            table.delete(row_id)?;
        }
        Ok(QueryResult::dml(affected))
    }

    /// UPDATE/DELETE victim ids for a compiled predicate: the chunked
    /// vectorized scan, fanned out over storage-slot morsels when the
    /// session has worker threads and the table spans more than one
    /// morsel — id order (and thus apply order) matches the serial scan.
    fn victim_row_ids(
        &self,
        table: &Table,
        kernel: &crate::expr::VectorKernel,
    ) -> Result<Vec<u64>, EngineError> {
        if self.parallelism > 1 && table.total_slots() > self.morsel_size {
            parallel_filter_row_ids(
                table,
                kernel,
                self.parallelism,
                self.morsel_size,
                self.batch_size,
            )
        } else {
            table.filter_row_ids(self.batch_size, kernel)
        }
    }

    fn table_scope(&self, tname: &str) -> Result<(Schema, Scope), EngineError> {
        let table = self.catalog.table(tname)?;
        let schema = table.schema.clone();
        let scope = Scope {
            columns: schema
                .columns
                .iter()
                .map(|c| BindColumn {
                    qualifier: Some(tname.to_string()),
                    name: c.name.clone(),
                    ty: Some(c.ty),
                })
                .collect(),
        };
        Ok((schema, scope))
    }
}

/// Coerce a runtime value into a column type: exact/widening passes through,
/// everything else goes through SQL cast rules.
fn coerce(v: Value, target: DataType) -> Result<Value, EngineError> {
    match v.data_type() {
        None => Ok(Value::Null),
        Some(t) if target.accepts(t) => {
            if t == DataType::Integer && target == DataType::Double {
                v.cast(DataType::Double)
            } else {
                Ok(v)
            }
        }
        Some(_) => v.cast(target),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_sql::parse_statement;

    fn seeded() -> Database {
        let mut db = Database::new();
        db.set_parallelism(1);
        db.execute("CREATE TABLE s (g VARCHAR, v INTEGER)").unwrap();
        db.execute("INSERT INTO s VALUES ('a', 1), ('b', 2), ('a', 3)")
            .unwrap();
        db.execute("CREATE TABLE sink (g VARCHAR, t INTEGER)")
            .unwrap();
        db
    }

    #[test]
    fn plan_cache_hits_on_repeated_statements() {
        let mut db = seeded();
        let sql = "SELECT g, SUM(v) AS t FROM s GROUP BY g";
        let stmt = parse_statement(sql).unwrap();
        let first = db.execute_statement_cached(sql, &stmt).unwrap();
        assert_eq!(db.plan_cache_stats(), (1, 0), "first run plans");
        let second = db.execute_statement_cached(sql, &stmt).unwrap();
        assert_eq!(db.plan_cache_stats(), (1, 1), "second run hits");
        assert_eq!(first.rows, second.rows);
        assert_eq!(first.columns, second.columns);

        // INSERT … SELECT caches its source plan under the same key space.
        let ins = "INSERT INTO sink SELECT g, SUM(v) FROM s GROUP BY g";
        let ins_stmt = parse_statement(ins).unwrap();
        db.execute_statement_cached(ins, &ins_stmt).unwrap();
        db.execute_statement_cached(ins, &ins_stmt).unwrap();
        assert_eq!(db.plan_cache_stats(), (2, 2));
        assert_eq!(
            db.query("SELECT COUNT(*) FROM sink").unwrap().scalar(),
            Some(&Value::Integer(4))
        );
    }

    #[test]
    fn plan_cache_invalidated_by_ddl() {
        let mut db = seeded();
        let sql = "SELECT g, SUM(v) AS t FROM s GROUP BY g";
        let stmt = parse_statement(sql).unwrap();
        db.execute_statement_cached(sql, &stmt).unwrap();
        db.execute_statement_cached(sql, &stmt).unwrap();
        assert_eq!(db.plan_cache_stats().1, 1);
        // DDL bumps the generation: the next run re-plans (no new hit).
        db.execute("CREATE TABLE other (x INTEGER)").unwrap();
        db.execute_statement_cached(sql, &stmt).unwrap();
        assert_eq!(db.plan_cache_stats().1, 1, "stale entry re-planned");
        db.execute_statement_cached(sql, &stmt).unwrap();
        assert_eq!(db.plan_cache_stats().1, 2, "fresh entry hits again");
        // Explicit invalidation clears everything.
        db.invalidate_plans();
        assert_eq!(db.plan_cache_stats().0, 0);
    }

    #[test]
    fn plan_cache_keys_on_budget_and_parallelism() {
        let mut db = seeded();
        db.set_memory_budget(None);
        let sql = "SELECT g, SUM(v) AS t FROM s GROUP BY g ORDER BY g";
        let stmt = parse_statement(sql).unwrap();
        let baseline = db.execute_statement_cached(sql, &stmt).unwrap();
        assert_eq!(db.plan_cache_stats(), (1, 0));

        // Flipping the budget between two executions of the same SQL
        // must re-lower: `lower_with_budget` bakes a budget-dependent
        // build-side choice into the physical plan, so a plan lowered
        // under another budget is a different identity — reusing it was
        // the staleness bug.
        db.set_memory_budget(Some(123_456_789));
        let budgeted = db.execute_statement_cached(sql, &stmt).unwrap();
        assert_eq!(db.plan_cache_stats(), (2, 0), "budget flip re-lowers");
        assert_eq!(budgeted.rows, baseline.rows, "same data, same answer");

        // Keyed, not invalidated: each budget's plan survives the flips
        // and re-hits when its setting returns.
        db.set_memory_budget(None);
        db.execute_statement_cached(sql, &stmt).unwrap();
        assert_eq!(db.plan_cache_stats(), (2, 1), "unbounded plan re-hits");
        db.set_memory_budget(Some(123_456_789));
        db.execute_statement_cached(sql, &stmt).unwrap();
        assert_eq!(db.plan_cache_stats(), (2, 2), "budgeted plan re-hits");

        // Parallelism is part of plan identity too.
        db.set_parallelism(2);
        let parallel = db.execute_statement_cached(sql, &stmt).unwrap();
        assert_eq!(db.plan_cache_stats(), (3, 2), "parallelism flip re-lowers");
        assert_eq!(parallel.rows, baseline.rows);
        db.set_parallelism(1);
        db.execute_statement_cached(sql, &stmt).unwrap();
        assert_eq!(db.plan_cache_stats(), (3, 3));
    }

    #[test]
    fn cached_plans_see_new_data() {
        let mut db = seeded();
        let sql = "SELECT SUM(v) FROM s";
        let stmt = parse_statement(sql).unwrap();
        assert_eq!(
            db.execute_statement_cached(sql, &stmt).unwrap().scalar(),
            Some(&Value::Integer(6))
        );
        db.execute("INSERT INTO s VALUES ('c', 10)").unwrap();
        assert_eq!(
            db.execute_statement_cached(sql, &stmt).unwrap().scalar(),
            Some(&Value::Integer(16)),
            "plan cache must never cache data"
        );
    }

    #[test]
    fn parallelism_knob_clamps_and_reports() {
        let mut db = Database::new();
        db.set_parallelism(0);
        assert_eq!(db.parallelism(), 1);
        db.set_parallelism(4);
        assert_eq!(db.parallelism(), 4);
        db.set_morsel_size(0);
        assert_eq!(db.morsel_size(), 1);
    }

    #[test]
    fn memory_budget_knob_and_stats() {
        let mut db = Database::new();
        db.set_memory_budget(None);
        assert_eq!(db.memory_budget(), None);
        db.set_memory_budget(Some(4096));
        assert_eq!(db.memory_budget(), Some(4096));
        db.execute("CREATE TABLE big (k INTEGER, v VARCHAR)")
            .unwrap();
        let values: Vec<String> = (0..600).map(|i| format!("({}, 'v{i}')", i % 7)).collect();
        db.execute(&format!("INSERT INTO big VALUES {}", values.join(", ")))
            .unwrap();
        db.set_memory_budget(Some(256));
        let out = db
            .query("SELECT k, COUNT(*) FROM big GROUP BY k")
            .unwrap()
            .rows;
        assert_eq!(out.len(), 7);
        assert!(db.spill_stats().spilled(), "{:?}", db.spill_stats());
        // Back to unbounded: same answer, counters keep their history.
        db.set_memory_budget(None);
        let again = db
            .query("SELECT k, COUNT(*) FROM big GROUP BY k")
            .unwrap()
            .rows;
        assert_eq!(out, again);
    }

    #[test]
    fn parallelism_env_values_parse_loudly() {
        assert_eq!(parse_parallelism_setting("1").unwrap(), 1);
        assert_eq!(parse_parallelism_setting(" 8 ").unwrap(), 8);
        for bad in ["", "0", "-2", "four", "2.5", "1worker"] {
            let err = parse_parallelism_setting(bad).unwrap_err();
            assert!(err.to_string().contains(PARALLELISM_ENV), "{bad:?} → {err}");
        }
    }

    #[test]
    fn memory_budget_env_values_parse_loudly() {
        assert_eq!(parse_memory_budget_setting("4096").unwrap(), Some(4096));
        assert_eq!(parse_memory_budget_setting("64KB").unwrap(), Some(65536));
        assert_eq!(parse_memory_budget_setting("64k").unwrap(), Some(65536));
        assert_eq!(parse_memory_budget_setting(" 2MB ").unwrap(), Some(2 << 20));
        assert_eq!(parse_memory_budget_setting("1G").unwrap(), Some(1 << 30));
        assert_eq!(parse_memory_budget_setting("1").unwrap(), Some(1));
        assert_eq!(parse_memory_budget_setting("0").unwrap(), None);
        assert_eq!(parse_memory_budget_setting("unbounded").unwrap(), None);
        assert_eq!(parse_memory_budget_setting("UNBOUNDED").unwrap(), None);
        for bad in [
            "",
            "KB",
            "lots",
            "-64KB",
            "64 K B",
            "1.5MB",
            "999999999999999999999",
        ] {
            let err = parse_memory_budget_setting(bad).unwrap_err();
            assert!(
                err.to_string().contains(MEMORY_BUDGET_ENV),
                "{bad:?} → {err}"
            );
        }
    }
}
