//! The embedded database session: `Database::execute(sql)`.

use ivm_sql::ast::{
    Assignment, ConflictAction, CreateIndex, CreateTable, Delete, Drop, DropKind, Insert,
    InsertSource, Statement, Update,
};
use ivm_sql::{parse_statement, parse_statements};

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::exec::{execute_with_batch_size, prepare_expr_with_batch_size, Row, DEFAULT_BATCH_SIZE};
use crate::expr::bind::{bind_expr_with, Scope};
use crate::expr::BindColumn;
use crate::optimizer::optimize;
use crate::planner::plan_query;
use crate::schema::{Column, Schema};
use crate::storage::Table;
use crate::types::DataType;
use crate::value::Value;

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Output column names (empty for DML/DDL).
    pub columns: Vec<String>,
    /// Result rows (empty for DML/DDL).
    pub rows: Vec<Row>,
    /// Rows inserted/updated/deleted by DML.
    pub rows_affected: usize,
}

impl QueryResult {
    fn dml(rows_affected: usize) -> QueryResult {
        QueryResult {
            rows_affected,
            ..Default::default()
        }
    }

    /// First value of the first row, if any (convenience for scalar queries).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// An embedded single-threaded database instance — the role DuckDB plays
/// inside OpenIVM ("linking it as a library" per Figure 1).
///
/// Queries run through the batched physical-operator pipeline: logical
/// plans are lowered to [`crate::planner::PhysicalPlan`]s and executed
/// batch-at-a-time (see [`crate::exec`]).
#[derive(Debug)]
pub struct Database {
    catalog: Catalog,
    batch_size: usize,
}

impl Default for Database {
    fn default() -> Database {
        Database {
            catalog: Catalog::new(),
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// An empty database with an explicit executor batch size (rows per
    /// [`crate::exec::RowBatch`]; clamped to ≥ 1).
    pub fn with_batch_size(batch_size: usize) -> Database {
        Database {
            catalog: Catalog::new(),
            batch_size: batch_size.max(1),
        }
    }

    /// The executor batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Change the executor batch size (rows per batch; clamped to ≥ 1).
    pub fn set_batch_size(&mut self, batch_size: usize) {
        self.batch_size = batch_size.max(1);
    }

    /// Run a plan through the batched pipeline with this session's batch
    /// size.
    fn run_plan(&self, plan: &crate::planner::LogicalPlan) -> Result<Vec<Row>, EngineError> {
        execute_with_batch_size(plan, &self.catalog, self.batch_size)
    }

    /// Borrow the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutably borrow the catalog (bulk loads, index rebuilds).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Execute a single SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, EngineError> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute a `;`-separated script, returning one result per statement.
    /// Execution stops at the first error.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<QueryResult>, EngineError> {
        let stmts = parse_statements(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(self.execute_statement(stmt)?);
        }
        Ok(out)
    }

    /// Execute a read-only query and return its rows.
    pub fn query(&self, sql: &str) -> Result<QueryResult, EngineError> {
        let stmt = parse_statement(sql)?;
        match &stmt {
            Statement::Query(q) => {
                let plan = optimize(plan_query(q, &self.catalog)?);
                let rows = self.run_plan(&plan)?;
                Ok(QueryResult {
                    columns: plan.schema().names(),
                    rows,
                    rows_affected: 0,
                })
            }
            _ => Err(EngineError::unsupported(
                "query() accepts SELECT statements only",
            )),
        }
    }

    /// Execute one parsed statement.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<QueryResult, EngineError> {
        match stmt {
            Statement::Query(q) => {
                let plan = optimize(plan_query(q, &self.catalog)?);
                let rows = self.run_plan(&plan)?;
                Ok(QueryResult {
                    columns: plan.schema().names(),
                    rows,
                    rows_affected: 0,
                })
            }
            Statement::CreateTable(ct) => self.create_table(ct),
            Statement::CreateIndex(ci) => self.create_index(ci),
            Statement::CreateView(cv) => {
                if cv.materialized {
                    // Mirrors stock DuckDB: materialized views need the
                    // OpenIVM extension (ivm-core's IvmSession fallback).
                    return Err(EngineError::unsupported(
                        "CREATE MATERIALIZED VIEW requires the OpenIVM extension",
                    ));
                }
                // Validate the view body eagerly, as real engines do.
                plan_query(&cv.query, &self.catalog)?;
                self.catalog
                    .create_view(cv.name.normalized(), (*cv.query).clone())?;
                Ok(QueryResult::default())
            }
            Statement::Drop(d) => self.drop(d),
            Statement::Insert(ins) => self.insert(ins),
            Statement::Update(u) => self.update(u),
            Statement::Delete(d) => self.delete(d),
            // The analytical engine auto-commits; real transaction scoping
            // lives in the OLTP substrate (ivm-oltp).
            Statement::Begin | Statement::Commit | Statement::Rollback => {
                Ok(QueryResult::default())
            }
            Statement::Explain(inner) => {
                let Statement::Query(q) = inner.as_ref() else {
                    return Err(EngineError::unsupported("EXPLAIN supports queries only"));
                };
                let plan = optimize(plan_query(q, &self.catalog)?);
                // Show what will actually run: the lowered physical tree.
                let physical = crate::planner::physical::lower(&plan, &self.catalog)?;
                let rows = physical
                    .explain()
                    .lines()
                    .map(|l| vec![Value::Varchar(l.to_string())])
                    .collect();
                Ok(QueryResult {
                    columns: vec!["explain".to_string()],
                    rows,
                    rows_affected: 0,
                })
            }
        }
    }

    fn create_table(&mut self, ct: &CreateTable) -> Result<QueryResult, EngineError> {
        let name = ct.name.normalized().to_string();
        if self.catalog.has_table(&name) {
            if ct.if_not_exists {
                return Ok(QueryResult::default());
            }
            return Err(EngineError::catalog(format!("{name} already exists")));
        }
        let columns: Vec<Column> = ct
            .columns
            .iter()
            .map(|c| Column {
                name: c.name.normalized().to_string(),
                ty: DataType::from(c.ty),
                not_null: c.not_null,
            })
            .collect();
        let schema = Schema::new(columns);
        let mut pk = Vec::with_capacity(ct.primary_key.len());
        for k in &ct.primary_key {
            let pos = schema.position(k.normalized()).ok_or_else(|| {
                EngineError::bind(format!("unknown PRIMARY KEY column {}", k.normalized()))
            })?;
            pk.push(pos);
        }
        self.catalog.create_table(Table::new(name, schema, pk))?;
        Ok(QueryResult::default())
    }

    fn create_index(&mut self, ci: &CreateIndex) -> Result<QueryResult, EngineError> {
        let tname = ci.table.normalized();
        let table = self.catalog.table_mut(tname)?;
        let mut cols = Vec::with_capacity(ci.columns.len());
        for c in &ci.columns {
            let pos = table.schema.position(c.normalized()).ok_or_else(|| {
                EngineError::bind(format!("unknown column {} in index", c.normalized()))
            })?;
            cols.push(pos);
        }
        // A UNIQUE index on a keyless table becomes its primary-key ART —
        // the paper's "ART is generated after having populated V" path.
        if ci.unique && !table.has_pk_index() {
            table.add_pk_index(cols)?;
        } else {
            table.create_secondary_index(ci.name.normalized().to_string(), cols, ci.unique)?;
        }
        Ok(QueryResult::default())
    }

    fn drop(&mut self, d: &Drop) -> Result<QueryResult, EngineError> {
        let name = d.name.normalized();
        match d.kind {
            DropKind::Table => {
                self.catalog.drop_table(name, d.if_exists)?;
            }
            DropKind::View => {
                self.catalog.drop_view(name, d.if_exists)?;
            }
            DropKind::Index => {
                // Indexes are table-scoped; search all tables.
                let mut dropped = false;
                for tname in self.catalog.table_names() {
                    let t = self.catalog.table_mut(&tname)?;
                    if t.drop_secondary_index(name) {
                        dropped = true;
                        break;
                    }
                }
                if !dropped && !d.if_exists {
                    return Err(EngineError::catalog(format!("index {name} does not exist")));
                }
            }
        }
        Ok(QueryResult::default())
    }

    fn insert(&mut self, ins: &Insert) -> Result<QueryResult, EngineError> {
        let tname = ins.table.normalized().to_string();
        let (schema, column_map) = {
            let table = self.catalog.table(&tname)?;
            let schema = table.schema.clone();
            let map: Vec<usize> = if ins.columns.is_empty() {
                (0..schema.len()).collect()
            } else {
                let mut m = Vec::with_capacity(ins.columns.len());
                for c in &ins.columns {
                    let pos = schema.position(c.normalized()).ok_or_else(|| {
                        EngineError::bind(format!("unknown column {} in INSERT", c.normalized()))
                    })?;
                    m.push(pos);
                }
                m
            };
            (schema, map)
        };

        // Materialize source rows (before mutating the target table).
        let source_rows: Vec<Row> = match &ins.source {
            InsertSource::Values(rows) => {
                let scope = Scope::empty();
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    if row.len() != column_map.len() {
                        return Err(EngineError::bind(format!(
                            "INSERT expects {} values per row, got {}",
                            column_map.len(),
                            row.len()
                        )));
                    }
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        let bound = bind_expr_with(e, &scope, Some(&self.catalog))?;
                        let prepared =
                            prepare_expr_with_batch_size(&bound, &self.catalog, self.batch_size)?;
                        vals.push(prepared.eval(&[])?);
                    }
                    out.push(vals);
                }
                out
            }
            InsertSource::Query(q) => {
                let plan = optimize(plan_query(q, &self.catalog)?);
                if plan.schema().len() != column_map.len() {
                    return Err(EngineError::bind(format!(
                        "INSERT expects {} columns, query returns {}",
                        column_map.len(),
                        plan.schema().len()
                    )));
                }
                self.run_plan(&plan)?
            }
        };

        // Widen each source row to full table width and coerce types.
        let mut full_rows = Vec::with_capacity(source_rows.len());
        for src in source_rows {
            let mut row = vec![Value::Null; schema.len()];
            for (i, v) in src.into_iter().enumerate() {
                let target = column_map[i];
                row[target] = coerce(v, schema.columns[target].ty)?;
            }
            full_rows.push(row);
        }

        // Pre-bind ON CONFLICT assignments.
        let conflict = ins.on_conflict.as_ref();
        let do_update: Option<Vec<(usize, crate::expr::BoundExpr)>> = match conflict {
            Some(oc) => match &oc.action {
                ConflictAction::DoNothing => None,
                ConflictAction::DoUpdate(assignments) => {
                    Some(self.bind_conflict_assignments(&tname, &schema, assignments)?)
                }
            },
            None => None,
        };

        let mut affected = 0usize;
        for row in full_rows {
            let table = self.catalog.table(&tname)?;
            let dup = match table.pk_index() {
                Some(pk) => {
                    let key = pk.key_of(&row);
                    pk.get_encoded(&key)
                }
                None => None,
            };
            match dup {
                None => {
                    self.catalog.table_mut(&tname)?.insert(row)?;
                    affected += 1;
                }
                Some(existing) => {
                    if ins.or_replace {
                        self.catalog.table_mut(&tname)?.upsert(row)?;
                        affected += 1;
                    } else if let Some(oc) = conflict {
                        match &oc.action {
                            ConflictAction::DoNothing => {}
                            ConflictAction::DoUpdate(_) => {
                                let assignments = do_update.as_ref().expect("bound with DoUpdate");
                                let old = self.catalog.table(&tname)?.row(existing);
                                // Scope row: existing row ++ excluded row.
                                let mut env = old.clone();
                                env.extend(row.iter().cloned());
                                let mut updated = old;
                                for (pos, expr) in assignments {
                                    let prepared = prepare_expr_with_batch_size(
                                        expr,
                                        &self.catalog,
                                        self.batch_size,
                                    )?;
                                    updated[*pos] =
                                        coerce(prepared.eval(&env)?, schema.columns[*pos].ty)?;
                                }
                                self.catalog.table_mut(&tname)?.update(existing, updated)?;
                                affected += 1;
                            }
                        }
                    } else {
                        return Err(EngineError::constraint(format!(
                            "duplicate key in table {tname}"
                        )));
                    }
                }
            }
        }
        Ok(QueryResult::dml(affected))
    }

    fn bind_conflict_assignments(
        &self,
        tname: &str,
        schema: &Schema,
        assignments: &[Assignment],
    ) -> Result<Vec<(usize, crate::expr::BoundExpr)>, EngineError> {
        // Visible names: the table's columns, then `excluded.*`.
        let mut scope_cols: Vec<BindColumn> = schema
            .columns
            .iter()
            .map(|c| BindColumn {
                qualifier: Some(tname.to_string()),
                name: c.name.clone(),
                ty: Some(c.ty),
            })
            .collect();
        scope_cols.extend(schema.columns.iter().map(|c| BindColumn {
            qualifier: Some("excluded".to_string()),
            name: c.name.clone(),
            ty: Some(c.ty),
        }));
        let scope = Scope {
            columns: scope_cols,
        };
        let mut out = Vec::with_capacity(assignments.len());
        for a in assignments {
            let pos = schema.position(a.column.normalized()).ok_or_else(|| {
                EngineError::bind(format!(
                    "unknown column {} in DO UPDATE",
                    a.column.normalized()
                ))
            })?;
            let bound = bind_expr_with(&a.value, &scope, Some(&self.catalog))?;
            out.push((pos, bound));
        }
        Ok(out)
    }

    fn update(&mut self, u: &Update) -> Result<QueryResult, EngineError> {
        let tname = u.table.normalized().to_string();
        let (schema, scope) = self.table_scope(&tname)?;
        let predicate = match &u.selection {
            Some(e) => {
                let b = bind_expr_with(e, &scope, Some(&self.catalog))?;
                Some(prepare_expr_with_batch_size(
                    &b,
                    &self.catalog,
                    self.batch_size,
                )?)
            }
            None => None,
        };
        let mut bound_assignments = Vec::with_capacity(u.assignments.len());
        for a in &u.assignments {
            let pos = schema.position(a.column.normalized()).ok_or_else(|| {
                EngineError::bind(format!(
                    "unknown column {} in UPDATE",
                    a.column.normalized()
                ))
            })?;
            let b = bind_expr_with(&a.value, &scope, Some(&self.catalog))?;
            bound_assignments.push((
                pos,
                prepare_expr_with_batch_size(&b, &self.catalog, self.batch_size)?,
            ));
        }
        // Phase 1: compute new rows against a stable snapshot. Victims are
        // found by a chunked vectorized scan; only they are materialized.
        let mut changes: Vec<(u64, Row)> = Vec::new();
        {
            let table = self.catalog.table(&tname)?;
            let victims = match &predicate {
                Some(p) => {
                    let kernel = crate::expr::VectorKernel::compile(p);
                    table.filter_row_ids(self.batch_size, &kernel)?
                }
                None => table.live_row_ids(),
            };
            for row_id in victims {
                let row = table.row(row_id);
                let mut updated = row.clone();
                for (pos, expr) in &bound_assignments {
                    updated[*pos] = coerce(expr.eval(&row)?, schema.columns[*pos].ty)?;
                }
                changes.push((row_id, updated));
            }
        }
        // Phase 2: apply.
        let affected = changes.len();
        let table = self.catalog.table_mut(&tname)?;
        for (row_id, updated) in changes {
            table.update(row_id, updated)?;
        }
        Ok(QueryResult::dml(affected))
    }

    fn delete(&mut self, d: &Delete) -> Result<QueryResult, EngineError> {
        let tname = d.table.normalized().to_string();
        let (_, scope) = self.table_scope(&tname)?;
        let predicate = match &d.selection {
            Some(e) => {
                let b = bind_expr_with(e, &scope, Some(&self.catalog))?;
                Some(prepare_expr_with_batch_size(
                    &b,
                    &self.catalog,
                    self.batch_size,
                )?)
            }
            None => None,
        };
        let Some(predicate) = predicate else {
            // Unconditional DELETE clears the table wholesale — the shape
            // every propagation script ends with (`DELETE FROM Δ…`).
            let table = self.catalog.table_mut(&tname)?;
            let affected = table.live_rows();
            table.truncate();
            return Ok(QueryResult::dml(affected));
        };
        let victims: Vec<u64> = {
            let table = self.catalog.table(&tname)?;
            let kernel = crate::expr::VectorKernel::compile(&predicate);
            table.filter_row_ids(self.batch_size, &kernel)?
        };
        let affected = victims.len();
        let table = self.catalog.table_mut(&tname)?;
        for row_id in victims {
            table.delete(row_id)?;
        }
        Ok(QueryResult::dml(affected))
    }

    fn table_scope(&self, tname: &str) -> Result<(Schema, Scope), EngineError> {
        let table = self.catalog.table(tname)?;
        let schema = table.schema.clone();
        let scope = Scope {
            columns: schema
                .columns
                .iter()
                .map(|c| BindColumn {
                    qualifier: Some(tname.to_string()),
                    name: c.name.clone(),
                    ty: Some(c.ty),
                })
                .collect(),
        };
        Ok((schema, scope))
    }
}

/// Coerce a runtime value into a column type: exact/widening passes through,
/// everything else goes through SQL cast rules.
fn coerce(v: Value, target: DataType) -> Result<Value, EngineError> {
    match v.data_type() {
        None => Ok(Value::Null),
        Some(t) if target.accepts(t) => {
            if t == DataType::Integer && target == DataType::Double {
                v.cast(DataType::Double)
            } else {
                Ok(v)
            }
        }
        Some(_) => v.cast(target),
    }
}
