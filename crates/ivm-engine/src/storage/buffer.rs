//! The page file and pinning buffer pool.
//!
//! [`PageFile`] is the single on-disk page store (`pages.db`): a flat
//! array of [`PAGE_SIZE`](crate::storage::page::PAGE_SIZE) pages
//! addressed by id. [`BufferPool`] caches a bounded number of frames in
//! front of it with **clock** eviction: callers [`pin`](BufferPool::pin)
//! a page to get a guard, access bytes through closures (never holding
//! the pool lock across user code re-entry), and the pin count blocks
//! eviction until the guard drops. Dirty frames are sealed (checksummed)
//! exactly at the write-back boundary and verified on every read, so all
//! persistent table I/O — checkpoint writes, recovery reads, and
//! residency reloads — flows through a fixed memory window regardless of
//! table size.
//!
//! Page allocation is shadow-paging-aware: the durability layer feeds the
//! pool a *free list* of page ids referenced by no current checkpoint;
//! [`allocate`](BufferPool::allocate) pops from it before extending the
//! file, so a checkpoint in progress can never overwrite a page the
//! last durable catalog still points at.

use std::collections::HashMap;
use std::io::SeekFrom;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::error::EngineError;
use crate::storage::io::{self, FileHandle, OpenMode};
use crate::storage::page::{self, PAGE_SIZE};

fn io_err(op: &str, path: &Path, e: std::io::Error) -> EngineError {
    EngineError::execution(format!(
        "page file I/O error ({op}, {}): {e}",
        path.display()
    ))
}

/// The on-disk page store: a flat file of fixed-size pages.
#[derive(Debug)]
pub struct PageFile {
    file: FileHandle,
    path: PathBuf,
    num_pages: u64,
}

impl PageFile {
    /// Open (creating if missing) the page file at `path`. A trailing
    /// partial page is a torn tail from a crashed shadow write — the
    /// published checkpoint never references past-the-end pages, so it
    /// is truncated away rather than treated as corruption (which would
    /// wedge recovery on an otherwise intact checkpoint).
    pub fn open(path: impl Into<PathBuf>) -> Result<PageFile, EngineError> {
        let path = path.into();
        let mut file =
            io::open(&path, OpenMode::ReadWrite).map_err(|e| io_err("open", &path, e))?;
        let mut len = file.len().map_err(|e| io_err("stat", &path, e))?;
        if len % PAGE_SIZE as u64 != 0 {
            len -= len % PAGE_SIZE as u64;
            file.set_len(len)
                .map_err(|e| io_err("truncate", &path, e))?;
        }
        Ok(PageFile {
            file,
            path,
            num_pages: len / PAGE_SIZE as u64,
        })
    }

    /// Number of pages the file currently holds.
    pub fn num_pages(&self) -> u64 {
        self.num_pages
    }

    /// Reserve the next page id past the end of the file (the file grows
    /// when the page is first written).
    fn extend(&mut self) -> u64 {
        let id = self.num_pages;
        self.num_pages += 1;
        id
    }

    fn read_page(&mut self, id: u64, buf: &mut [u8]) -> Result<(), EngineError> {
        self.file
            .seek(SeekFrom::Start(id * PAGE_SIZE as u64))
            .and_then(|_| self.file.read_exact(buf))
            .map_err(|e| io_err("read", &self.path, e))
    }

    fn write_page(&mut self, id: u64, buf: &[u8]) -> Result<(), EngineError> {
        self.file
            .seek(SeekFrom::Start(id * PAGE_SIZE as u64))
            .and_then(|_| self.file.write_all(buf))
            .map_err(|e| io_err("write", &self.path, e))
    }

    fn sync(&mut self) -> Result<(), EngineError> {
        self.file
            .sync_data()
            .map_err(|e| io_err("fsync", &self.path, e))
    }
}

/// Cumulative buffer pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Pins satisfied from a cached frame.
    pub hits: u64,
    /// Pins that had to read the page from disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back (at eviction or flush).
    pub pages_written: u64,
}

#[derive(Debug)]
struct Frame {
    page_id: u64,
    data: Box<[u8]>,
    pins: u32,
    dirty: bool,
    referenced: bool,
}

#[derive(Debug)]
struct PoolInner {
    file: PageFile,
    frames: Vec<Frame>,
    map: HashMap<u64, usize>,
    hand: usize,
    capacity: usize,
    free: Vec<u64>,
    stats: BufferPoolStats,
}

impl PoolInner {
    /// Find a frame slot for a new page: an unused slot while below
    /// capacity, else a clock victim (unpinned, reference bit clear).
    fn victim_slot(&mut self) -> Result<usize, EngineError> {
        if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page_id: u64::MAX,
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
                pins: 0,
                dirty: false,
                referenced: false,
            });
            return Ok(self.frames.len() - 1);
        }
        // Two full sweeps: the first clears reference bits, the second
        // must find a victim unless every frame is pinned.
        for _ in 0..self.frames.len() * 2 {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let f = &mut self.frames[i];
            if f.pins > 0 {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            if f.dirty {
                page::seal(&mut f.data);
                let (id, data) = (f.page_id, std::mem::take(&mut f.data));
                let res = self.file.write_page(id, &data);
                let f = &mut self.frames[i];
                f.data = data;
                res?;
                f.dirty = false;
                self.stats.pages_written += 1;
            }
            let f = &mut self.frames[i];
            self.map.remove(&f.page_id);
            self.stats.evictions += 1;
            return Ok(i);
        }
        Err(EngineError::execution(format!(
            "buffer pool exhausted: all {} frames are pinned",
            self.frames.len()
        )))
    }
}

/// A bounded, pinning page cache over one [`PageFile`].
#[derive(Debug, Clone)]
pub struct BufferPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl BufferPool {
    /// A pool of at most `capacity` (clamped ≥ 2) resident frames.
    pub fn new(file: PageFile, capacity: usize) -> BufferPool {
        BufferPool {
            inner: Arc::new(Mutex::new(PoolInner {
                file,
                frames: Vec::new(),
                map: HashMap::new(),
                hand: 0,
                capacity: capacity.max(2),
                free: Vec::new(),
                stats: BufferPoolStats::default(),
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pin an existing page, reading and checksum-verifying it on a miss.
    pub fn pin(&self, page_id: u64) -> Result<PinnedPage, EngineError> {
        let mut inner = self.lock();
        if let Some(&slot) = inner.map.get(&page_id) {
            let f = &mut inner.frames[slot];
            f.pins += 1;
            f.referenced = true;
            inner.stats.hits += 1;
            return Ok(PinnedPage {
                pool: Arc::clone(&self.inner),
                slot,
                page_id,
            });
        }
        if page_id >= inner.file.num_pages() {
            return Err(EngineError::execution(format!(
                "page {page_id} is beyond the end of the page file"
            )));
        }
        let slot = inner.victim_slot()?;
        let mut data = std::mem::take(&mut inner.frames[slot].data);
        if let Err(e) = inner.file.read_page(page_id, &mut data) {
            inner.frames[slot].data = data;
            inner.frames[slot].page_id = u64::MAX;
            return Err(e);
        }
        if let Err(e) = page::verify(&data, page_id) {
            inner.frames[slot].data = data;
            inner.frames[slot].page_id = u64::MAX;
            return Err(e);
        }
        let f = &mut inner.frames[slot];
        f.data = data;
        f.page_id = page_id;
        f.pins = 1;
        f.dirty = false;
        f.referenced = true;
        inner.map.insert(page_id, slot);
        inner.stats.misses += 1;
        Ok(PinnedPage {
            pool: Arc::clone(&self.inner),
            slot,
            page_id,
        })
    }

    /// Allocate a fresh page (shadow-paging free list first, then file
    /// growth) and pin it zero-filled and dirty. The caller initializes
    /// it through [`PinnedPage::with_mut`].
    pub fn allocate(&self) -> Result<PinnedPage, EngineError> {
        let mut inner = self.lock();
        let page_id = match inner.free.pop() {
            Some(id) => id,
            None => inner.file.extend(),
        };
        // A freed page may still be cached from a dropped table: reuse
        // its frame rather than aliasing two frames to one id.
        let slot = match inner.map.get(&page_id) {
            Some(&slot) => slot,
            None => {
                let slot = inner.victim_slot()?;
                let f = &mut inner.frames[slot];
                f.page_id = page_id;
                inner.map.insert(page_id, slot);
                slot
            }
        };
        let f = &mut inner.frames[slot];
        f.data.fill(0);
        f.pins += 1;
        f.dirty = true;
        f.referenced = true;
        Ok(PinnedPage {
            pool: Arc::clone(&self.inner),
            slot,
            page_id,
        })
    }

    /// Replace the allocator's free list (computed by the durability
    /// layer as "pages referenced by no durable catalog"). Cached frames
    /// of newly freed pages are discarded so stale bytes can't resurface.
    pub fn set_free_list(&self, free: Vec<u64>) {
        let mut inner = self.lock();
        for id in &free {
            if let Some(slot) = inner.map.remove(id) {
                let f = &mut inner.frames[slot];
                debug_assert_eq!(f.pins, 0, "freed page {id} still pinned");
                f.page_id = u64::MAX;
                f.dirty = false;
                f.referenced = false;
            }
        }
        inner.free = free;
    }

    /// Seal and write back every dirty frame, then fsync the page file.
    pub fn flush_all(&self) -> Result<(), EngineError> {
        let mut inner = self.lock();
        for i in 0..inner.frames.len() {
            if !inner.frames[i].dirty {
                continue;
            }
            let f = &mut inner.frames[i];
            page::seal(&mut f.data);
            let (id, data) = (f.page_id, std::mem::take(&mut f.data));
            let res = inner.file.write_page(id, &data);
            let f = &mut inner.frames[i];
            f.data = data;
            res?;
            f.dirty = false;
            inner.stats.pages_written += 1;
        }
        inner.file.sync()
    }

    /// Number of pages in the backing file.
    pub fn num_pages(&self) -> u64 {
        self.lock().file.num_pages()
    }

    /// Cumulative pool counters.
    pub fn stats(&self) -> BufferPoolStats {
        self.lock().stats
    }
}

/// A pin guard: the page stays resident while this exists. Access the
/// bytes through [`with`](PinnedPage::with) / [`with_mut`](PinnedPage::with_mut).
#[derive(Debug)]
pub struct PinnedPage {
    pool: Arc<Mutex<PoolInner>>,
    slot: usize,
    page_id: u64,
}

impl PinnedPage {
    /// The pinned page's id.
    pub fn page_id(&self) -> u64 {
        self.page_id
    }

    /// Read access to the page bytes.
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let inner = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        f(&inner.frames[self.slot].data)
    }

    /// Write access to the page bytes; marks the frame dirty.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut inner = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        let frame = &mut inner.frames[self.slot];
        frame.dirty = true;
        f(&mut frame.data)
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        let mut inner = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        let f = &mut inner.frames[self.slot];
        debug_assert_eq!(f.page_id, self.page_id, "pin guard outlived its frame");
        f.pins = f.pins.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::page::{heap_push, heap_tuples, init_heap};

    fn temp_pool(name: &str, capacity: usize) -> (BufferPool, PathBuf) {
        let path = std::env::temp_dir().join(format!(
            "openivm-buffer-test-{}-{}.db",
            std::process::id(),
            name
        ));
        let _ = std::fs::remove_file(&path);
        let pool = BufferPool::new(PageFile::open(&path).unwrap(), capacity);
        (pool, path)
    }

    #[test]
    fn eviction_stays_bounded_and_data_survives() {
        let (pool, path) = temp_pool("bounded", 4);
        let n = 32u64;
        let mut ids = Vec::new();
        for i in 0..n {
            let pin = pool.allocate().unwrap();
            pin.with_mut(|p| {
                init_heap(p, i);
                assert!(heap_push(p, format!("tuple-{i}").as_bytes()));
            });
            ids.push(pin.page_id());
        }
        // Far more pages than frames: eviction must have happened and
        // every page must read back intact (checksum-verified).
        assert!(pool.stats().evictions > 0);
        for (i, &id) in ids.iter().enumerate() {
            let pin = pool.pin(id).unwrap();
            pin.with(|p| {
                let tuples = heap_tuples(p, id).unwrap();
                assert_eq!(tuples[0], format!("tuple-{i}").as_bytes());
            });
        }
        pool.flush_all().unwrap();
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn pins_block_eviction() {
        let (pool, path) = temp_pool("pins", 2);
        let a = pool.allocate().unwrap();
        a.with_mut(|p| init_heap(p, 0));
        let b = pool.allocate().unwrap();
        b.with_mut(|p| init_heap(p, 0));
        // Both frames pinned: a third allocation must fail cleanly.
        let err = pool.allocate().unwrap_err();
        assert!(err.to_string().contains("buffer pool exhausted"), "{err}");
        drop(b);
        // One unpinned frame: allocation works again.
        let c = pool.allocate().unwrap();
        c.with_mut(|p| init_heap(p, 0));
        drop((a, c));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn free_list_reuse_discards_stale_cache() {
        let (pool, path) = temp_pool("freelist", 4);
        let pin = pool.allocate().unwrap();
        let id = pin.page_id();
        pin.with_mut(|p| {
            init_heap(p, 1);
            heap_push(p, b"old-bytes");
        });
        drop(pin);
        pool.flush_all().unwrap();
        pool.set_free_list(vec![id]);
        // Reallocation hands the same id back, zeroed — not the old frame.
        let pin = pool.allocate().unwrap();
        assert_eq!(pin.page_id(), id);
        pin.with(|p| assert!(p.iter().all(|&b| b == 0)));
        drop(pin);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn reading_beyond_eof_and_torn_pages_error_cleanly() {
        let (pool, path) = temp_pool("torn", 4);
        let pin = pool.allocate().unwrap();
        let id = pin.page_id();
        pin.with_mut(|p| init_heap(p, 1));
        drop(pin);
        pool.flush_all().unwrap();
        assert!(pool.pin(99).is_err(), "page beyond EOF");
        // Corrupt one byte on disk; a fresh pool must reject the page.
        drop(pool);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[1000] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let pool = BufferPool::new(PageFile::open(&path).unwrap(), 4);
        let err = pool.pin(id).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn torn_trailing_partial_page_is_truncated_on_open() {
        let (pool, path) = temp_pool("tail", 4);
        let pin = pool.allocate().unwrap();
        let id = pin.page_id();
        pin.with_mut(|p| init_heap(p, 1));
        drop(pin);
        pool.flush_all().unwrap();
        drop(pool);
        // A crashed shadow write leaves a partial page past the end.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAB; PAGE_SIZE / 2]);
        std::fs::write(&path, &bytes).unwrap();
        let file = PageFile::open(&path).unwrap();
        assert_eq!(file.num_pages(), 1, "torn tail must be dropped");
        let pool = BufferPool::new(file, 4);
        pool.pin(id).unwrap();
        drop(pool);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            PAGE_SIZE as u64,
            "open must truncate the torn tail on disk"
        );
        let _ = std::fs::remove_file(path);
    }
}
