//! CRC-32 (IEEE 802.3 polynomial) used to seal pages, WAL records, and
//! catalog metadata against torn writes and bit rot.
//!
//! Implemented table-driven in-repo: the durability layer must not pull
//! in external crates, and a 256-entry table is plenty fast for the page
//! sizes involved (one lookup per byte).

/// The reflected CRC-32 polynomial (same one as zlib/ethernet).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (standard init/final XOR with `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental form: feed chunks through a running state initialized to
/// `0xFFFF_FFFF`, then XOR the result with `0xFFFF_FFFF` when done.
pub fn crc32_update(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"page bytes to be checksummed in chunks";
        let mut state = 0xFFFF_FFFF;
        for chunk in data.chunks(7) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 512];
        let clean = crc32(&data);
        for bit in [0usize, 100 * 8 + 3, 511 * 8 + 7] {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&data), clean, "flip at bit {bit} undetected");
            data[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(crc32(&data), clean);
    }
}
