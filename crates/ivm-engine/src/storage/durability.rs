//! Durable-catalog orchestration: shadow-paged checkpoints + WAL replay.
//!
//! A durable database directory holds three files:
//!
//! ```text
//! <dir>/pages.db       fixed-size slotted pages (tables at rest)
//! <dir>/catalog.meta   the last checkpoint: epoch, table metas, views
//! <dir>/wal.NNNN.log   redo segments since that checkpoint (rotated at
//!                      a size bound; a legacy single wal.log replays)
//! ```
//!
//! **Checkpoint** is shadow-paged: dirty tables (detected via the
//! process-wide [`Table::generation`] counter stamped at the previous
//! checkpoint) are written to *freshly allocated* pages — never over
//! pages the current `catalog.meta` references — then the pool is
//! flushed/fsynced, `catalog.meta.tmp` is written, fsynced, and
//! atomically renamed over `catalog.meta` with a bumped epoch, and
//! finally the WAL is reset under the new epoch. A crash at any point
//! leaves either the old meta + old WAL (epochs match → replay) or the
//! new meta + old WAL (old epoch < new epoch → WAL discarded; its
//! effects are inside the new checkpoint). Pages referenced by neither
//! become the allocator's free list.
//!
//! **Recovery** ([`Durability::open`]) loads every table from its pages
//! (checksum-verified through the buffer pool, so I/O-path memory stays
//! bounded), replays the committed WAL prefix, and immediately takes a
//! recovery checkpoint.
//!
//! Tables keep their physical slot layout across restarts: tuples carry
//! their slot id and table metas their total slot count, so row ids,
//! tombstone positions, and therefore scan order are bit-for-bit
//! identical after recovery — the property the crash harness asserts.

use std::collections::{HashMap, HashSet};
use std::io::{Cursor, Read};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ivm_sql::ast::Statement;
use ivm_sql::Dialect;

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::schema::{Column, Schema};
use crate::storage::buffer::{BufferPool, BufferPoolStats, PageFile, PinnedPage};
use crate::storage::checksum::crc32;
use crate::storage::frame;
use crate::storage::io::{self, OpenMode};
use crate::storage::page::{self, HEAP_TUPLE_CAP, NO_PAGE, OVERFLOW_CAP};
use crate::storage::table::Table;
use crate::storage::wal::{self, Wal, WalRecord, WalStats};

/// File name of the page store inside a data directory.
pub const PAGES_FILE: &str = "pages.db";
/// File name of the checkpointed catalog inside a data directory.
pub const META_FILE: &str = "catalog.meta";

/// Catalog meta magic (and format version).
pub const META_MAGIC: &[u8; 8] = b"OIVMMET1";

const META_TAG_TABLE: u8 = 1;
const META_TAG_VIEW: u8 = 2;
const META_TAG_END: u8 = 0xFF;

fn corrupt_meta(what: impl Into<String>) -> EngineError {
    EngineError::execution(format!("corrupt catalog meta: {}", what.into()))
}

fn io_err(op: &str, path: &Path, e: std::io::Error) -> EngineError {
    EngineError::execution(format!(
        "durability I/O error ({op}, {}): {e}",
        path.display()
    ))
}

/// Tuning knobs for a durable database.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityOptions {
    /// fsync the WAL at every commit point (`true` for `Database::open`;
    /// the ephemeral `OPENIVM_DATA_DIR` test mode turns it off for
    /// throughput — crash safety there is exercised by the harness's
    /// explicit directories, not the suite-wide leg).
    pub sync_on_commit: bool,
    /// Buffer pool capacity in frames (bounds checkpoint/recovery I/O
    /// memory at `pool_pages` × 8 KiB).
    pub pool_pages: usize,
    /// WAL segment size bound: after a commit leaves the active segment
    /// at or past this many bytes, the log rotates to a fresh segment.
    pub wal_segment_bytes: u64,
}

impl Default for DurabilityOptions {
    fn default() -> DurabilityOptions {
        DurabilityOptions {
            sync_on_commit: true,
            pool_pages: 1024, // 8 MiB of page cache
            wal_segment_bytes: wal::DEFAULT_SEGMENT_BYTES,
        }
    }
}

/// Everything needed to reload one table from pages and to decide at the
/// next checkpoint whether it must be rewritten.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Table name.
    pub name: String,
    /// Column layout.
    pub columns: Vec<Column>,
    /// Primary-key column positions.
    pub primary_key: Vec<usize>,
    /// Secondary index definitions `(name, columns, unique)`.
    pub secondary: Vec<(String, Vec<usize>, bool)>,
    /// Physical slot count including tombstones (restores row ids).
    pub total_slots: u64,
    /// Live row count (sanity-checked on load).
    pub live_rows: u64,
    /// Heap pages, in slot order.
    pub pages: Vec<u64>,
    /// Overflow pages owned by this table (for free-space accounting).
    pub overflow: Vec<u64>,
}

/// A table's state as of the last checkpoint.
#[derive(Debug, Clone)]
struct TableSnapshot {
    /// [`Table::generation`] at checkpoint time; a differing live value
    /// means the table is dirty and must be rewritten.
    generation: u64,
    meta: TableMeta,
}

/// Counters from the last [`Durability::open`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Committed WAL records replayed.
    pub replayed_records: u64,
    /// WAL bytes scanned.
    pub wal_bytes: u64,
    /// Tables loaded from pages.
    pub tables_loaded: u64,
}

/// The durable half of a [`crate::session::Database`]: page store, WAL,
/// and checkpointed catalog metadata for one data directory.
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    pool: BufferPool,
    wal: Arc<Wal>,
    epoch: u64,
    snapshots: HashMap<String, TableSnapshot>,
    recovery: RecoveryStats,
}

impl Durability {
    /// Open (or create) the durable state in `dir`: load the last
    /// checkpoint, replay the committed WAL prefix, and take a recovery
    /// checkpoint. Returns the orchestrator plus the recovered catalog
    /// (WAL hooks not yet attached — the caller attaches them once the
    /// catalog is installed in its session).
    pub fn open(
        dir: impl Into<PathBuf>,
        opts: DurabilityOptions,
    ) -> Result<(Durability, Catalog), EngineError> {
        let dir = dir.into();
        io::create_dir_all(&dir).map_err(|e| io_err("create dir", &dir, e))?;
        let meta_path = dir.join(META_FILE);
        let meta = match io::read(&meta_path) {
            Ok(bytes) => Some(decode_meta(&bytes)?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(io_err("read meta", &meta_path, e)),
        };
        let pool = BufferPool::new(PageFile::open(dir.join(PAGES_FILE))?, opts.pool_pages);
        let mut catalog = Catalog::new();
        let mut snapshots = HashMap::new();
        let mut epoch = 0u64;
        let mut recovery = RecoveryStats::default();
        if let Some((meta_epoch, table_metas, views)) = meta {
            epoch = meta_epoch;
            // The free list must exclude every page the durable meta
            // references, including tables about to be rewritten.
            let used: HashSet<u64> = table_metas
                .iter()
                .flat_map(|m| m.pages.iter().chain(&m.overflow).copied())
                .collect();
            pool.set_free_list(
                (0..pool.num_pages())
                    .filter(|id| !used.contains(id))
                    .collect(),
            );
            for tm in &table_metas {
                let table = load_table(&pool, tm)?;
                recovery.tables_loaded += 1;
                snapshots.insert(
                    tm.name.clone(),
                    TableSnapshot {
                        generation: table.generation(),
                        meta: tm.clone(),
                    },
                );
                catalog.create_table(table)?;
            }
            for (name, sql) in views {
                catalog.create_view(name, parse_view_sql(&sql)?)?;
            }
        }
        match Wal::replay(&dir)? {
            Some((wal_epoch, records, bytes)) if wal_epoch == epoch => {
                recovery.replayed_records = records.len() as u64;
                recovery.wal_bytes = bytes;
                let touched = apply_records(&mut catalog, &records)?;
                // Replayed-over tables are dirty: drop their snapshots so
                // the recovery checkpoint rewrites them.
                for name in touched {
                    snapshots.remove(&name);
                }
            }
            Some((wal_epoch, _, _)) if wal_epoch > epoch => {
                return Err(EngineError::execution(format!(
                    "corrupt durable state: WAL epoch {wal_epoch} is newer than catalog epoch {epoch}"
                )));
            }
            // Older epoch: a pre-checkpoint log whose effects are already
            // inside the checkpoint (crash between meta rename and WAL
            // reset). Missing/headerless: nothing to replay.
            _ => {}
        }
        let wal = Arc::new(Wal::open(
            &dir,
            opts.sync_on_commit,
            opts.wal_segment_bytes,
        )?);
        let mut d = Durability {
            dir,
            pool,
            wal,
            epoch,
            snapshots,
            recovery,
        };
        // Recovery checkpoint: makes the replayed state durable and
        // resets the WAL under a fresh epoch.
        d.checkpoint(&catalog)?;
        Ok((d, catalog))
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current checkpoint epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Counters from the last recovery.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Cumulative WAL counters.
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Cumulative buffer pool counters.
    pub fn pool_stats(&self) -> BufferPoolStats {
        self.pool.stats()
    }

    /// A shared handle to the WAL, for attaching to catalogs/tables.
    pub fn wal_handle(&self) -> Arc<Wal> {
        Arc::clone(&self.wal)
    }

    /// Commit the current WAL statement (group-commit durability point).
    pub fn wal_commit(&self) -> Result<(), EngineError> {
        self.wal.commit().map(|_| ())
    }

    /// Whether the WAL has poisoned itself after a commit-path write or
    /// fsync failure (the database must degrade to read-only).
    pub fn wal_poisoned(&self) -> bool {
        self.wal.poisoned()
    }

    /// Whether `generation` matches the table's last checkpoint (i.e. the
    /// durable pages are current and the table may be unloaded).
    pub fn is_clean(&self, name: &str, generation: u64) -> bool {
        self.snapshots
            .get(name)
            .is_some_and(|s| s.generation == generation)
    }

    /// Reload an unloaded table from its checkpointed pages.
    pub fn load_table(&mut self, name: &str) -> Result<Table, EngineError> {
        let snap = self.snapshots.get_mut(name).ok_or_else(|| {
            EngineError::execution(format!("table {name} has no checkpoint snapshot to load"))
        })?;
        let table = load_table(&self.pool, &snap.meta)?;
        // Identical content under a fresh generation stamp: update the
        // snapshot so the next checkpoint still sees the table as clean.
        snap.generation = table.generation();
        Ok(table)
    }

    /// Take a checkpoint of `catalog`: write dirty tables to fresh pages,
    /// fsync, atomically publish the new `catalog.meta`, and reset the
    /// WAL under the bumped epoch.
    pub fn checkpoint(&mut self, catalog: &Catalog) -> Result<(), EngineError> {
        // Flush any open statement so the WAL is a committed prefix even
        // if this checkpoint fails halfway through.
        self.wal.commit()?;
        let next_epoch = self.epoch + 1;
        let mut new_snaps: HashMap<String, TableSnapshot> = HashMap::new();
        for name in catalog.table_names() {
            let table = catalog.table(&name)?;
            match self.snapshots.get(&name) {
                Some(s) if s.generation == table.generation() => {
                    new_snaps.insert(name.clone(), s.clone());
                }
                _ => {
                    let meta = store_table(&self.pool, table, next_epoch)?;
                    new_snaps.insert(
                        name.clone(),
                        TableSnapshot {
                            generation: table.generation(),
                            meta,
                        },
                    );
                }
            }
        }
        // Unloaded tables are durable-only: carry their snapshots forward.
        for name in catalog.unloaded_names() {
            let s = self.snapshots.get(&name).ok_or_else(|| {
                EngineError::execution(format!("unloaded table {name} has no checkpoint snapshot"))
            })?;
            new_snaps.insert(name, s.clone());
        }
        self.pool.flush_all()?;
        let mut views: Vec<(String, String)> = Vec::new();
        for n in catalog.view_names() {
            let query = catalog.view(&n).ok_or_else(|| {
                EngineError::execution(format!("view {n} vanished during checkpoint"))
            })?;
            let sql = ivm_sql::print_query(query, Dialect::DuckDb);
            views.push((n, sql));
        }
        write_meta(&self.dir, next_epoch, &new_snaps, &views)?;
        self.wal.reset(next_epoch)?;
        self.epoch = next_epoch;
        self.snapshots = new_snaps;
        let used: HashSet<u64> = self
            .snapshots
            .values()
            .flat_map(|s| s.meta.pages.iter().chain(&s.meta.overflow).copied())
            .collect();
        self.pool.set_free_list(
            (0..self.pool.num_pages())
                .filter(|id| !used.contains(id))
                .collect(),
        );
        Ok(())
    }
}

fn parse_view_sql(sql: &str) -> Result<ivm_sql::ast::Query, EngineError> {
    match ivm_sql::parse_statement(sql) {
        Ok(Statement::Query(q)) => Ok(*q),
        Ok(_) => Err(corrupt_meta(format!("view SQL is not a query: {sql}"))),
        Err(e) => Err(corrupt_meta(format!("view SQL does not parse: {e}"))),
    }
}

/// Apply replayed records to the catalog (WAL hooks must be detached).
/// Returns the names of tables the replay touched.
fn apply_records(
    catalog: &mut Catalog,
    records: &[WalRecord],
) -> Result<HashSet<String>, EngineError> {
    let mut touched = HashSet::new();
    for rec in records {
        let res: Result<(), EngineError> = (|| {
            match rec {
                WalRecord::Commit => {}
                WalRecord::Insert { table, row } => {
                    catalog.table_mut(table)?.insert(row.clone())?;
                    touched.insert(table.clone());
                }
                WalRecord::Delete { table, row_id } => {
                    catalog.table_mut(table)?.delete(*row_id)?;
                    touched.insert(table.clone());
                }
                WalRecord::Update { table, row_id, row } => {
                    catalog.table_mut(table)?.update(*row_id, row.clone())?;
                    touched.insert(table.clone());
                }
                WalRecord::Truncate { table } => {
                    catalog.table_mut(table)?.truncate();
                    touched.insert(table.clone());
                }
                WalRecord::Compact { table } => {
                    catalog.table_mut(table)?.compact();
                    touched.insert(table.clone());
                }
                WalRecord::CreateTable {
                    name,
                    columns,
                    primary_key,
                } => {
                    catalog.create_table(Table::new(
                        name.clone(),
                        Schema::new(columns.clone()),
                        primary_key.clone(),
                    ))?;
                    touched.insert(name.clone());
                }
                WalRecord::DropTable { name } => {
                    catalog.drop_table(name, false)?;
                    touched.insert(name.clone());
                }
                WalRecord::CreateView { name, sql } => {
                    catalog.create_view(name.clone(), parse_view_sql(sql)?)?;
                }
                WalRecord::DropView { name } => {
                    catalog.drop_view(name, false)?;
                }
                WalRecord::CreateIndex {
                    table,
                    name,
                    columns,
                    unique,
                } => {
                    catalog.table_mut(table)?.create_secondary_index(
                        name.clone(),
                        columns.clone(),
                        *unique,
                    )?;
                    touched.insert(table.clone());
                }
                WalRecord::DropIndex { table, name } => {
                    catalog.table_mut(table)?.drop_secondary_index(name);
                    touched.insert(table.clone());
                }
                WalRecord::AddPk { table, columns } => {
                    catalog.table_mut(table)?.add_pk_index(columns.clone())?;
                    touched.insert(table.clone());
                }
            }
            Ok(())
        })();
        res.map_err(|e| {
            EngineError::execution(format!("WAL replay failed ({e}) applying {rec:?}"))
        })?;
    }
    Ok(touched)
}

// ---------------------------------------------------------------------
// Table <-> pages
// ---------------------------------------------------------------------

// Heap tuple layout: [0][slot:u64][encode_row…] inline, or
// [1][slot:u64][head_page:u64][payload_len:u64] with the row encoding
// chunked across an overflow chain.
const TUPLE_INLINE: u8 = 0;
const TUPLE_OVERFLOW: u8 = 1;

/// Write a table's live rows to freshly allocated pages (slot order).
fn store_table(pool: &BufferPool, table: &Table, lsn: u64) -> Result<TableMeta, EngineError> {
    let mut heap_pages = Vec::new();
    let mut overflow_pages = Vec::new();
    let mut current: Option<PinnedPage> = None;
    let mut tuple = Vec::new();
    for (slot, row) in table.scan() {
        tuple.clear();
        tuple.push(TUPLE_INLINE);
        tuple.extend_from_slice(&slot.to_le_bytes());
        frame::encode_row(&mut tuple, &row);
        let mut overflow_ref = Vec::new();
        let bytes: &[u8] = if tuple.len() <= HEAP_TUPLE_CAP {
            &tuple
        } else {
            // Chain the row encoding back to front so each chunk knows
            // its successor's page id before being written.
            let payload = &tuple[9..];
            let mut next = NO_PAGE;
            for chunk in payload.chunks(OVERFLOW_CAP).rev() {
                let pin = pool.allocate()?;
                pin.with_mut(|p| page::init_overflow(p, lsn, next, chunk));
                overflow_pages.push(pin.page_id());
                next = pin.page_id();
            }
            overflow_ref.push(TUPLE_OVERFLOW);
            overflow_ref.extend_from_slice(&slot.to_le_bytes());
            overflow_ref.extend_from_slice(&next.to_le_bytes());
            overflow_ref.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            &overflow_ref
        };
        let placed = current
            .as_ref()
            .is_some_and(|pin| pin.with_mut(|p| page::heap_push(p, bytes)));
        if !placed {
            let pin = pool.allocate()?;
            let pushed = pin.with_mut(|p| {
                page::init_heap(p, lsn);
                page::heap_push(p, bytes)
            });
            if !pushed {
                return Err(EngineError::execution(
                    "internal: tuple does not fit an empty heap page",
                ));
            }
            heap_pages.push(pin.page_id());
            current = Some(pin);
        }
    }
    Ok(TableMeta {
        name: table.name.clone(),
        columns: table.schema.columns.clone(),
        primary_key: table.primary_key.clone(),
        secondary: table.secondary_index_defs(),
        total_slots: table.total_slots() as u64,
        live_rows: table.live_rows() as u64,
        pages: heap_pages,
        overflow: overflow_pages,
    })
}

/// Rebuild a table from its checkpointed pages.
fn load_table(pool: &BufferPool, tm: &TableMeta) -> Result<Table, EngineError> {
    let mut rows: Vec<(u64, Vec<crate::value::Value>)> = Vec::with_capacity(tm.live_rows as usize);
    for &pid in &tm.pages {
        let pin = pool.pin(pid)?;
        // Copy tuples out: resolving overflow chains needs further pins,
        // and page access closures must not re-enter the pool.
        let tuples: Vec<Vec<u8>> = pin.with(|p| {
            page::heap_tuples(p, pid).map(|ts| ts.iter().map(|t| t.to_vec()).collect())
        })?;
        drop(pin);
        for t in tuples {
            if t.len() < 9 {
                return Err(corrupt_meta(format!("short tuple on page {pid}")));
            }
            let slot = u64::from_le_bytes(t[1..9].try_into().unwrap());
            let row = match t[0] {
                TUPLE_INLINE => {
                    let mut cur = Cursor::new(&t[9..]);
                    let row = frame::decode_row(&mut cur)?;
                    if cur.position() != (t.len() - 9) as u64 {
                        return Err(corrupt_meta(format!("trailing tuple bytes on page {pid}")));
                    }
                    row
                }
                TUPLE_OVERFLOW => {
                    if t.len() != 25 {
                        return Err(corrupt_meta(format!("bad overflow ref on page {pid}")));
                    }
                    let head = u64::from_le_bytes(t[9..17].try_into().unwrap());
                    let payload_len = u64::from_le_bytes(t[17..25].try_into().unwrap());
                    let bytes = read_overflow_chain(pool, head, payload_len)?;
                    let mut cur = Cursor::new(bytes.as_slice());
                    let row = frame::decode_row(&mut cur)?;
                    if cur.position() != bytes.len() as u64 {
                        return Err(corrupt_meta("trailing bytes after overflow row"));
                    }
                    row
                }
                other => return Err(corrupt_meta(format!("unknown tuple tag {other}"))),
            };
            rows.push((slot, row));
        }
    }
    if rows.len() as u64 != tm.live_rows {
        return Err(corrupt_meta(format!(
            "table {} expected {} live rows, pages hold {}",
            tm.name,
            tm.live_rows,
            rows.len()
        )));
    }
    Table::from_parts(
        tm.name.clone(),
        Schema::new(tm.columns.clone()),
        tm.primary_key.clone(),
        &tm.secondary,
        tm.total_slots,
        rows,
    )
}

fn read_overflow_chain(
    pool: &BufferPool,
    head: u64,
    payload_len: u64,
) -> Result<Vec<u8>, EngineError> {
    let mut bytes = Vec::new();
    let mut next = head;
    let max_hops = payload_len / OVERFLOW_CAP as u64 + 2;
    let mut hops = 0u64;
    while next != NO_PAGE {
        hops += 1;
        if hops > max_hops {
            return Err(corrupt_meta(
                "overflow chain longer than its payload (cycle?)",
            ));
        }
        let pin = pool.pin(next)?;
        let (nxt, chunk) =
            pin.with(|p| page::overflow_chunk(p, next).map(|(n, c)| (n, c.to_vec())))?;
        bytes.extend_from_slice(&chunk);
        next = nxt;
    }
    if bytes.len() as u64 != payload_len {
        return Err(corrupt_meta(format!(
            "overflow chain holds {} bytes, expected {payload_len}",
            bytes.len()
        )));
    }
    Ok(bytes)
}

// ---------------------------------------------------------------------
// catalog.meta encode/decode
// ---------------------------------------------------------------------

type DecodedMeta = (u64, Vec<TableMeta>, Vec<(String, String)>);

fn frame_record(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

fn put_page_list(buf: &mut Vec<u8>, pages: &[u64]) {
    buf.extend_from_slice(&(pages.len() as u64).to_le_bytes());
    for &p in pages {
        buf.extend_from_slice(&p.to_le_bytes());
    }
}

fn get_page_list(r: &mut Cursor<&[u8]>) -> Result<Vec<u64>, EngineError> {
    let n = wal::get_u64(r)?;
    let remaining = r.get_ref().len() as u64 - r.position();
    if n * 8 > remaining {
        return Err(corrupt_meta(format!(
            "page list of {n} entries overruns the record"
        )));
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        out.push(wal::get_u64(r)?);
    }
    Ok(out)
}

fn write_meta(
    dir: &Path,
    epoch: u64,
    snapshots: &HashMap<String, TableSnapshot>,
    views: &[(String, String)],
) -> Result<(), EngineError> {
    let mut out = Vec::new();
    out.extend_from_slice(META_MAGIC);
    out.extend_from_slice(&epoch.to_le_bytes());
    let mut names: Vec<&String> = snapshots.keys().collect();
    names.sort();
    let mut payload = Vec::new();
    for name in names {
        let tm = &snapshots[name].meta;
        payload.clear();
        payload.push(META_TAG_TABLE);
        wal::put_str(&mut payload, &tm.name);
        wal::put_columns(&mut payload, &tm.columns);
        wal::put_positions(&mut payload, &tm.primary_key);
        payload.extend_from_slice(&(tm.secondary.len() as u32).to_le_bytes());
        for (iname, cols, unique) in &tm.secondary {
            wal::put_str(&mut payload, iname);
            wal::put_positions(&mut payload, cols);
            payload.push(u8::from(*unique));
        }
        wal::put_u64(&mut payload, tm.total_slots);
        wal::put_u64(&mut payload, tm.live_rows);
        put_page_list(&mut payload, &tm.pages);
        put_page_list(&mut payload, &tm.overflow);
        frame_record(&mut out, &payload);
    }
    for (name, sql) in views {
        payload.clear();
        payload.push(META_TAG_VIEW);
        wal::put_str(&mut payload, name);
        wal::put_str(&mut payload, sql);
        frame_record(&mut out, &payload);
    }
    frame_record(&mut out, &[META_TAG_END]);

    let tmp = dir.join(format!("{META_FILE}.tmp"));
    let final_path = dir.join(META_FILE);
    {
        let mut f = io::open(&tmp, OpenMode::Create).map_err(|e| io_err("create", &tmp, e))?;
        f.write_all(&out).map_err(|e| io_err("write", &tmp, e))?;
        f.sync_data().map_err(|e| io_err("fsync", &tmp, e))?;
    }
    io::rename(&tmp, &final_path).map_err(|e| io_err("rename", &final_path, e))?;
    // fsync the directory so the rename itself is durable across power
    // loss — checked, not best-effort: a checkpoint that cannot prove
    // its publish durable must fail. Failing here is safe either way:
    // whichever meta survives a crash, the epoch protocol discards or
    // replays the WAL to match.
    io::sync_dir(dir).map_err(|e| io_err("fsync dir", dir, e))?;
    Ok(())
}

fn decode_meta(bytes: &[u8]) -> Result<DecodedMeta, EngineError> {
    if bytes.len() < 16 || &bytes[..8] != META_MAGIC {
        return Err(corrupt_meta("bad magic or truncated header"));
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let mut tables = Vec::new();
    let mut views = Vec::new();
    let mut off = 16usize;
    loop {
        if bytes.len() - off < 8 {
            return Err(corrupt_meta("missing end marker"));
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        let payload = bytes
            .get(off + 8..off + 8 + len)
            .ok_or_else(|| corrupt_meta("record overruns the file"))?;
        if crc32(payload) != crc {
            return Err(corrupt_meta("record checksum mismatch"));
        }
        off += 8 + len;
        let mut r = Cursor::new(payload);
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)
            .map_err(|_| corrupt_meta("empty record"))?;
        match tag[0] {
            META_TAG_TABLE => {
                let name = wal::get_str(&mut r)?;
                let columns = wal::get_columns(&mut r)?;
                let primary_key = wal::get_positions(&mut r)?;
                let mut b = [0u8; 4];
                r.read_exact(&mut b)
                    .map_err(|_| corrupt_meta("truncated index count"))?;
                let nsec = u32::from_le_bytes(b);
                if nsec > frame::MAX_FRAME_COLS {
                    return Err(corrupt_meta(format!("index count {nsec} exceeds cap")));
                }
                let mut secondary = Vec::with_capacity(nsec as usize);
                for _ in 0..nsec {
                    let iname = wal::get_str(&mut r)?;
                    let cols = wal::get_positions(&mut r)?;
                    let mut u = [0u8; 1];
                    r.read_exact(&mut u)
                        .map_err(|_| corrupt_meta("truncated unique flag"))?;
                    secondary.push((iname, cols, u[0] != 0));
                }
                let total_slots = wal::get_u64(&mut r)?;
                let live_rows = wal::get_u64(&mut r)?;
                let pages = get_page_list(&mut r)?;
                let overflow = get_page_list(&mut r)?;
                if r.position() != payload.len() as u64 {
                    return Err(corrupt_meta("trailing bytes in table record"));
                }
                tables.push(TableMeta {
                    name,
                    columns,
                    primary_key,
                    secondary,
                    total_slots,
                    live_rows,
                    pages,
                    overflow,
                });
            }
            META_TAG_VIEW => {
                let name = wal::get_str(&mut r)?;
                let sql = wal::get_str(&mut r)?;
                if r.position() != payload.len() as u64 {
                    return Err(corrupt_meta("trailing bytes in view record"));
                }
                views.push((name, sql));
            }
            META_TAG_END => {
                if off != bytes.len() {
                    return Err(corrupt_meta("trailing bytes after end marker"));
                }
                return Ok((epoch, tables, views));
            }
            other => return Err(corrupt_meta(format!("unknown record tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;
    use crate::value::Value;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "openivm-durability-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn seed_catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::not_null("k", DataType::Varchar),
                Column::new("v", DataType::Integer),
            ]),
            vec![0],
        );
        for (k, v) in [("a", 1i64), ("b", 2), ("c", 3)] {
            t.insert(vec![Value::from(k), Value::Integer(v)]).unwrap();
        }
        t.delete(1).unwrap(); // leave a tombstone: slot layout must survive
        c.create_table(t).unwrap();
        c
    }

    #[test]
    fn checkpoint_reopen_roundtrip_preserves_slots() {
        let dir = temp_dir("roundtrip");
        {
            let (mut d, _) = Durability::open(&dir, DurabilityOptions::default()).unwrap();
            let catalog = seed_catalog();
            d.checkpoint(&catalog).unwrap();
        }
        let (d, catalog) = Durability::open(&dir, DurabilityOptions::default()).unwrap();
        let t = catalog.table("t").unwrap();
        assert_eq!(t.total_slots(), 3, "tombstone slot preserved");
        assert_eq!(t.live_rows(), 2);
        let rows: Vec<_> = t.scan().collect();
        assert_eq!(rows[0], (0, vec![Value::from("a"), Value::Integer(1)]));
        assert_eq!(rows[1], (2, vec![Value::from("c"), Value::Integer(3)]));
        assert_eq!(
            t.lookup_pk(&[Value::from("c")]),
            Some(2),
            "PK index rebuilt"
        );
        assert_eq!(d.recovery_stats().tables_loaded, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn clean_tables_are_not_rewritten() {
        let dir = temp_dir("clean");
        let (mut d, _) = Durability::open(&dir, DurabilityOptions::default()).unwrap();
        let catalog = seed_catalog();
        d.checkpoint(&catalog).unwrap();
        let written = d.pool_stats().pages_written;
        d.checkpoint(&catalog).unwrap();
        assert_eq!(
            d.pool_stats().pages_written,
            written,
            "clean checkpoint writes no pages"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn shadow_paging_reuses_space_without_unbounded_growth() {
        let dir = temp_dir("shadow");
        let (mut d, mut catalog) = Durability::open(&dir, DurabilityOptions::default()).unwrap();
        let mut t = Table::new(
            "big",
            Schema::new(vec![Column::new("x", DataType::Integer)]),
            vec![],
        );
        for i in 0..5000i64 {
            t.insert(vec![Value::Integer(i)]).unwrap();
        }
        catalog.create_table(t).unwrap();
        d.checkpoint(&catalog).unwrap();
        let after_first = d.pool.num_pages();
        for _ in 0..5 {
            catalog
                .table_mut("big")
                .unwrap()
                .insert(vec![Value::Integer(0)])
                .unwrap();
            d.checkpoint(&catalog).unwrap();
        }
        // Each checkpoint rewrites ~the same page count; shadow paging
        // needs at most old+new live at once, so the file stays below
        // 3× the single-checkpoint footprint instead of growing 6×.
        assert!(
            d.pool.num_pages() < after_first * 3,
            "pages grew unbounded: {} vs {after_first}",
            d.pool.num_pages()
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn oversized_tuples_take_the_overflow_path() {
        let dir = temp_dir("overflow");
        let big = "x".repeat(3 * page::PAGE_SIZE); // spans several pages
        {
            let (mut d, mut catalog) =
                Durability::open(&dir, DurabilityOptions::default()).unwrap();
            let mut t = Table::new(
                "o",
                Schema::new(vec![Column::new("s", DataType::Varchar)]),
                vec![],
            );
            t.insert(vec![Value::from("small")]).unwrap();
            t.insert(vec![Value::Varchar(big.clone())]).unwrap();
            t.insert(vec![Value::from("tail")]).unwrap();
            catalog.create_table(t).unwrap();
            d.checkpoint(&catalog).unwrap();
        }
        let (_, catalog) = Durability::open(&dir, DurabilityOptions::default()).unwrap();
        let t = catalog.table("o").unwrap();
        let rows: Vec<_> = t.scan().map(|(_, r)| r).collect();
        assert_eq!(rows[0], vec![Value::from("small")]);
        assert_eq!(rows[1], vec![Value::Varchar(big)]);
        assert_eq!(rows[2], vec![Value::from("tail")]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn meta_corruption_is_a_clean_error() {
        let dir = temp_dir("badmeta");
        {
            let (mut d, _) = Durability::open(&dir, DurabilityOptions::default()).unwrap();
            d.checkpoint(&seed_catalog()).unwrap();
        }
        let meta_path = dir.join(META_FILE);
        let mut bytes = std::fs::read(&meta_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&meta_path, &bytes).unwrap();
        let err = Durability::open(&dir, DurabilityOptions::default()).unwrap_err();
        assert!(err.to_string().contains("corrupt catalog meta"), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }
}
