//! Compact columnar frame codec for spill files.
//!
//! A spill file is a magic header followed by a sequence of *frames*.
//! Each frame holds a bounded batch of rows in column-major order:
//!
//! ```text
//! file  := MAGIC frame*
//! frame := rows:u32 cols:u32 column{cols}
//! column:= value{rows}
//! value := tag:u8 payload
//! ```
//!
//! Payloads are fixed-width little-endian scalars except VARCHAR, which
//! is length-prefixed UTF-8. The format is column-major inside a frame so
//! runs of the same tag compress into predictable byte patterns and the
//! decoder's match is taken per column run, not per value of a row.
//!
//! The decoder never trusts the file: row/column counts and string
//! lengths are bounds-checked and every truncation or tag mismatch comes
//! back as a clean [`EngineError`], never a panic or an allocation bomb —
//! spill files live in a temp directory where anything can happen to
//! them.

use std::io::{Read, Write};

use crate::error::EngineError;
use crate::value::Value;

/// File magic identifying a spill file (and its format version).
pub const SPILL_MAGIC: &[u8; 8] = b"OIVMSPL1";

/// Hard cap on rows per frame; the writer flushes well below it, the
/// reader rejects anything above it as corruption.
pub const MAX_FRAME_ROWS: u32 = 1 << 20;

/// Hard cap on columns per frame (sanity bound against corrupt headers).
pub const MAX_FRAME_COLS: u32 = 1 << 16;

/// Hard cap on one VARCHAR payload (sanity bound against corrupt
/// lengths).
const MAX_TEXT_BYTES: u32 = 1 << 30;

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_DOUBLE: u8 = 3;
const TAG_TEXT: u8 = 4;
const TAG_DATE: u8 = 5;

fn corrupt(what: impl Into<String>) -> EngineError {
    EngineError::execution(format!("corrupt spill frame: {}", what.into()))
}

fn io_err(op: &str, e: std::io::Error) -> EngineError {
    EngineError::execution(format!("spill I/O error ({op}): {e}"))
}

/// Write the file header. Every spill file starts with this.
pub fn write_header(w: &mut impl Write) -> Result<(), EngineError> {
    w.write_all(SPILL_MAGIC).map_err(|e| io_err("header", e))
}

/// Read and verify the file header.
pub fn read_header(r: &mut impl Read) -> Result<(), EngineError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|e| io_err("header read", e))?;
    if &magic != SPILL_MAGIC {
        return Err(corrupt("bad magic (not a spill file)"));
    }
    Ok(())
}

/// Encode one batch of rows (all of equal width) as a frame. Zero-row
/// frames are legal (empty partitions still get a well-formed file).
pub fn write_frame(w: &mut impl Write, rows: &[Vec<Value>]) -> Result<u64, EngineError> {
    let nrows = rows.len() as u32;
    debug_assert!(nrows <= MAX_FRAME_ROWS, "writer exceeded frame cap");
    let ncols = rows.first().map_or(0, Vec::len) as u32;
    let mut buf: Vec<u8> = Vec::with_capacity(8 + rows.len() * ncols as usize * 9);
    buf.extend_from_slice(&nrows.to_le_bytes());
    buf.extend_from_slice(&ncols.to_le_bytes());
    for c in 0..ncols as usize {
        for row in rows {
            debug_assert_eq!(row.len(), ncols as usize, "ragged frame row");
            encode_value(&mut buf, &row[c]);
        }
    }
    w.write_all(&buf).map_err(|e| io_err("frame write", e))?;
    Ok(buf.len() as u64)
}

/// Encode one row as a width-prefixed run of tagged values — the same
/// value encoding spill frames use, row-major. This is the tuple payload
/// format of slotted heap pages ([`crate::storage::page`]) and the row
/// payload of WAL records ([`crate::storage::wal`]), so the durability
/// layer inherits the frame codec's bounds checking wholesale.
pub fn encode_row(buf: &mut Vec<u8>, row: &[Value]) {
    buf.extend_from_slice(&(row.len() as u32).to_le_bytes());
    for v in row {
        encode_value(buf, v);
    }
}

/// Decode one row written by [`encode_row`]. Width and string lengths are
/// bounds-checked exactly like frame decoding: corruption comes back as a
/// clean [`EngineError`], never a panic or an allocation bomb.
pub fn decode_row(r: &mut impl Read) -> Result<Vec<Value>, EngineError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)
        .map_err(|_| corrupt("truncated row width"))?;
    let ncols = u32::from_le_bytes(b);
    if ncols > MAX_FRAME_COLS {
        return Err(corrupt(format!("row width {ncols} exceeds column cap")));
    }
    let mut row = Vec::with_capacity(ncols as usize);
    for _ in 0..ncols {
        row.push(decode_value(r)?);
    }
    Ok(row)
}

fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(TAG_NULL),
        Value::Boolean(b) => {
            buf.push(TAG_BOOL);
            buf.push(u8::from(*b));
        }
        Value::Integer(i) => {
            buf.push(TAG_INT);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Double(d) => {
            buf.push(TAG_DOUBLE);
            buf.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Varchar(s) => {
            buf.push(TAG_TEXT);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            buf.push(TAG_DATE);
            buf.extend_from_slice(&d.to_le_bytes());
        }
    }
}

/// Decode the next frame, or `None` at a clean end of file. A file that
/// ends mid-frame is reported as corruption, not EOF.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<Vec<Value>>>, EngineError> {
    let mut head = [0u8; 8];
    match r.read_exact(&mut head[..1]) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(io_err("frame header", e)),
    }
    r.read_exact(&mut head[1..])
        .map_err(|_| corrupt("truncated frame header"))?;
    let nrows = u32::from_le_bytes(head[0..4].try_into().unwrap());
    let ncols = u32::from_le_bytes(head[4..8].try_into().unwrap());
    if nrows > MAX_FRAME_ROWS {
        return Err(corrupt(format!("row count {nrows} exceeds frame cap")));
    }
    if ncols > MAX_FRAME_COLS {
        return Err(corrupt(format!("column count {ncols} exceeds frame cap")));
    }
    let (nrows, ncols) = (nrows as usize, ncols as usize);
    let mut rows: Vec<Vec<Value>> = (0..nrows).map(|_| Vec::with_capacity(ncols)).collect();
    for _ in 0..ncols {
        for row in rows.iter_mut() {
            row.push(decode_value(r)?);
        }
    }
    Ok(Some(rows))
}

fn decode_value(r: &mut impl Read) -> Result<Value, EngineError> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)
        .map_err(|_| corrupt("truncated value tag"))?;
    Ok(match tag[0] {
        TAG_NULL => Value::Null,
        TAG_BOOL => {
            let mut b = [0u8; 1];
            r.read_exact(&mut b)
                .map_err(|_| corrupt("truncated boolean"))?;
            match b[0] {
                0 => Value::Boolean(false),
                1 => Value::Boolean(true),
                other => return Err(corrupt(format!("boolean byte {other}"))),
            }
        }
        TAG_INT => {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)
                .map_err(|_| corrupt("truncated integer"))?;
            Value::Integer(i64::from_le_bytes(b))
        }
        TAG_DOUBLE => {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)
                .map_err(|_| corrupt("truncated double"))?;
            Value::Double(f64::from_bits(u64::from_le_bytes(b)))
        }
        TAG_TEXT => {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)
                .map_err(|_| corrupt("truncated text length"))?;
            let len = u32::from_le_bytes(b);
            if len > MAX_TEXT_BYTES {
                return Err(corrupt(format!("text length {len} exceeds cap")));
            }
            let mut bytes = vec![0u8; len as usize];
            r.read_exact(&mut bytes)
                .map_err(|_| corrupt("truncated text payload"))?;
            Value::Varchar(
                String::from_utf8(bytes).map_err(|_| corrupt("text payload is not UTF-8"))?,
            )
        }
        TAG_DATE => {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)
                .map_err(|_| corrupt("truncated date"))?;
            Value::Date(i32::from_le_bytes(b))
        }
        other => return Err(corrupt(format!("unknown value tag {other}"))),
    })
}

/// Approximate heap footprint of one row, used for memory-budget
/// accounting (enum size per value plus string heap bytes, plus the row
/// vector's own header).
pub fn row_bytes(row: &[Value]) -> usize {
    let mut n = std::mem::size_of::<Vec<Value>>() + std::mem::size_of_val(row);
    for v in row {
        if let Value::Varchar(s) = v {
            n += s.len();
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        let mut buf = Vec::new();
        write_header(&mut buf).unwrap();
        write_frame(&mut buf, &rows).unwrap();
        let mut cur = Cursor::new(buf);
        read_header(&mut cur).unwrap();
        let out = read_frame(&mut cur).unwrap().unwrap();
        assert!(read_frame(&mut cur).unwrap().is_none(), "clean EOF");
        out
    }

    #[test]
    fn every_variant_round_trips() {
        let rows = vec![
            vec![
                Value::Null,
                Value::Boolean(true),
                Value::Boolean(false),
                Value::Integer(i64::MIN),
                Value::Integer(i64::MAX),
                Value::Double(-0.0),
                Value::Double(f64::NAN),
                Value::Varchar(String::new()),
                Value::Varchar("héllo ✓ world".into()),
                Value::Date(i32::MIN),
            ],
            vec![
                Value::Integer(0),
                Value::Null,
                Value::Null,
                Value::Double(1.5e300),
                Value::Varchar("x".repeat(100_000)),
                Value::Date(0),
                Value::Boolean(true),
                Value::Null,
                Value::Varchar("b".into()),
                Value::Date(i32::MAX),
            ],
        ];
        let out = roundtrip(rows.clone());
        assert_eq!(out.len(), 2);
        // NaN breaks PartialEq; compare bitwise via grouping order.
        for (a, b) in rows.iter().flatten().zip(out.iter().flatten()) {
            assert!(a.total_cmp(b).is_eq(), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn empty_frames_and_batch_boundary_sizes() {
        for n in [0usize, 1, 1023, 1024, 1025] {
            let rows: Vec<Vec<Value>> = (0..n)
                .map(|i| vec![Value::Integer(i as i64), Value::Varchar(format!("r{i}"))])
                .collect();
            assert_eq!(roundtrip(rows.clone()), rows, "size {n}");
        }
    }

    #[test]
    fn multiple_frames_stream_in_order() {
        let mut buf = Vec::new();
        write_header(&mut buf).unwrap();
        for chunk in 0..3i64 {
            let rows: Vec<Vec<Value>> = (0..4)
                .map(|i| vec![Value::Integer(chunk * 4 + i)])
                .collect();
            write_frame(&mut buf, &rows).unwrap();
        }
        let mut cur = Cursor::new(buf);
        read_header(&mut cur).unwrap();
        let mut all = Vec::new();
        while let Some(rows) = read_frame(&mut cur).unwrap() {
            all.extend(rows);
        }
        let expect: Vec<Vec<Value>> = (0..12).map(|i| vec![Value::Integer(i)]).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn bad_magic_is_a_clean_error() {
        let mut cur = Cursor::new(b"NOTSPILL".to_vec());
        let err = read_header(&mut cur).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        // Too-short header is also an error, not a panic.
        let mut short = Cursor::new(b"OIV".to_vec());
        assert!(read_header(&mut short).is_err());
    }

    #[test]
    fn truncated_frames_are_clean_errors() {
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::Integer(i), Value::Varchar(format!("row{i}"))])
            .collect();
        let mut buf = Vec::new();
        write_header(&mut buf).unwrap();
        write_frame(&mut buf, &rows).unwrap();
        // Cut the file at every prefix length after the header: each must
        // yield either a clean `None` (only at exactly the header) or a
        // corruption error — never a panic.
        for cut in 8..buf.len() - 1 {
            let mut cur = Cursor::new(buf[..cut].to_vec());
            read_header(&mut cur).unwrap();
            let res = read_frame(&mut cur);
            if cut == 8 {
                assert!(matches!(res, Ok(None)), "clean EOF at header boundary");
            } else {
                assert!(res.is_err(), "cut at {cut} must error");
            }
        }
    }

    #[test]
    fn corrupt_counts_and_tags_are_clean_errors() {
        // Absurd row count: rejected before any allocation.
        let mut buf = Vec::new();
        write_header(&mut buf).unwrap();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        let mut cur = Cursor::new(buf);
        read_header(&mut cur).unwrap();
        let err = read_frame(&mut cur).unwrap_err();
        assert!(err.to_string().contains("row count"), "{err}");

        // Unknown value tag.
        let mut buf = Vec::new();
        write_header(&mut buf).unwrap();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(0xEE);
        let mut cur = Cursor::new(buf);
        read_header(&mut cur).unwrap();
        let err = read_frame(&mut cur).unwrap_err();
        assert!(err.to_string().contains("unknown value tag"), "{err}");

        // Absurd text length: rejected before allocating it.
        let mut buf = Vec::new();
        write_header(&mut buf).unwrap();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(4); // TAG_TEXT
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cur = Cursor::new(buf);
        read_header(&mut cur).unwrap();
        let err = read_frame(&mut cur).unwrap_err();
        assert!(err.to_string().contains("text length"), "{err}");
    }

    #[test]
    fn row_bytes_counts_string_heap() {
        let small = row_bytes(&[Value::Integer(1)]);
        let with_text = row_bytes(&[Value::Varchar("x".repeat(1000))]);
        assert!(with_text > small + 900);
    }
}
