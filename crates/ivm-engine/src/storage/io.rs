//! Fault-injectable storage I/O: every durable-path file operation in
//! the engine — WAL appends and fsyncs, page reads/writes, catalog-meta
//! publishes, spill frames — goes through this module instead of
//! touching `std::fs` directly.
//!
//! Two layers compose here:
//!
//! - A [`StorageFile`]/[`StorageFs`] trait pair abstracts the handful of
//!   primitives the durable paths need (open/read/write/fsync/rename/
//!   remove/dir-fsync). [`RealFs`] is the production implementation.
//! - A process-global [`FaultPlan`] — installed programmatically via
//!   [`set_fault_plan`] or from the `OPENIVM_FAULT_PLAN` environment
//!   variable — can inject ENOSPC, EINTR-class transient errors, fsync
//!   failure, short (torn) writes, and read corruption at the Nth
//!   operation matching a path pattern.
//!
//! On top of the fault check, every operation gets the transient-error
//! discipline for free: `EINTR`-class errors ([`std::io::ErrorKind::Interrupted`])
//! are retried with bounded backoff, counted in a process-wide retry
//! counter surfaced through [`retries`] (and from there into
//! `wal_stats()`). All other errors pass through untouched for the
//! caller's degradation policy (WAL poisoning, query-scoped spill
//! aborts, retriable checkpoints) to classify.

use std::fmt;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::EngineError;

/// Environment variable holding a fault plan applied to every storage
/// I/O operation of the process (see [`parse_fault_plan_setting`] for
/// the syntax). CI's fault-injection leg sets a transient-only plan so
/// the whole suite doubles as a retry-correctness test.
pub const FAULT_PLAN_ENV: &str = "OPENIVM_FAULT_PLAN";

/// Maximum retry attempts for one transient (`EINTR`-class) error.
const MAX_RETRIES: u32 = 8;

/// Process-wide count of transient-error retries.
static IO_RETRIES: AtomicU64 = AtomicU64::new(0);

/// Transient (`EINTR`-class) errors retried so far, process-wide.
pub fn retries() -> u64 {
    IO_RETRIES.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// The trait pair
// ---------------------------------------------------------------------

/// How a storage file is opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Read + write, created if missing, existing contents kept.
    ReadWrite,
    /// Created (or truncated) for writing.
    Create,
    /// Read-only; the file must exist.
    ReadOnly,
}

/// One open storage file: the primitive set the durable paths need.
// `len` here is a fallible size query on a file handle, not a
// collection length — an `is_empty` companion would be noise.
#[allow(clippy::len_without_is_empty)]
pub trait StorageFile: Send + fmt::Debug {
    /// Seek to a position, returning the new offset.
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64>;
    /// Read up to `buf.len()` bytes at the current position.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Write all of `buf` at the current position.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// fsync file data (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Truncate or extend to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Current file length in bytes.
    fn len(&mut self) -> io::Result<u64>;
}

/// A storage filesystem: opens files and performs the metadata
/// operations (rename/remove/mkdir/list/dir-fsync) the durable paths
/// use. Implementations must be shareable across threads — the spill
/// writer thread uses the same instance as the session.
pub trait StorageFs: Send + Sync + fmt::Debug {
    /// Open `path` in the given mode.
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn StorageFile>>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Create a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// List the entries of a directory.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// fsync a directory (makes renames/creates within it durable).
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
}

/// The production [`StorageFs`]: plain `std::fs`.
#[derive(Debug, Default)]
pub struct RealFs;

#[derive(Debug)]
struct RealFile(std::fs::File);

impl StorageFile for RealFile {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.0.seek(pos)
    }
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn len(&mut self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }
}

impl StorageFs for RealFs {
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn StorageFile>> {
        let mut opts = std::fs::OpenOptions::new();
        match mode {
            OpenMode::ReadWrite => opts.read(true).write(true).create(true).truncate(false),
            OpenMode::Create => opts.read(true).write(true).create(true).truncate(true),
            OpenMode::ReadOnly => opts.read(true),
        };
        Ok(Box::new(RealFile(opts.open(path)?)))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        std::fs::read_dir(path)?
            .map(|e| e.map(|e| e.path()))
            .collect()
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }
}

/// The installed filesystem implementation ([`RealFs`] unless a test
/// swapped one in).
fn backing_fs() -> Arc<dyn StorageFs> {
    static FS: OnceLock<Mutex<Arc<dyn StorageFs>>> = OnceLock::new();
    FS.get_or_init(|| Mutex::new(Arc::new(RealFs)))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

// ---------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------

/// The class of a storage I/O operation, for fault targeting and probe
/// counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Opening or creating a file.
    Open,
    /// Reading file bytes.
    Read,
    /// Writing file bytes (including truncation).
    Write,
    /// fsync of a file or directory.
    Sync,
    /// Filesystem metadata: rename, remove, mkdir, list.
    Meta,
}

impl OpClass {
    /// All operation classes, in a stable order.
    pub const ALL: [OpClass; 5] = [
        OpClass::Open,
        OpClass::Read,
        OpClass::Write,
        OpClass::Sync,
        OpClass::Meta,
    ];

    fn index(self) -> usize {
        match self {
            OpClass::Open => 0,
            OpClass::Read => 1,
            OpClass::Write => 2,
            OpClass::Sync => 3,
            OpClass::Meta => 4,
        }
    }
}

/// The kind of fault a rule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `ENOSPC`: the device is full. Targets writes, creates, and
    /// metadata operations.
    Enospc,
    /// `EINTR`-class transient error. Targets every operation; the retry
    /// layer absorbs it unless it fires on every attempt.
    Transient,
    /// fsync failure (`EIO`). Targets file and directory syncs.
    FsyncFail,
    /// A torn write: a prefix of the buffer reaches the file, then the
    /// write errors. Targets writes.
    ShortWrite,
    /// Read corruption: the read succeeds but a byte is flipped —
    /// checksummed callers must detect it. Targets reads.
    ReadCorrupt,
}

impl FaultKind {
    /// All fault kinds, in a stable order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Enospc,
        FaultKind::Transient,
        FaultKind::FsyncFail,
        FaultKind::ShortWrite,
        FaultKind::ReadCorrupt,
    ];

    /// Which operation classes this fault kind can fire on.
    pub fn applies_to(self, class: OpClass) -> bool {
        match self {
            FaultKind::Transient => true,
            FaultKind::Enospc => {
                matches!(class, OpClass::Write | OpClass::Open | OpClass::Meta)
            }
            FaultKind::FsyncFail => matches!(class, OpClass::Sync),
            FaultKind::ShortWrite => matches!(class, OpClass::Write),
            FaultKind::ReadCorrupt => matches!(class, OpClass::Read),
        }
    }

    /// The operation class a single-shot rule of this kind counts
    /// against (used by sweep harnesses to enumerate op indexes).
    pub fn target_class(self) -> OpClass {
        match self {
            FaultKind::Enospc | FaultKind::ShortWrite => OpClass::Write,
            FaultKind::Transient => OpClass::Write,
            FaultKind::FsyncFail => OpClass::Sync,
            FaultKind::ReadCorrupt => OpClass::Read,
        }
    }

    fn parse(s: &str) -> Option<FaultKind> {
        Some(match s {
            "enospc" => FaultKind::Enospc,
            "transient" => FaultKind::Transient,
            "fsync" => FaultKind::FsyncFail,
            "short" => FaultKind::ShortWrite,
            "corrupt" => FaultKind::ReadCorrupt,
            _ => return None,
        })
    }
}

/// When a rule fires, counted over the operations it applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire exactly once, at the Nth matching operation (1-based).
    Once(u64),
    /// Fire at every Nth matching operation.
    Every(u64),
}

/// One fault rule: a kind, a path pattern, and a trigger point.
#[derive(Debug)]
pub struct FaultRule {
    kind: FaultKind,
    /// Substring the operation's path must contain (`*` or empty = all).
    pattern: String,
    trigger: Trigger,
    hits: AtomicU64,
}

impl FaultRule {
    /// A rule injecting `kind` at `trigger` on paths containing
    /// `pattern` (`*` matches every path).
    pub fn new(kind: FaultKind, pattern: impl Into<String>, trigger: Trigger) -> FaultRule {
        FaultRule {
            kind,
            pattern: pattern.into(),
            trigger,
            hits: AtomicU64::new(0),
        }
    }

    fn matches_path(&self, path: &Path) -> bool {
        self.pattern.is_empty()
            || self.pattern == "*"
            || path.to_string_lossy().contains(&self.pattern)
    }

    /// Whether this rule fires on the given operation (counts the hit).
    fn fire(&self, class: OpClass, path: &Path) -> bool {
        if !self.kind.applies_to(class) || !self.matches_path(path) {
            return false;
        }
        let n = self.hits.fetch_add(1, Ordering::Relaxed) + 1;
        match self.trigger {
            Trigger::Once(k) => n == k,
            Trigger::Every(k) => k > 0 && n.is_multiple_of(k),
        }
    }
}

/// A set of fault rules plus an optional probe counter. Install with
/// [`set_fault_plan`] (or `OPENIVM_FAULT_PLAN`); every storage I/O
/// operation consults the installed plan.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    /// When set, count every operation whose path contains this pattern
    /// per [`OpClass`] — the probe pass of a fault sweep.
    observe_pattern: Option<String>,
    observed: [AtomicU64; 5],
}

impl FaultPlan {
    /// An empty plan (no faults, no probe).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add a rule (builder style).
    pub fn with_rule(mut self, kind: FaultKind, pattern: &str, trigger: Trigger) -> FaultPlan {
        self.rules.push(FaultRule::new(kind, pattern, trigger));
        self
    }

    /// A pure probe plan: injects nothing, counts every operation whose
    /// path contains `pattern`, per class. Sweep harnesses run the
    /// workload once under a probe to learn how many operations of each
    /// class exist, then re-run with `Once(i)` rules for each index.
    pub fn observing(pattern: impl Into<String>) -> FaultPlan {
        FaultPlan {
            rules: Vec::new(),
            observe_pattern: Some(pattern.into()),
            observed: Default::default(),
        }
    }

    /// Operations of `class` observed so far (probe plans only).
    pub fn observed(&self, class: OpClass) -> u64 {
        self.observed[class.index()].load(Ordering::Relaxed)
    }

    /// The fault to inject for one operation, if any.
    fn check(&self, class: OpClass, path: &Path) -> Option<FaultKind> {
        if let Some(pat) = &self.observe_pattern {
            if path.to_string_lossy().contains(pat.as_str()) {
                self.observed[class.index()].fetch_add(1, Ordering::Relaxed);
            }
        }
        self.rules
            .iter()
            .find(|r| r.fire(class, path))
            .map(|r| r.kind)
    }
}

/// Parse an `OPENIVM_FAULT_PLAN` value: `;`-separated rules of the form
/// `kind@pattern:trigger`, where `kind` is one of `enospc`, `transient`,
/// `fsync`, `short`, `corrupt`; `pattern` is a path substring (`*` for
/// all paths); and `trigger` is `N` (fire once, at the Nth matching
/// operation) or `%N` (fire at every Nth matching operation). Example:
/// `transient@*:%7;enospc@wal.:3`.
pub fn parse_fault_plan_setting(raw: &str) -> Result<FaultPlan, EngineError> {
    let invalid = |what: &str| {
        EngineError::bind(format!(
            "invalid {FAULT_PLAN_ENV} value {raw:?}: {what} \
             (expected `kind@pattern:trigger[;...]`, e.g. `transient@*:%7`)"
        ))
    };
    let mut plan = FaultPlan::new();
    for rule in raw.split(';') {
        let rule = rule.trim();
        if rule.is_empty() {
            continue;
        }
        let (kind, rest) = rule
            .split_once('@')
            .ok_or_else(|| invalid("missing `@` separator"))?;
        let kind = FaultKind::parse(kind.trim()).ok_or_else(|| invalid("unknown fault kind"))?;
        let (pattern, trigger) = rest
            .rsplit_once(':')
            .ok_or_else(|| invalid("missing `:trigger`"))?;
        let trigger = trigger.trim();
        let trigger = if let Some(n) = trigger.strip_prefix('%') {
            Trigger::Every(
                n.parse::<u64>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| invalid("bad `%N` period"))?,
            )
        } else {
            Trigger::Once(
                trigger
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| invalid("bad trigger index"))?,
            )
        };
        plan.rules
            .push(FaultRule::new(kind, pattern.trim(), trigger));
    }
    Ok(plan)
}

/// The installed plan cell, seeded from `OPENIVM_FAULT_PLAN` on first
/// use. An invalid value is a loud startup error (panic with the parse
/// message), never a silent no-fault run.
fn plan_cell() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static PLAN: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
    PLAN.get_or_init(|| {
        let from_env = std::env::var(FAULT_PLAN_ENV)
            .ok()
            .map(|raw| Arc::new(parse_fault_plan_setting(&raw).unwrap_or_else(|e| panic!("{e}"))));
        Mutex::new(from_env)
    })
}

/// Install (or clear, with `None`) the process-global fault plan.
/// Returns the previously installed plan.
pub fn set_fault_plan(plan: Option<Arc<FaultPlan>>) -> Option<Arc<FaultPlan>> {
    let mut cell = plan_cell().lock().unwrap_or_else(|e| e.into_inner());
    std::mem::replace(&mut cell, plan)
}

/// The currently installed fault plan, if any.
pub fn fault_plan() -> Option<Arc<FaultPlan>> {
    plan_cell()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// Consult the installed plan for one operation.
fn injected(class: OpClass, path: &Path) -> Option<FaultKind> {
    fault_plan().and_then(|p| p.check(class, path))
}

fn fault_error(kind: FaultKind) -> io::Error {
    match kind {
        // ENOSPC / EINTR / EIO by errno, so `ErrorKind` classification
        // matches the real thing without a libc dependency.
        FaultKind::Enospc => io::Error::from_raw_os_error(28),
        FaultKind::Transient => io::Error::from_raw_os_error(4),
        FaultKind::FsyncFail => io::Error::from_raw_os_error(5),
        FaultKind::ShortWrite => io::Error::new(io::ErrorKind::WriteZero, "injected short write"),
        FaultKind::ReadCorrupt => io::Error::other("injected read corruption"),
    }
}

/// Run `op`, retrying `EINTR`-class transient errors with bounded
/// backoff. Each retry bumps the process-wide counter behind
/// [`retries`].
fn with_retry<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Err(e) if e.kind() == io::ErrorKind::Interrupted && attempt < MAX_RETRIES => {
                attempt += 1;
                IO_RETRIES.fetch_add(1, Ordering::Relaxed);
                // 100µs … ~6ms: long enough to ride out signal storms,
                // bounded so a fail-every-time fault surfaces quickly.
                std::thread::sleep(std::time::Duration::from_micros(100 << attempt.min(6)));
            }
            other => return other,
        }
    }
}

// ---------------------------------------------------------------------
// The checked handle + filesystem entry points
// ---------------------------------------------------------------------

/// An open storage file with the fault check and transient-retry layer
/// applied to every operation. This is what the engine's durable paths
/// hold instead of a raw `std::fs::File`.
#[derive(Debug)]
pub struct FileHandle {
    inner: Box<dyn StorageFile>,
    path: PathBuf,
}

#[allow(clippy::len_without_is_empty)] // fallible size query, not a collection
impl FileHandle {
    /// The path this handle was opened at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Seek to `pos`.
    pub fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let (inner, path) = (&mut self.inner, &self.path);
        with_retry(|| match injected(OpClass::Meta, path) {
            Some(k) => Err(fault_error(k)),
            None => inner.seek(pos),
        })
    }

    /// Read up to `buf.len()` bytes. Injected read corruption performs
    /// the read, then flips a byte — checksummed callers must notice.
    pub fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let (inner, path) = (&mut self.inner, &self.path);
        with_retry(|| match injected(OpClass::Read, path) {
            Some(FaultKind::ReadCorrupt) => {
                let n = inner.read(buf)?;
                if n > 0 {
                    buf[0] ^= 0x40;
                }
                Ok(n)
            }
            Some(k) => Err(fault_error(k)),
            None => inner.read(buf),
        })
    }

    /// Read exactly `buf.len()` bytes.
    pub fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        let mut filled = 0usize;
        while filled < buf.len() {
            match self.read(&mut buf[filled..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "failed to fill whole buffer",
                    ))
                }
                Ok(n) => filled += n,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Write all of `buf`. An injected short write puts a prefix of the
    /// buffer in the file, then errors — the torn-write crash shape.
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let (inner, path) = (&mut self.inner, &self.path);
        with_retry(|| match injected(OpClass::Write, path) {
            Some(FaultKind::ShortWrite) => {
                inner.write_all(&buf[..buf.len() / 2])?;
                Err(fault_error(FaultKind::ShortWrite))
            }
            Some(k) => Err(fault_error(k)),
            None => inner.write_all(buf),
        })
    }

    /// fsync file data.
    pub fn sync_data(&mut self) -> io::Result<()> {
        let (inner, path) = (&mut self.inner, &self.path);
        with_retry(|| match injected(OpClass::Sync, path) {
            Some(k) => Err(fault_error(k)),
            None => inner.sync_data(),
        })
    }

    /// Truncate or extend to `len` bytes.
    pub fn set_len(&mut self, len: u64) -> io::Result<()> {
        let (inner, path) = (&mut self.inner, &self.path);
        with_retry(|| match injected(OpClass::Write, path) {
            Some(k) => Err(fault_error(k)),
            None => inner.set_len(len),
        })
    }

    /// Current file length in bytes.
    pub fn len(&mut self) -> io::Result<u64> {
        let (inner, path) = (&mut self.inner, &self.path);
        with_retry(|| match injected(OpClass::Meta, path) {
            Some(k) => Err(fault_error(k)),
            None => inner.len(),
        })
    }
}

// `BufReader<FileHandle>` for the streaming spill readers.
impl Read for FileHandle {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        FileHandle::read(self, buf)
    }
}

/// Open `path` through the installed [`StorageFs`].
pub fn open(path: &Path, mode: OpenMode) -> io::Result<FileHandle> {
    let fs = backing_fs();
    let inner = with_retry(|| match injected(OpClass::Open, path) {
        Some(k) => Err(fault_error(k)),
        None => fs.open(path, mode),
    })?;
    Ok(FileHandle {
        inner,
        path: path.to_path_buf(),
    })
}

/// Read a whole file. Injected read corruption flips a byte of the
/// returned contents.
pub fn read(path: &Path) -> io::Result<Vec<u8>> {
    let fs = backing_fs();
    with_retry(|| match injected(OpClass::Read, path) {
        Some(FaultKind::ReadCorrupt) => {
            let mut bytes = fs.read(path)?;
            if !bytes.is_empty() {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x40;
            }
            Ok(bytes)
        }
        Some(k) => Err(fault_error(k)),
        None => fs.read(path),
    })
}

/// Atomically rename `from` to `to`.
pub fn rename(from: &Path, to: &Path) -> io::Result<()> {
    let fs = backing_fs();
    with_retry(|| match injected(OpClass::Meta, to) {
        Some(k) => Err(fault_error(k)),
        None => fs.rename(from, to),
    })
}

/// Remove a file.
pub fn remove_file(path: &Path) -> io::Result<()> {
    let fs = backing_fs();
    with_retry(|| match injected(OpClass::Meta, path) {
        Some(k) => Err(fault_error(k)),
        None => fs.remove_file(path),
    })
}

/// Create a directory and its parents.
pub fn create_dir_all(path: &Path) -> io::Result<()> {
    let fs = backing_fs();
    with_retry(|| match injected(OpClass::Meta, path) {
        Some(k) => Err(fault_error(k)),
        None => fs.create_dir_all(path),
    })
}

/// List the entries of a directory.
pub fn read_dir(path: &Path) -> io::Result<Vec<PathBuf>> {
    let fs = backing_fs();
    with_retry(|| match injected(OpClass::Meta, path) {
        Some(k) => Err(fault_error(k)),
        None => fs.read_dir(path),
    })
}

/// fsync a directory, making renames and file creations within it
/// durable across power loss.
pub fn sync_dir(path: &Path) -> io::Result<()> {
    let fs = backing_fs();
    with_retry(|| match injected(OpClass::Sync, path) {
        Some(k) => Err(fault_error(k)),
        None => fs.sync_dir(path),
    })
}

/// Serialize unit tests that install a global plan. Path-scoped patterns
/// keep unrelated concurrently-running tests unaffected; this lock only
/// keeps plan-installing tests from clobbering each other's plan.
#[cfg(test)]
pub(crate) fn test_plan_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_lock() -> std::sync::MutexGuard<'static, ()> {
        test_plan_serial()
    }

    struct PlanGuard(Option<Arc<FaultPlan>>);
    impl PlanGuard {
        fn install(plan: FaultPlan) -> PlanGuard {
            PlanGuard(set_fault_plan(Some(Arc::new(plan))))
        }
    }
    impl Drop for PlanGuard {
        fn drop(&mut self) {
            set_fault_plan(self.0.take());
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("openivm-iotest-{}-{name}", std::process::id()))
    }

    #[test]
    fn fault_plan_parses_and_rejects() {
        let plan = parse_fault_plan_setting("transient@*:%7; enospc@wal.:3").unwrap();
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(plan.rules[0].kind, FaultKind::Transient);
        assert_eq!(plan.rules[0].trigger, Trigger::Every(7));
        assert_eq!(plan.rules[1].kind, FaultKind::Enospc);
        assert_eq!(plan.rules[1].pattern, "wal.");
        assert_eq!(plan.rules[1].trigger, Trigger::Once(3));
        for bad in [
            "bogus@*:1",
            "enospc:*@1",
            "enospc@*:zero",
            "enospc@*:%0",
            "enospc@*:0",
            "transient@*",
        ] {
            let err = parse_fault_plan_setting(bad).unwrap_err();
            assert!(err.to_string().contains(FAULT_PLAN_ENV), "{bad:?} → {err}");
        }
        // Empty and whitespace plans are valid no-ops.
        assert!(parse_fault_plan_setting("").unwrap().rules.is_empty());
        assert!(parse_fault_plan_setting(" ; ").unwrap().rules.is_empty());
    }

    #[test]
    fn transient_faults_are_retried_and_counted() {
        let _serial = plan_lock();
        let path = temp_path("transient");
        // Fire EINTR on the 1st and 2nd write to this path; the retry
        // layer must absorb both and land the write.
        let _guard = PlanGuard::install(
            FaultPlan::new()
                .with_rule(FaultKind::Transient, "openivm-iotest", Trigger::Once(1))
                .with_rule(FaultKind::Transient, "openivm-iotest", Trigger::Once(2)),
        );
        let before = retries();
        let mut f = open(&path, OpenMode::Create).unwrap();
        f.write_all(b"payload").unwrap();
        drop(f);
        assert!(retries() > before, "retry counter must move");
        drop(_guard);
        assert_eq!(read(&path).unwrap(), b"payload");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn enospc_and_short_write_surface_cleanly() {
        let _serial = plan_lock();
        let path = temp_path("enospc");
        {
            let _guard = PlanGuard::install(FaultPlan::new().with_rule(
                FaultKind::Enospc,
                "openivm-iotest",
                Trigger::Once(2),
            ));
            let mut f = open(&path, OpenMode::Create).unwrap();
            // Open counted as op 1 (Enospc applies to Open); the write is
            // op 2 and fails with a real ENOSPC errno.
            let err = f.write_all(b"xxxx").unwrap_err();
            assert_eq!(err.raw_os_error(), Some(28), "{err}");
        }
        {
            let _guard = PlanGuard::install(FaultPlan::new().with_rule(
                FaultKind::ShortWrite,
                "openivm-iotest",
                Trigger::Once(1),
            ));
            let mut f = open(&path, OpenMode::Create).unwrap();
            let err = f.write_all(b"abcdef").unwrap_err();
            assert!(err.to_string().contains("short write"), "{err}");
        }
        // The short write left exactly the prefix: the torn shape.
        assert_eq!(std::fs::read(&path).unwrap(), b"abc");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_corruption_flips_a_byte() {
        let _serial = plan_lock();
        let path = temp_path("corrupt");
        std::fs::write(&path, b"checksummed").unwrap();
        let _guard = PlanGuard::install(FaultPlan::new().with_rule(
            FaultKind::ReadCorrupt,
            "openivm-iotest",
            Trigger::Once(1),
        ));
        let bytes = read(&path).unwrap();
        assert_eq!(bytes.len(), 11);
        assert_ne!(bytes, b"checksummed", "a byte must be flipped");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn probe_plan_counts_ops_per_class() {
        let _serial = plan_lock();
        let path = temp_path("probe");
        let plan = Arc::new(FaultPlan::observing("openivm-iotest"));
        let prev = set_fault_plan(Some(Arc::clone(&plan)));
        let mut f = open(&path, OpenMode::Create).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync_data().unwrap();
        drop(f);
        let _ = read(&path);
        remove_file(&path).unwrap();
        set_fault_plan(prev);
        assert_eq!(plan.observed(OpClass::Open), 1);
        assert_eq!(plan.observed(OpClass::Write), 1);
        assert_eq!(plan.observed(OpClass::Sync), 1);
        assert_eq!(plan.observed(OpClass::Read), 1);
        assert_eq!(plan.observed(OpClass::Meta), 1);
    }
}
