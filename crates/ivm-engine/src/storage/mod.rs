//! In-memory columnar table storage.

mod table;

pub use table::{MorselCursor, Table};
