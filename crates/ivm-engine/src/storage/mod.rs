//! Table storage: in-memory columnar tables, the spill frame codec, and
//! the durability stack (slotted pages, buffer pool, write-ahead log,
//! checkpoint/recovery orchestration).

pub mod buffer;
pub mod checksum;
pub mod durability;
pub mod frame;
pub mod io;
pub mod page;
pub mod wal;

mod table;

pub use buffer::{BufferPool, BufferPoolStats, PageFile, PinnedPage};
pub use durability::{Durability, DurabilityOptions, RecoveryStats, TableMeta};
pub use io::{
    parse_fault_plan_setting, set_fault_plan, FaultKind, FaultPlan, OpClass, Trigger,
    FAULT_PLAN_ENV,
};
pub use table::{MorselCursor, Table};
pub use wal::{Wal, WalRecord, WalStats};
