//! In-memory columnar table storage and the spill frame codec.

pub mod frame;

mod table;

pub use table::{MorselCursor, Table};
