//! Fixed-size slotted heap pages.
//!
//! Every page is exactly [`PAGE_SIZE`] bytes and starts with a 24-byte
//! header (magic, kind, LSN, CRC-32 checksum). Two kinds exist:
//!
//! - **Heap** pages hold variable-length tuples growing up from the
//!   header while a slot directory (`offset:u16 len:u16` per entry)
//!   grows down from the page end — the classic slotted layout.
//! - **Overflow** pages hold one chunk of a tuple too large to inline,
//!   chained through a `next` pointer, so a single VARCHAR may span
//!   thousands of pages without changing the heap layout.
//!
//! Tuple *payloads* are rows encoded with the bounds-checked columnar
//! frame codec ([`crate::storage::frame::encode_row`]); this module only
//! manages placement. The checksum is computed over the whole page with
//! the checksum field zeroed ([`seal`]) and verified on every read from
//! disk ([`verify`]) — a torn or bit-rotted page decodes to a clean
//! [`EngineError`], never a panic.

use crate::error::EngineError;
use crate::storage::checksum::crc32;

/// Size of every page on disk, in bytes.
pub const PAGE_SIZE: usize = 8192;

/// Bytes of the common page header.
pub const PAGE_HEADER: usize = 24;

/// Bytes per slot-directory entry (`offset:u16 len:u16`).
const SLOT_ENTRY: usize = 4;

/// Page magic ("OIPG" little-endian).
pub const PAGE_MAGIC: u32 = 0x4750_494F;

/// Page kind: slotted heap page.
pub const KIND_HEAP: u8 = 1;

/// Page kind: overflow chunk page.
pub const KIND_OVERFLOW: u8 = 2;

/// Largest tuple a heap page can inline (one tuple + one slot entry on
/// an otherwise empty page); larger tuples go to an overflow chain.
pub const HEAP_TUPLE_CAP: usize = PAGE_SIZE - PAGE_HEADER - SLOT_ENTRY;

/// Payload bytes one overflow page carries (header + `next` pointer
/// + `chunk_len` live in the first 34 bytes).
pub const OVERFLOW_CAP: usize = PAGE_SIZE - PAGE_HEADER - 10;

/// Sentinel for "no next overflow page" (page id 0 is a valid page).
pub const NO_PAGE: u64 = u64::MAX;

// Header layout (all little-endian):
//   0..4   magic
//   4      kind
//   5      pad
//   6..8   nslots (heap)
//   8..10  free_off (heap): first free byte above the tuple area
//   10..12 pad
//   12..16 checksum (crc32 of the page with this field zeroed)
//   16..24 lsn
// Overflow body:
//   24..32 next page id (NO_PAGE terminates the chain)
//   32..34 chunk_len
//   34..   chunk payload

fn get_u16(page: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(page[off..off + 2].try_into().unwrap())
}

fn put_u16(page: &mut [u8], off: usize, v: u16) {
    page[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

fn get_u32(page: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(page[off..off + 4].try_into().unwrap())
}

fn put_u32(page: &mut [u8], off: usize, v: u32) {
    page[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn get_u64(page: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(page[off..off + 8].try_into().unwrap())
}

fn put_u64(page: &mut [u8], off: usize, v: u64) {
    page[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn corrupt(page_id: u64, what: impl Into<String>) -> EngineError {
    EngineError::execution(format!("corrupt page {page_id}: {}", what.into()))
}

/// Initialize `page` as an empty heap page stamped with `lsn`.
pub fn init_heap(page: &mut [u8], lsn: u64) {
    debug_assert_eq!(page.len(), PAGE_SIZE);
    page.fill(0);
    put_u32(page, 0, PAGE_MAGIC);
    page[4] = KIND_HEAP;
    put_u16(page, 6, 0);
    put_u16(page, 8, PAGE_HEADER as u16);
    put_u64(page, 16, lsn);
}

/// Initialize `page` as an overflow page stamped with `lsn`, carrying
/// `chunk` (≤ [`OVERFLOW_CAP`] bytes) and pointing at `next`.
pub fn init_overflow(page: &mut [u8], lsn: u64, next: u64, chunk: &[u8]) {
    debug_assert_eq!(page.len(), PAGE_SIZE);
    debug_assert!(chunk.len() <= OVERFLOW_CAP, "overflow chunk too large");
    page.fill(0);
    put_u32(page, 0, PAGE_MAGIC);
    page[4] = KIND_OVERFLOW;
    put_u64(page, 16, lsn);
    put_u64(page, 24, next);
    put_u16(page, 32, chunk.len() as u16);
    page[34..34 + chunk.len()].copy_from_slice(chunk);
}

/// The page kind byte.
pub fn kind(page: &[u8]) -> u8 {
    page[4]
}

/// The page LSN (the epoch of the checkpoint that wrote it).
pub fn lsn(page: &[u8]) -> u64 {
    get_u64(page, 16)
}

/// Number of tuples on a heap page.
pub fn heap_slots(page: &[u8]) -> usize {
    get_u16(page, 6) as usize
}

/// Free bytes left on a heap page for one more tuple (its slot entry
/// already accounted for).
pub fn heap_free_space(page: &[u8]) -> usize {
    let nslots = get_u16(page, 6) as usize;
    let free_off = get_u16(page, 8) as usize;
    let dir_start = PAGE_SIZE - (nslots + 1) * SLOT_ENTRY;
    dir_start.saturating_sub(free_off)
}

/// Append a tuple to a heap page. Returns `false` when it does not fit
/// (caller moves to a fresh page). Tuples above [`HEAP_TUPLE_CAP`] never
/// fit anywhere and must be routed through an overflow chain first.
pub fn heap_push(page: &mut [u8], tuple: &[u8]) -> bool {
    if tuple.len() > heap_free_space(page) {
        return false;
    }
    let nslots = get_u16(page, 6) as usize;
    let free_off = get_u16(page, 8) as usize;
    page[free_off..free_off + tuple.len()].copy_from_slice(tuple);
    let entry = PAGE_SIZE - (nslots + 1) * SLOT_ENTRY;
    put_u16(page, entry, free_off as u16);
    put_u16(page, entry + 2, tuple.len() as u16);
    put_u16(page, 6, (nslots + 1) as u16);
    put_u16(page, 8, (free_off + tuple.len()) as u16);
    true
}

/// Borrow the tuples of a heap page in slot order. Every offset/length
/// is validated against the page bounds — a corrupt directory is a clean
/// error, not an out-of-bounds slice.
pub fn heap_tuples(page: &[u8], page_id: u64) -> Result<Vec<&[u8]>, EngineError> {
    if kind(page) != KIND_HEAP {
        return Err(corrupt(
            page_id,
            format!("expected heap page, kind {}", kind(page)),
        ));
    }
    let nslots = get_u16(page, 6) as usize;
    let dir_start = PAGE_SIZE
        .checked_sub(nslots * SLOT_ENTRY)
        .filter(|&d| d >= PAGE_HEADER);
    let Some(dir_start) = dir_start else {
        return Err(corrupt(
            page_id,
            format!("slot count {nslots} overruns the page"),
        ));
    };
    let mut out = Vec::with_capacity(nslots);
    for i in 0..nslots {
        let entry = PAGE_SIZE - (i + 1) * SLOT_ENTRY;
        let off = get_u16(page, entry) as usize;
        let len = get_u16(page, entry + 2) as usize;
        if off < PAGE_HEADER || off + len > dir_start {
            return Err(corrupt(
                page_id,
                format!("slot {i} [{off}, {}) escapes the tuple area", off + len),
            ));
        }
        out.push(&page[off..off + len]);
    }
    Ok(out)
}

/// Read an overflow page: `(next page id, chunk bytes)`.
pub fn overflow_chunk(page: &[u8], page_id: u64) -> Result<(u64, &[u8]), EngineError> {
    if kind(page) != KIND_OVERFLOW {
        return Err(corrupt(
            page_id,
            format!("expected overflow page, kind {}", kind(page)),
        ));
    }
    let next = get_u64(page, 24);
    let len = get_u16(page, 32) as usize;
    if len > OVERFLOW_CAP {
        return Err(corrupt(
            page_id,
            format!("overflow chunk length {len} exceeds cap"),
        ));
    }
    Ok((next, &page[34..34 + len]))
}

/// Stamp the page checksum (CRC-32 over the page with the checksum field
/// zeroed). Called at the write-to-disk boundary by the buffer pool.
pub fn seal(page: &mut [u8]) {
    put_u32(page, 12, 0);
    let crc = crc32(page);
    put_u32(page, 12, crc);
}

/// Verify magic and checksum after reading a page from disk.
pub fn verify(page: &[u8], page_id: u64) -> Result<(), EngineError> {
    if get_u32(page, 0) != PAGE_MAGIC {
        return Err(corrupt(page_id, "bad magic (not an openivm page)"));
    }
    let stored = get_u32(page, 12);
    let mut copy = page.to_vec();
    put_u32(&mut copy, 12, 0);
    if crc32(&copy) != stored {
        return Err(corrupt(
            page_id,
            "checksum mismatch (torn or corrupted write)",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        let mut p = vec![0u8; PAGE_SIZE];
        init_heap(&mut p, 7);
        p
    }

    #[test]
    fn push_and_read_back_in_slot_order() {
        let mut p = fresh();
        let tuples: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; (i as usize + 1) * 10]).collect();
        for t in &tuples {
            assert!(heap_push(&mut p, t));
        }
        assert_eq!(heap_slots(&p), 10);
        assert_eq!(lsn(&p), 7);
        let got = heap_tuples(&p, 0).unwrap();
        assert_eq!(got.len(), 10);
        for (a, b) in got.iter().zip(&tuples) {
            assert_eq!(a, &b.as_slice());
        }
    }

    #[test]
    fn page_fills_up_and_rejects_cleanly() {
        let mut p = fresh();
        let tuple = vec![0xABu8; 1000];
        let mut pushed = 0;
        while heap_push(&mut p, &tuple) {
            pushed += 1;
        }
        // 1000-byte tuples + 4-byte slots into 8168 usable bytes → 8.
        assert_eq!(pushed, (PAGE_SIZE - PAGE_HEADER) / (1000 + SLOT_ENTRY));
        // The page still reads back fine after the failed push.
        assert_eq!(heap_tuples(&p, 0).unwrap().len(), pushed);
        // A max-size tuple fits alone on an empty page; one byte more never fits.
        let mut p = fresh();
        assert!(heap_push(&mut p, &vec![0u8; HEAP_TUPLE_CAP]));
        let mut p = fresh();
        assert!(!heap_push(&mut p, &vec![0u8; HEAP_TUPLE_CAP + 1]));
    }

    #[test]
    fn seal_verify_roundtrip_and_corruption() {
        let mut p = fresh();
        heap_push(&mut p, b"hello");
        seal(&mut p);
        verify(&p, 3).unwrap();
        // Any flipped byte fails verification with a clean error.
        p[100] ^= 0x01;
        let err = verify(&p, 3).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        p[100] ^= 0x01;
        verify(&p, 3).unwrap();
        // Wrong magic is its own error.
        let zeros = vec![0u8; PAGE_SIZE];
        let err = verify(&zeros, 9).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn corrupt_slot_directory_is_a_clean_error() {
        let mut p = fresh();
        heap_push(&mut p, b"tuple");
        // Point the slot past the end of the tuple area.
        let entry = PAGE_SIZE - SLOT_ENTRY;
        put_u16(&mut p, entry, (PAGE_SIZE - 2) as u16);
        put_u16(&mut p, entry + 2, 100);
        assert!(heap_tuples(&p, 0).is_err());
        // Absurd slot count.
        let mut p = fresh();
        put_u16(&mut p, 6, u16::MAX);
        assert!(heap_tuples(&p, 0).is_err());
    }

    #[test]
    fn overflow_pages_roundtrip() {
        let mut p = vec![0u8; PAGE_SIZE];
        let chunk = vec![0x5Au8; OVERFLOW_CAP];
        init_overflow(&mut p, 2, 42, &chunk);
        seal(&mut p);
        verify(&p, 1).unwrap();
        let (next, got) = overflow_chunk(&p, 1).unwrap();
        assert_eq!(next, 42);
        assert_eq!(got, chunk.as_slice());
        // Kind confusion is a clean error both ways.
        assert!(heap_tuples(&p, 1).is_err());
        let h = fresh();
        assert!(overflow_chunk(&h, 0).is_err());
    }
}
