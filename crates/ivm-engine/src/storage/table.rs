//! Columnar table with tombstone deletes and index maintenance.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::EngineError;
use crate::exec::batch::{ColumnData, RowBatch};
use crate::expr::VectorKernel;
use crate::index::TableIndex;
use crate::schema::Schema;
use crate::storage::wal::{Wal, WalRecord};
use crate::value::Value;

/// Process-wide generation counter; see [`Table::generation`]. Every
/// draw — table creation or row mutation, on any table — yields a fresh
/// value, so a generation observed on one table instance can never be
/// re-issued to another (or to the same table later).
static NEXT_GENERATION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn next_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// An in-memory, column-major table.
///
/// Rows are append-only with tombstone deletion (like an analytical engine's
/// row-group storage); row ids are stable until [`Table::compact`]. A table
/// optionally owns a primary-key index plus named secondary indexes, all
/// ART-backed, which are kept in sync by every mutation.
#[derive(Debug)]
pub struct Table {
    /// Table name as stored in the catalog.
    pub name: String,
    /// Column layout.
    pub schema: Schema,
    /// Positions of the primary key columns (empty = no PK).
    pub primary_key: Vec<usize>,
    /// All row storage — column vectors, tombstone bitmap, and indexes —
    /// behind a single `Arc` so [`Table::snapshot`] can freeze the table
    /// with one refcount bump. The writer reaches mutable storage through
    /// one `Arc::make_mut` per operation: a no-op uniqueness check while
    /// unshared (the single-session path mutates in place exactly as
    /// before), and one copy-on-write clone of the storage on the first
    /// mutation after a snapshot froze it.
    data: Arc<TableData>,
    /// Set whenever [`Table::snapshot`] hands `data` to a reader; cleared
    /// once a mutation re-establishes unique ownership via
    /// [`Arc::make_mut`]. While clear, [`Table::data_mut`] skips the
    /// atomic uniqueness check entirely: `&mut self` plus "no snapshot
    /// taken since the last mutation" proves the refcount is 1, so the
    /// per-row DML hot path pays a plain branch instead of a CAS.
    /// Atomic only because `snapshot` takes `&self` and tables are shared
    /// across scan workers; every access from `&mut self` uses `get_mut`.
    maybe_shared: AtomicBool,
    live: usize,
    /// Bumped on every row mutation (insert/delete/update/truncate/
    /// compact); external caches keyed on row content (e.g. the
    /// delta-ingest victim index in `ivm-core`) validate against it.
    generation: u64,
    /// When attached (durable databases only), every mutation logs a
    /// logical redo record here. `None` in in-memory mode and during
    /// WAL replay — mutations then behave exactly as before.
    wal: Option<Arc<Wal>>,
}

/// The shareable storage half of a [`Table`]: everything a snapshot
/// freezes. Cloned as a unit by `Arc::make_mut` when the writer first
/// mutates storage a snapshot still holds.
#[derive(Debug, Clone)]
struct TableData {
    columns: Vec<Vec<Value>>,
    deleted: Vec<bool>,
    pk_index: Option<TableIndex>,
    secondary: Vec<(String, TableIndex)>,
}

impl Table {
    /// Create an empty table. When `primary_key` is non-empty a unique
    /// ART index is created over those column positions.
    pub fn new(name: impl Into<String>, schema: Schema, primary_key: Vec<usize>) -> Table {
        let pk_index =
            (!primary_key.is_empty()).then(|| TableIndex::new(primary_key.clone(), true));
        let ncols = schema.len();
        Table {
            name: name.into(),
            schema,
            primary_key,
            data: Arc::new(TableData {
                columns: vec![Vec::new(); ncols],
                deleted: Vec::new(),
                pk_index,
                secondary: Vec::new(),
            }),
            maybe_shared: AtomicBool::new(false),
            live: 0,
            generation: next_generation(),
            wal: None,
        }
    }

    /// Mutable storage access. The common case — no snapshot taken since
    /// the last mutation — is a plain branch on [`Table::maybe_shared`]
    /// and a pointer cast: no atomic operation at all. The first mutation
    /// after a snapshot goes through [`Arc::make_mut`], which clones the
    /// storage if the snapshot still holds it, re-establishing unique
    /// ownership for every following call.
    fn data_mut(&mut self) -> &mut TableData {
        if *self.maybe_shared.get_mut() {
            Arc::make_mut(&mut self.data);
            *self.maybe_shared.get_mut() = false;
        }
        // SAFETY: `self.data` is uniquely owned here. `maybe_shared` is
        // set by every clone of the Arc (all of which live in
        // [`Table::snapshot`]) and only cleared above, immediately after
        // `make_mut` re-established uniqueness; `&mut self` excludes a
        // concurrent `snapshot`. This is `Arc::get_mut_unchecked` minus
        // the unstable feature gate.
        unsafe { &mut *(Arc::as_ptr(&self.data) as *mut TableData) }
    }

    /// Attach (or detach) the redo log every mutation reports to.
    pub(crate) fn set_wal(&mut self, wal: Option<Arc<Wal>>) {
        self.wal = wal;
    }

    /// Secondary index definitions as `(name, columns, unique)` — the
    /// durable checkpoint records these so indexes rebuild on recovery.
    pub fn secondary_index_defs(&self) -> Vec<(String, Vec<usize>, bool)> {
        self.data
            .secondary
            .iter()
            .map(|(n, idx)| (n.clone(), idx.columns.clone(), idx.unique))
            .collect()
    }

    /// Rebuild a table from checkpointed parts, preserving the physical
    /// slot layout: `rows` are `(slot_id, row)` pairs and `total_slots`
    /// the original slot count including tombstones, so row ids (and
    /// therefore scan order) match the pre-checkpoint table exactly.
    /// Secondary indexes are rebuilt from `secondary` definitions.
    pub(crate) fn from_parts(
        name: String,
        schema: Schema,
        primary_key: Vec<usize>,
        secondary: &[(String, Vec<usize>, bool)],
        total_slots: u64,
        rows: Vec<(u64, Vec<Value>)>,
    ) -> Result<Table, EngineError> {
        let total = total_slots as usize;
        let mut table = Table::new(name, schema, primary_key);
        let mut columns = vec![vec![Value::Null; total]; table.schema.len()];
        let mut deleted = vec![true; total];
        for (slot, row) in rows {
            let idx = slot as usize;
            if idx >= total {
                return Err(EngineError::execution(format!(
                    "corrupt table {}: slot {slot} beyond {total} slots",
                    table.name
                )));
            }
            if !deleted[idx] {
                return Err(EngineError::execution(format!(
                    "corrupt table {}: slot {slot} stored twice",
                    table.name
                )));
            }
            if row.len() != table.schema.len() {
                return Err(EngineError::execution(format!(
                    "corrupt table {}: slot {slot} has {} columns, schema has {}",
                    table.name,
                    row.len(),
                    table.schema.len()
                )));
            }
            for (col, value) in columns.iter_mut().zip(row) {
                col[idx] = value;
            }
            deleted[idx] = false;
            table.live += 1;
        }
        {
            let data = table.data_mut();
            data.columns = columns;
            data.deleted = deleted;
        }
        table.rebuild_indexes();
        for (iname, cols, unique) in secondary {
            table.create_secondary_index(iname.clone(), cols.clone(), *unique)?;
        }
        Ok(table)
    }

    /// Number of live rows.
    pub fn live_rows(&self) -> usize {
        self.live
    }

    /// Total slots including tombstones.
    pub fn total_slots(&self) -> usize {
        self.data.deleted.len()
    }

    /// Whether the table has a primary key index.
    pub fn has_pk_index(&self) -> bool {
        self.data.pk_index.is_some()
    }

    /// Borrow the primary key index.
    pub fn pk_index(&self) -> Option<&TableIndex> {
        self.data.pk_index.as_ref()
    }

    /// Names of secondary indexes.
    pub fn secondary_index_names(&self) -> Vec<&str> {
        self.data
            .secondary
            .iter()
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Total approximate index memory (primary + secondary), for E2.
    pub fn index_memory_bytes(&self) -> usize {
        self.data
            .pk_index
            .as_ref()
            .map_or(0, TableIndex::memory_bytes)
            + self
                .data
                .secondary
                .iter()
                .map(|(_, i)| i.memory_bytes())
                .sum::<usize>()
    }

    /// Validate a row against arity, types, and NOT NULL.
    fn check_row(&self, row: &[Value]) -> Result<(), EngineError> {
        if row.len() != self.schema.len() {
            return Err(EngineError::execution(format!(
                "table {} expects {} columns, got {}",
                self.name,
                self.schema.len(),
                row.len()
            )));
        }
        for (value, col) in row.iter().zip(&self.schema.columns) {
            if value.is_null() {
                if col.not_null {
                    return Err(EngineError::constraint(format!(
                        "NOT NULL constraint failed: {}.{}",
                        self.name, col.name
                    )));
                }
                continue;
            }
            if let Some(vt) = value.data_type() {
                if !col.ty.accepts(vt) {
                    return Err(EngineError::execution(format!(
                        "type mismatch for {}.{}: expected {}, got {}",
                        self.name, col.name, col.ty, vt
                    )));
                }
            }
        }
        Ok(())
    }

    /// Append a row, enforcing the PK. Returns the new row id.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<u64, EngineError> {
        self.check_row(&row)?;
        if let Some(pk) = &self.data.pk_index {
            let key = pk.key_of(&row);
            if pk.get_encoded(&key).is_some() {
                return Err(EngineError::constraint(format!(
                    "duplicate key in table {}",
                    self.name
                )));
            }
        }
        Ok(self.append_unchecked(row))
    }

    /// Upsert a row through the PK index ("INSERT OR REPLACE"): replaces
    /// the existing row with the same key, if any. Returns `(row_id,
    /// replaced)`.
    pub fn upsert(&mut self, row: Vec<Value>) -> Result<(u64, bool), EngineError> {
        self.check_row(&row)?;
        let Some(pk) = &self.data.pk_index else {
            return Err(EngineError::constraint(format!(
                "INSERT OR REPLACE on table {} requires a primary key index",
                self.name
            )));
        };
        let key = pk.key_of(&row);
        if let Some(existing) = pk.get_encoded(&key) {
            self.delete(existing)?;
            let id = self.append_unchecked(row);
            Ok((id, true))
        } else {
            Ok((self.append_unchecked(row), false))
        }
    }

    /// Mutation counter: changes whenever any row is inserted, deleted,
    /// updated, truncated, or renumbered by compaction. Values are drawn
    /// from one process-wide counter, so they are unique across table
    /// instances *and* across time — a cached structure stamped with a
    /// generation can detect staleness even through a drop-and-recreate
    /// under the same name. Lets callers cache row-content-derived
    /// structures safely.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Freeze a copy-on-write snapshot of this table. The clone shares
    /// the entire storage — column vectors, tombstone bitmap, and all
    /// ART indexes — by one `Arc` reference: a single refcount bump, no
    /// row is copied. The writer's next mutation goes through
    /// [`Arc::make_mut`], which clones the storage once while a snapshot
    /// still shares it, so snapshot readers observe a consistent
    /// immutable image while the writer proceeds. The snapshot carries
    /// no WAL handle: it is a read-only view, never a durability
    /// participant.
    pub fn snapshot(&self) -> Table {
        // Relaxed suffices: the snapshot Arc clone below synchronizes the
        // refcount itself, and the writer rechecks ownership through
        // `make_mut` whenever the flag is set.
        self.maybe_shared.store(true, Ordering::Relaxed);
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            primary_key: self.primary_key.clone(),
            data: Arc::clone(&self.data),
            maybe_shared: AtomicBool::new(true),
            live: self.live,
            generation: self.generation,
            wal: None,
        }
    }

    fn append_unchecked(&mut self, row: Vec<Value>) -> u64 {
        if let Some(wal) = &self.wal {
            wal.log(&WalRecord::Insert {
                table: self.name.clone(),
                row: row.clone(),
            });
        }
        self.generation = next_generation();
        let data = self.data_mut();
        let id = data.deleted.len() as u64;
        if let Some(pk) = &mut data.pk_index {
            let key = pk.key_of(&row);
            pk.insert(&key, id);
        }
        for (_, idx) in &mut data.secondary {
            let key = idx.key_of(&row);
            idx.insert(&key, id);
        }
        for (col, value) in data.columns.iter_mut().zip(row) {
            col.push(value);
        }
        data.deleted.push(false);
        self.live += 1;
        id
    }

    /// Tombstone a row by id.
    pub fn delete(&mut self, row_id: u64) -> Result<(), EngineError> {
        let idx = row_id as usize;
        if idx >= self.data.deleted.len() || self.data.deleted[idx] {
            return Err(EngineError::execution(format!(
                "row {row_id} does not exist in table {}",
                self.name
            )));
        }
        if let Some(wal) = &self.wal {
            wal.log(&WalRecord::Delete {
                table: self.name.clone(),
                row_id,
            });
        }
        let row = self.row(row_id);
        let data = self.data_mut();
        if let Some(pk) = &mut data.pk_index {
            let key = pk.key_of(&row);
            pk.remove(&key);
        }
        for (_, sidx) in &mut data.secondary {
            let key = sidx.key_of(&row);
            sidx.remove(&key);
        }
        data.deleted[idx] = true;
        self.live -= 1;
        self.generation = next_generation();
        Ok(())
    }

    /// Replace the row contents in place, keeping the row id.
    pub fn update(&mut self, row_id: u64, new_row: Vec<Value>) -> Result<(), EngineError> {
        self.check_row(&new_row)?;
        let idx = row_id as usize;
        if idx >= self.data.deleted.len() || self.data.deleted[idx] {
            return Err(EngineError::execution(format!(
                "row {row_id} does not exist in table {}",
                self.name
            )));
        }
        let old_row = self.row(row_id);
        // Encode the PK keys once: the duplicate check must run before the
        // WAL record and the copy-on-write below, but the remove/insert
        // can reuse the same encodings.
        let pk_change = match &self.data.pk_index {
            Some(pk) => {
                let old_key = pk.key_of(&old_row);
                let new_key = pk.key_of(&new_row);
                if old_key != new_key {
                    if pk.get_encoded(&new_key).is_some() {
                        return Err(EngineError::constraint(format!(
                            "duplicate key in table {}",
                            self.name
                        )));
                    }
                    Some((old_key, new_key))
                } else {
                    None
                }
            }
            None => None,
        };
        // Logged only after the last fallible check: a rejected update
        // must leave no trace in the redo log.
        if let Some(wal) = &self.wal {
            wal.log(&WalRecord::Update {
                table: self.name.clone(),
                row_id,
                row: new_row.clone(),
            });
        }
        let data = self.data_mut();
        if let Some((old_key, new_key)) = pk_change {
            let pk = data.pk_index.as_mut().expect("pk checked above");
            pk.remove(&old_key);
            pk.insert(&new_key, row_id);
        }
        for (_, sidx) in &mut data.secondary {
            let old_key = sidx.key_of(&old_row);
            sidx.remove(&old_key);
            let new_key = sidx.key_of(&new_row);
            sidx.insert(&new_key, row_id);
        }
        for (col, value) in data.columns.iter_mut().zip(new_row) {
            col[idx] = value;
        }
        self.generation = next_generation();
        Ok(())
    }

    /// Materialize the row with the given id (caller must know it's live).
    pub fn row(&self, row_id: u64) -> Vec<Value> {
        let idx = row_id as usize;
        self.data.columns.iter().map(|c| c[idx].clone()).collect()
    }

    /// Row id for a primary-key value, via the ART.
    pub fn lookup_pk(&self, key_values: &[Value]) -> Option<u64> {
        self.data.pk_index.as_ref()?.get(key_values)
    }

    /// Find a live row equal to `target` without materializing rows
    /// (column-major comparison; PK fast path when available). Used by the
    /// cross-system delta ingest to locate deletion victims.
    pub fn find_row(&self, target: &[Value]) -> Option<u64> {
        if target.len() != self.schema.len() {
            return None;
        }
        if let Some(pk) = &self.data.pk_index {
            let key: Vec<Value> = pk.columns.iter().map(|&c| target[c].clone()).collect();
            let id = pk.get(&key)?;
            let idx = id as usize;
            let matches = self
                .data
                .columns
                .iter()
                .zip(target)
                .all(|(col, t)| &col[idx] == t);
            return matches.then_some(id);
        }
        // Probe cheap-to-compare columns first: an integer mismatch is one
        // tag-and-word compare, a text mismatch walks bytes. Column order
        // doesn't change which rows match.
        let mut order: Vec<usize> = (0..target.len()).collect();
        order.sort_by_key(|&c| matches!(target[c], Value::Varchar(_)));
        let data = &self.data;
        (0..data.deleted.len())
            .find(|&i| !data.deleted[i] && order.iter().all(|&c| data.columns[c][i] == target[c]))
            .map(|i| i as u64)
    }

    /// Iterate live rows as `(row_id, row)`.
    pub fn scan(&self) -> impl Iterator<Item = (u64, Vec<Value>)> + '_ {
        (0..self.data.deleted.len())
            .filter(|&i| !self.data.deleted[i])
            .map(move |i| (i as u64, self.row(i as u64)))
    }

    /// Borrow one storage column.
    pub fn column(&self, index: usize) -> &[Value] {
        self.data.columns[index].as_slice()
    }

    /// True when the table holds no tombstones (a clean append-only window
    /// end to end — the common shape of delta tables). Scans then skip all
    /// per-window tombstone bookkeeping.
    pub fn is_clean(&self) -> bool {
        self.live == self.data.deleted.len()
    }

    /// Build the zero-copy batch for the physical slot `window`. Returns
    /// `None` when the window holds no live rows. `clean` skips the
    /// tombstone check, for tables known to be append-only.
    fn window_batch(&self, window: Range<usize>, clean: bool) -> Option<RowBatch<'_>> {
        if clean || self.data.deleted[window.clone()].iter().all(|&d| !d) {
            // Clean window: contiguous slices, no selection vector.
            let columns = self
                .data
                .columns
                .iter()
                .map(|c| ColumnData::borrowed(&c[window.clone()]))
                .collect();
            return Some(RowBatch::new(columns, window.len()));
        }
        let live: Arc<Vec<u32>> = Arc::new(
            window
                .filter(|&i| !self.data.deleted[i])
                .map(|i| i as u32)
                .collect(),
        );
        if live.is_empty() {
            return None;
        }
        let rows = live.len();
        let columns = self
            .data
            .columns
            .iter()
            .map(|c| ColumnData::borrowed_with_sel(&c[..], Arc::clone(&live)))
            .collect();
        Some(RowBatch::new(columns, rows))
    }

    /// Zero-copy batched scan: yields [`RowBatch`]es of up to `batch_size`
    /// live rows that *borrow* the column vectors. Tombstone-free windows
    /// come out as plain slices; windows with deletions share one
    /// selection vector across all columns. No `Value` is cloned.
    pub fn scan_batches(&self, batch_size: usize) -> impl Iterator<Item = RowBatch<'_>> + '_ {
        let batch_size = batch_size.max(1);
        let total = self.data.deleted.len();
        let clean = self.is_clean();
        let mut start = 0usize;
        std::iter::from_fn(move || {
            while start < total {
                let end = (start + batch_size).min(total);
                let batch = self.window_batch(start..end, clean);
                start = end;
                if batch.is_some() {
                    return batch;
                }
            }
            None
        })
    }

    /// Batched scan with a pushed-down predicate: the compiled kernel is
    /// evaluated once per storage chunk and only the selected rows are
    /// forwarded (as a composed selection vector — values are never
    /// cloned). Batches that select nothing are skipped entirely.
    pub fn scan_batches_filtered(
        &self,
        batch_size: usize,
        kernel: Arc<VectorKernel>,
    ) -> impl Iterator<Item = Result<RowBatch<'_>, EngineError>> + '_ {
        let batch_size = batch_size.max(1);
        let total = self.data.deleted.len();
        let clean = self.is_clean();
        let mut start = 0usize;
        std::iter::from_fn(move || {
            while start < total {
                let end = (start + batch_size).min(total);
                let batch = self.window_batch(start..end, clean);
                start = end;
                let Some(batch) = batch else { continue };
                let keep = match kernel.select(&batch) {
                    Ok(keep) => keep,
                    Err(e) => return Some(Err(e)),
                };
                if let Some(out) = batch.retain(keep) {
                    return Some(Ok(out));
                }
            }
            None
        })
    }

    /// The batches of one *morsel*: the live rows of the physical slot
    /// range `slots`, in batches of up to `batch_size` rows, optionally
    /// filtered by a pushed-down predicate kernel. Morsel boundaries are
    /// arbitrary — windows stay contiguous, so concatenating the batches
    /// of consecutive morsels reproduces the serial scan order exactly.
    /// This is the storage half of the morsel-driven parallel scan
    /// ([`crate::exec::parallel`]); morsels are claimed by worker threads
    /// through a [`MorselCursor`].
    pub fn scan_morsel(
        &self,
        slots: Range<usize>,
        batch_size: usize,
        kernel: Option<&VectorKernel>,
    ) -> Result<Vec<RowBatch<'_>>, EngineError> {
        let batch_size = batch_size.max(1);
        let clean = self.is_clean();
        let end = slots.end.min(self.data.deleted.len());
        let mut out = Vec::new();
        let mut start = slots.start;
        while start < end {
            let wend = (start + batch_size).min(end);
            let batch = self.window_batch(start..wend, clean);
            start = wend;
            let Some(batch) = batch else { continue };
            match kernel {
                None => out.push(batch),
                Some(k) => {
                    let keep = k.select(&batch)?;
                    if let Some(b) = batch.retain(keep) {
                        out.push(b);
                    }
                }
            }
        }
        Ok(out)
    }

    /// A zero-copy batch over explicit live row ids (the index point-read
    /// path).
    pub fn batch_from_row_ids(&self, ids: &[u64]) -> RowBatch<'_> {
        let sel: Arc<Vec<u32>> = Arc::new(ids.iter().map(|&id| id as u32).collect());
        let rows = sel.len();
        let columns = self
            .data
            .columns
            .iter()
            .map(|c| ColumnData::borrowed_with_sel(&c[..], Arc::clone(&sel)))
            .collect();
        RowBatch::new(columns, rows)
    }

    /// Answer a conjunction of `column = value` predicates through an ART
    /// index, if one covers the equality columns: the primary key first,
    /// then unique secondary indexes. Returns the matching live row ids
    /// (zero or one — unique indexes only), or `None` when no index
    /// applies and the caller must scan.
    pub fn equality_lookup(&self, eq: &[(usize, Value)]) -> Option<Vec<u64>> {
        if eq.is_empty() {
            return None;
        }
        let try_index = |idx: &TableIndex| -> Option<Vec<u64>> {
            let key: Option<Vec<Value>> = idx
                .columns
                .iter()
                .map(|c| eq.iter().find(|(i, _)| i == c).map(|(_, v)| v.clone()))
                .collect();
            let key = key?;
            Some(idx.get(&key).into_iter().collect())
        };
        if let Some(pk) = &self.data.pk_index {
            if let Some(ids) = try_index(pk) {
                return Some(ids);
            }
        }
        for (_, idx) in &self.data.secondary {
            if !idx.unique {
                continue;
            }
            if let Some(ids) = try_index(idx) {
                return Some(ids);
            }
        }
        None
    }

    /// Ids of the live rows matching a compiled predicate, found through
    /// chunked vectorized evaluation instead of per-row materialization.
    /// Powers `UPDATE`/`DELETE` victim selection.
    pub fn filter_row_ids(
        &self,
        batch_size: usize,
        kernel: &VectorKernel,
    ) -> Result<Vec<u64>, EngineError> {
        self.filter_row_ids_range(0..self.data.deleted.len(), batch_size, kernel)
    }

    /// [`Table::filter_row_ids`] over one physical slot window — the
    /// morsel-granular form the parallel DML victim scan fans out over.
    /// Ids come back in slot order, so concatenating per-morsel results
    /// in morsel order reproduces the serial scan exactly.
    pub fn filter_row_ids_range(
        &self,
        slots: std::ops::Range<usize>,
        batch_size: usize,
        kernel: &VectorKernel,
    ) -> Result<Vec<u64>, EngineError> {
        let batch_size = batch_size.max(1);
        let total = slots.end.min(self.data.deleted.len());
        let clean = self.is_clean();
        let mut out = Vec::new();
        let mut start = slots.start.min(total);
        while start < total {
            let window_start = start;
            let next = (start + batch_size).min(total);
            let batch = self.window_batch(start..next, clean);
            start = next;
            let Some(batch) = batch else { continue };
            let keep = kernel.select(&batch)?;
            if keep.is_empty() {
                continue;
            }
            if batch.num_rows() == next - window_start {
                // Clean window: logical row i is physical window_start + i.
                out.extend(keep.iter().map(|&i| (window_start + i as usize) as u64));
            } else {
                let live: Vec<u64> = (window_start..next)
                    .filter(|&i| !self.data.deleted[i])
                    .map(|i| i as u64)
                    .collect();
                out.extend(keep.iter().map(|&i| live[i as usize]));
            }
        }
        Ok(out)
    }

    /// Ids of all live rows.
    pub fn live_row_ids(&self) -> Vec<u64> {
        (0..self.data.deleted.len() as u64)
            .filter(|&i| !self.data.deleted[i as usize])
            .collect()
    }

    /// Iterate the physical slot ids of live rows in slot order, without
    /// materializing an id vector (whole-table passes like delta-ingest
    /// victim location stream this; double-ended so reverse-scan index
    /// builds need no transient allocation either).
    pub fn live_slot_ids(&self) -> impl DoubleEndedIterator<Item = u64> + '_ {
        self.data
            .deleted
            .iter()
            .enumerate()
            .filter(|(_, &d)| !d)
            .map(|(i, _)| i as u64)
    }

    /// Delete every row (keeps schema and indexes, emptied).
    pub fn truncate(&mut self) {
        if let Some(wal) = &self.wal {
            wal.log(&WalRecord::Truncate {
                table: self.name.clone(),
            });
        }
        // Unshared storage clears in place, keeping its capacity — delta
        // tables are truncated every refresh cycle and immediately
        // refilled to a similar size. Storage a snapshot still holds is
        // replaced wholesale instead: a clear through `Arc::make_mut`
        // would first copy the shared contents, only to discard them.
        let shared = *self.maybe_shared.get_mut() && Arc::get_mut(&mut self.data).is_none();
        if shared {
            let old = &self.data;
            let fresh = TableData {
                columns: vec![Vec::new(); old.columns.len()],
                deleted: Vec::new(),
                pk_index: old
                    .pk_index
                    .as_ref()
                    .map(|pk| TableIndex::new(pk.columns.clone(), pk.unique)),
                secondary: old
                    .secondary
                    .iter()
                    .map(|(n, idx)| (n.clone(), TableIndex::new(idx.columns.clone(), idx.unique)))
                    .collect(),
            };
            self.data = Arc::new(fresh);
            *self.maybe_shared.get_mut() = false;
        } else {
            let data = self.data_mut();
            for col in &mut data.columns {
                col.clear();
            }
            data.deleted.clear();
            if let Some(pk) = &mut data.pk_index {
                pk.clear();
            }
            for (_, idx) in &mut data.secondary {
                idx.clear();
            }
        }
        self.live = 0;
        self.generation = next_generation();
    }

    /// Drop tombstones and renumber rows; rebuilds all indexes.
    pub fn compact(&mut self) {
        if self.live == self.data.deleted.len() {
            return;
        }
        if let Some(wal) = &self.wal {
            wal.log(&WalRecord::Compact {
                table: self.name.clone(),
            });
        }
        let keep: Vec<usize> = (0..self.data.deleted.len())
            .filter(|&i| !self.data.deleted[i])
            .collect();
        let shared = *self.maybe_shared.get_mut() && Arc::get_mut(&mut self.data).is_none();
        match (!shared).then(|| self.data_mut()) {
            // Sole owner: steal the kept values without cloning.
            Some(data) => {
                for col in &mut data.columns {
                    let mut next = Vec::with_capacity(keep.len());
                    for &i in &keep {
                        next.push(std::mem::replace(&mut col[i], Value::Null));
                    }
                    *col = next;
                }
                data.deleted = vec![false; keep.len()];
            }
            // A snapshot still shares the storage: leave it intact and
            // build a compacted copy (indexes are rebuilt below).
            None => {
                let old = &self.data;
                self.data = Arc::new(TableData {
                    columns: old
                        .columns
                        .iter()
                        .map(|col| keep.iter().map(|&i| col[i].clone()).collect())
                        .collect(),
                    deleted: vec![false; keep.len()],
                    pk_index: old
                        .pk_index
                        .as_ref()
                        .map(|pk| TableIndex::new(pk.columns.clone(), pk.unique)),
                    secondary: old
                        .secondary
                        .iter()
                        .map(|(n, idx)| {
                            (n.clone(), TableIndex::new(idx.columns.clone(), idx.unique))
                        })
                        .collect(),
                });
            }
        }
        self.live = keep.len();
        self.generation = next_generation();
        self.rebuild_indexes();
    }

    /// Create (or replace) a secondary index over the named columns. The
    /// build is bulk: rows are scanned once and the ART populated directly
    /// — the "one-time overhead" the paper measures.
    pub fn create_secondary_index(
        &mut self,
        index_name: impl Into<String>,
        columns: Vec<usize>,
        unique: bool,
    ) -> Result<(), EngineError> {
        let name = index_name.into();
        if self.data.secondary.iter().any(|(n, _)| *n == name) {
            return Err(EngineError::catalog(format!("index {name} already exists")));
        }
        let mut idx = TableIndex::new(columns, unique);
        for (row_id, row) in self.scan() {
            let key = idx.key_of(&row);
            if idx.insert(&key, row_id).is_some() && unique {
                return Err(EngineError::constraint(format!(
                    "duplicate key while building unique index {name}"
                )));
            }
        }
        if let Some(wal) = &self.wal {
            wal.log(&WalRecord::CreateIndex {
                table: self.name.clone(),
                name: name.clone(),
                columns: idx.columns.clone(),
                unique,
            });
        }
        self.data_mut().secondary.push((name, idx));
        Ok(())
    }

    /// Remove a secondary index by name.
    pub fn drop_secondary_index(&mut self, name: &str) -> bool {
        if !self.data.secondary.iter().any(|(n, _)| n == name) {
            return false;
        }
        self.data_mut().secondary.retain(|(n, _)| n != name);
        let removed = true;
        if removed {
            if let Some(wal) = &self.wal {
                wal.log(&WalRecord::DropIndex {
                    table: self.name.clone(),
                    name: name.to_string(),
                });
            }
        }
        removed
    }

    /// Build (or rebuild) the PK index from current contents. Used after
    /// bulk loads, mirroring DuckDB's build-after-populate ART strategy.
    pub fn rebuild_indexes(&mut self) {
        // Build fresh trees and swap them in; callers reach this with
        // unshared storage (`from_parts`, `compact`), so `data_mut` is a
        // plain branch, not a copy.
        let data = self.data_mut();
        if let Some(pk) = &data.pk_index {
            let mut fresh = TableIndex::new(pk.columns.clone(), pk.unique);
            for i in 0..data.deleted.len() {
                if !data.deleted[i] {
                    let row: Vec<Value> = data.columns.iter().map(|c| c[i].clone()).collect();
                    let key = fresh.key_of(&row);
                    fresh.insert(&key, i as u64);
                }
            }
            data.pk_index = Some(fresh);
        }
        if data.secondary.is_empty() {
            return;
        }
        let mut rebuilt: Vec<(String, TableIndex)> = data
            .secondary
            .iter()
            .map(|(n, idx)| (n.clone(), TableIndex::new(idx.columns.clone(), idx.unique)))
            .collect();
        for i in 0..data.deleted.len() {
            if data.deleted[i] {
                continue;
            }
            let row: Vec<Value> = data.columns.iter().map(|c| c[i].clone()).collect();
            for (_, idx) in &mut rebuilt {
                let key = idx.key_of(&row);
                idx.insert(&key, i as u64);
            }
        }
        data.secondary = rebuilt;
    }

    /// Attach a primary key index after creation (bulk build). Errors on
    /// duplicate keys.
    pub fn add_pk_index(&mut self, columns: Vec<usize>) -> Result<(), EngineError> {
        let mut idx = TableIndex::new(columns.clone(), true);
        for (row_id, row) in self.scan() {
            let key = idx.key_of(&row);
            if idx.insert(&key, row_id).is_some() {
                return Err(EngineError::constraint(format!(
                    "duplicate key while building primary key index on {}",
                    self.name
                )));
            }
        }
        if let Some(wal) = &self.wal {
            wal.log(&WalRecord::AddPk {
                table: self.name.clone(),
                columns: columns.clone(),
            });
        }
        self.primary_key = columns;
        self.data_mut().pk_index = Some(idx);
        Ok(())
    }
}

/// A lock-free work-sharing cursor over a table's physical slot space.
///
/// The slot range `[0, total_slots)` is cut into fixed-size *morsels*;
/// worker threads [`claim`](MorselCursor::claim) morsels dynamically (a
/// single atomic `fetch_add`), so fast workers naturally steal more work
/// — the HyPer morsel-driven scheduling discipline. Each claim returns a
/// sequence number (`start / morsel_size`) that callers use to restore
/// the serial scan order when merging per-morsel results.
#[derive(Debug)]
pub struct MorselCursor {
    next: AtomicUsize,
    total: usize,
    morsel: usize,
    stopped: AtomicBool,
}

impl MorselCursor {
    /// A cursor over `total_slots` physical slots in morsels of
    /// `morsel_size` (clamped to ≥ 1) slots.
    pub fn new(total_slots: usize, morsel_size: usize) -> MorselCursor {
        MorselCursor {
            next: AtomicUsize::new(0),
            total: total_slots,
            morsel: morsel_size.max(1),
            stopped: AtomicBool::new(false),
        }
    }

    /// Claim the next unclaimed morsel: `(sequence number, slot range)`.
    /// Returns `None` when the table is exhausted or the cursor has been
    /// [`stop`](MorselCursor::stop)ped.
    pub fn claim(&self) -> Option<(usize, Range<usize>)> {
        if self.stopped.load(Ordering::Relaxed) {
            return None;
        }
        let start = self.next.fetch_add(self.morsel, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some((
            start / self.morsel,
            start..(start + self.morsel).min(self.total),
        ))
    }

    /// Poison the cursor so no further morsels are handed out (a worker
    /// hit an error; the others should wind down).
    pub fn stop(&self) {
        self.stopped.store(true, Ordering::Relaxed);
    }

    /// Number of morsels the slot space divides into.
    pub fn num_morsels(&self) -> usize {
        self.total.div_ceil(self.morsel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::types::DataType;

    fn groups_table() -> Table {
        Table::new(
            "groups",
            Schema::new(vec![
                Column::new("group_index", DataType::Varchar),
                Column::new("group_value", DataType::Integer),
            ]),
            vec![],
        )
    }

    fn keyed_table() -> Table {
        Table::new(
            "v",
            Schema::new(vec![
                Column::new("k", DataType::Varchar),
                Column::new("total", DataType::Integer),
            ]),
            vec![0],
        )
    }

    #[test]
    fn insert_scan_delete() {
        let mut t = groups_table();
        let id0 = t.insert(vec![Value::from("a"), Value::Integer(1)]).unwrap();
        let id1 = t.insert(vec![Value::from("b"), Value::Integer(2)]).unwrap();
        assert_eq!(t.live_rows(), 2);
        t.delete(id0).unwrap();
        assert_eq!(t.live_rows(), 1);
        let rows: Vec<_> = t.scan().collect();
        assert_eq!(rows, vec![(id1, vec![Value::from("b"), Value::Integer(2)])]);
        assert!(t.delete(id0).is_err(), "double delete must fail");
    }

    #[test]
    fn arity_and_type_checks() {
        let mut t = groups_table();
        assert!(t.insert(vec![Value::from("a")]).is_err());
        assert!(t
            .insert(vec![Value::Integer(1), Value::Integer(2)])
            .is_err());
        // Integer widening into DOUBLE columns is allowed.
        let mut t2 = Table::new(
            "d",
            Schema::new(vec![Column::new("x", DataType::Double)]),
            vec![],
        );
        t2.insert(vec![Value::Integer(3)]).unwrap();
    }

    #[test]
    fn not_null_enforced() {
        let mut t = Table::new(
            "t",
            Schema::new(vec![Column::not_null("a", DataType::Integer)]),
            vec![],
        );
        assert!(t.insert(vec![Value::Null]).is_err());
    }

    #[test]
    fn pk_uniqueness_and_lookup() {
        let mut t = keyed_table();
        t.insert(vec![Value::from("a"), Value::Integer(1)]).unwrap();
        let err = t.insert(vec![Value::from("a"), Value::Integer(9)]);
        assert!(err.is_err(), "duplicate key must fail");
        assert_eq!(t.lookup_pk(&[Value::from("a")]), Some(0));
        assert_eq!(t.lookup_pk(&[Value::from("zz")]), None);
    }

    #[test]
    fn upsert_replaces() {
        let mut t = keyed_table();
        let (_, replaced) = t.upsert(vec![Value::from("a"), Value::Integer(1)]).unwrap();
        assert!(!replaced);
        let (_, replaced) = t.upsert(vec![Value::from("a"), Value::Integer(5)]).unwrap();
        assert!(replaced);
        assert_eq!(t.live_rows(), 1);
        let row_id = t.lookup_pk(&[Value::from("a")]).unwrap();
        assert_eq!(t.row(row_id)[1], Value::Integer(5));
    }

    #[test]
    fn upsert_without_pk_fails() {
        let mut t = groups_table();
        assert!(t.upsert(vec![Value::from("a"), Value::Integer(1)]).is_err());
    }

    #[test]
    fn update_maintains_pk() {
        let mut t = keyed_table();
        let id = t.insert(vec![Value::from("a"), Value::Integer(1)]).unwrap();
        t.update(id, vec![Value::from("b"), Value::Integer(2)])
            .unwrap();
        assert_eq!(t.lookup_pk(&[Value::from("a")]), None);
        assert_eq!(t.lookup_pk(&[Value::from("b")]), Some(id));
        // Updating into an existing key must fail.
        t.insert(vec![Value::from("c"), Value::Integer(3)]).unwrap();
        assert!(t
            .update(id, vec![Value::from("c"), Value::Integer(9)])
            .is_err());
    }

    #[test]
    fn compact_renumbers_and_rebuilds() {
        let mut t = keyed_table();
        for (k, v) in [("a", 1i64), ("b", 2), ("c", 3)] {
            t.insert(vec![Value::from(k), Value::Integer(v)]).unwrap();
        }
        t.delete(1).unwrap();
        t.compact();
        assert_eq!(t.total_slots(), 2);
        assert_eq!(t.live_rows(), 2);
        let ida = t.lookup_pk(&[Value::from("a")]).unwrap();
        let idc = t.lookup_pk(&[Value::from("c")]).unwrap();
        assert_eq!(t.row(ida)[1], Value::Integer(1));
        assert_eq!(t.row(idc)[1], Value::Integer(3));
    }

    #[test]
    fn secondary_index_build_and_maintain() {
        let mut t = groups_table();
        for (k, v) in [("a", 1i64), ("b", 2), ("a", 3)] {
            t.insert(vec![Value::from(k), Value::Integer(v)]).unwrap();
        }
        t.create_secondary_index("idx_g", vec![0], false).unwrap();
        assert_eq!(t.secondary_index_names(), vec!["idx_g"]);
        assert!(t.index_memory_bytes() > 0);
        // Unique build over duplicate group keys must fail.
        let err = t.create_secondary_index("idx_unique", vec![0], true);
        assert!(err.is_err());
        assert!(t.drop_secondary_index("idx_g"));
        assert!(!t.drop_secondary_index("idx_g"));
    }

    #[test]
    fn truncate_empties() {
        let mut t = keyed_table();
        t.insert(vec![Value::from("a"), Value::Integer(1)]).unwrap();
        t.truncate();
        assert_eq!(t.live_rows(), 0);
        assert_eq!(t.lookup_pk(&[Value::from("a")]), None);
        // Re-insert after truncate works.
        t.insert(vec![Value::from("a"), Value::Integer(2)]).unwrap();
    }

    fn value_gt(col: usize, k: i64) -> VectorKernel {
        use crate::expr::BoundExpr;
        VectorKernel::compile(&BoundExpr::Binary {
            op: ivm_sql::ast::BinaryOp::Gt,
            left: Box::new(BoundExpr::Column {
                index: col,
                ty: Some(DataType::Integer),
                name: "v".into(),
            }),
            right: Box::new(BoundExpr::Literal(Value::Integer(k))),
        })
    }

    #[test]
    fn filtered_scan_skips_tombstones_and_chunks() {
        let mut t = groups_table();
        for v in 0..100i64 {
            t.insert(vec![Value::from("g"), Value::Integer(v)]).unwrap();
        }
        for v in (0..100).step_by(3) {
            t.delete(v as u64).unwrap();
        }
        let kernel = Arc::new(value_gt(1, 50));
        let mut got = Vec::new();
        for batch in t.scan_batches_filtered(16, Arc::clone(&kernel)) {
            let batch = batch.unwrap();
            for row in 0..batch.num_rows() {
                got.push(batch.value(1, row).as_integer().unwrap());
            }
        }
        let expected: Vec<i64> = (51..100).filter(|v| v % 3 != 0).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn filter_row_ids_maps_logical_to_physical() {
        let mut t = groups_table();
        for v in 0..20i64 {
            t.insert(vec![Value::from("g"), Value::Integer(v)]).unwrap();
        }
        t.delete(4).unwrap();
        t.delete(7).unwrap();
        let kernel = value_gt(1, 2);
        let ids = t.filter_row_ids(8, &kernel).unwrap();
        let expected: Vec<u64> = (3..20).filter(|&v| v != 4 && v != 7).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn equality_lookup_uses_pk() {
        let mut t = keyed_table();
        t.insert(vec![Value::from("a"), Value::Integer(1)]).unwrap();
        t.insert(vec![Value::from("b"), Value::Integer(2)]).unwrap();
        assert_eq!(
            t.equality_lookup(&[(0, Value::from("b"))]),
            Some(vec![1]),
            "PK hit"
        );
        assert_eq!(
            t.equality_lookup(&[(0, Value::from("zz"))]),
            Some(vec![]),
            "PK miss proves absence"
        );
        // Equality on a non-indexed column → no index applies.
        assert_eq!(t.equality_lookup(&[(1, Value::Integer(1))]), None);
        assert_eq!(t.equality_lookup(&[]), None);
        // Deleted keys vanish from the index.
        t.delete(1).unwrap();
        assert_eq!(t.equality_lookup(&[(0, Value::from("b"))]), Some(vec![]));
    }

    #[test]
    fn morsel_scan_concat_matches_serial() {
        let mut t = groups_table();
        for v in 0..137i64 {
            t.insert(vec![Value::from("g"), Value::Integer(v)]).unwrap();
        }
        for v in (0..137).step_by(5) {
            t.delete(v as u64).unwrap();
        }
        // Concatenating morsels (any morsel size) reproduces the serial
        // scan order, with and without a pushed predicate.
        for morsel in [1usize, 7, 16, 64, 200] {
            let cursor = MorselCursor::new(t.total_slots(), morsel);
            let mut claims = Vec::new();
            while let Some(c) = cursor.claim() {
                claims.push(c);
            }
            claims.sort_by_key(|(seq, _)| *seq);
            let mut plain = Vec::new();
            let mut filtered = Vec::new();
            let kernel = value_gt(1, 50);
            for (_, range) in claims {
                for b in t.scan_morsel(range.clone(), 4, None).unwrap() {
                    plain.extend(b.to_rows());
                }
                for b in t.scan_morsel(range, 4, Some(&kernel)).unwrap() {
                    filtered.extend(b.to_rows());
                }
            }
            let serial: Vec<Vec<Value>> = t.scan_batches(4).flat_map(|b| b.to_rows()).collect();
            assert_eq!(plain, serial, "morsel={morsel}");
            let serial_filtered: Vec<Vec<Value>> = t
                .scan_batches_filtered(4, Arc::new(value_gt(1, 50)))
                .map(|b| b.unwrap().to_rows())
                .collect::<Vec<_>>()
                .concat();
            assert_eq!(filtered, serial_filtered, "morsel={morsel}");
        }
    }

    #[test]
    fn morsel_cursor_claims_cover_slots_once() {
        let cursor = MorselCursor::new(10, 4);
        assert_eq!(cursor.num_morsels(), 3);
        let mut got = Vec::new();
        while let Some((seq, r)) = cursor.claim() {
            got.push((seq, r));
        }
        assert_eq!(got, vec![(0, 0..4), (1, 4..8), (2, 8..10)]);
        // Empty table: no morsels at all.
        let empty = MorselCursor::new(0, 4);
        assert_eq!(empty.num_morsels(), 0);
        assert!(empty.claim().is_none());
        // A stopped cursor hands out nothing further.
        let stopped = MorselCursor::new(10, 4);
        stopped.claim().unwrap();
        stopped.stop();
        assert!(stopped.claim().is_none());
    }

    #[test]
    fn add_pk_after_bulk_load() {
        let mut t = groups_table();
        for (k, v) in [("a", 1i64), ("b", 2)] {
            t.insert(vec![Value::from(k), Value::Integer(v)]).unwrap();
        }
        t.add_pk_index(vec![0]).unwrap();
        assert!(t.has_pk_index());
        assert_eq!(t.lookup_pk(&[Value::from("b")]), Some(1));
        // Duplicate data rejects the build.
        let mut t2 = groups_table();
        t2.insert(vec![Value::from("a"), Value::Integer(1)])
            .unwrap();
        t2.insert(vec![Value::from("a"), Value::Integer(2)])
            .unwrap();
        assert!(t2.add_pk_index(vec![0]).is_err());
    }
}
