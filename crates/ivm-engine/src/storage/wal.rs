//! ARIES-lite write-ahead log: logical redo records + committed-prefix
//! replay, split across size-bounded segments.
//!
//! The log is a sequence of segment files `wal.0001.log`, `wal.0002.log`,
//! … in the data directory (a legacy single `wal.log` from older layouts
//! is accepted as segment 0). Each segment is a header (`magic`, `epoch`)
//! followed by CRC-framed records:
//!
//! ```text
//! segment := MAGIC epoch:u64 record*
//! record  := len:u32 crc:u32 payload   (crc = crc32(payload))
//! ```
//!
//! Records are *logical redo*: one per row mutation or DDL action, with a
//! [`WalRecord::Commit`] marker closing each statement. There are no undo
//! records — recovery replays the longest committed prefix onto the
//! catalog restored from the last checkpoint, which is exactly the
//! in-memory engine's statement-at-a-time semantics. Group commit:
//! [`Wal::log`] only buffers (so hot DML paths never block on I/O), and
//! [`Wal::commit`] appends the marker, writes, and optionally fsyncs —
//! one durability point per statement, many records per write.
//!
//! **Rotation.** After a successful commit that leaves the active segment
//! at or past the configured size bound, the log rotates: the next
//! segment is created with the current epoch's header, fsynced, and its
//! directory entry fsynced. A failed rotation is tolerated silently — the
//! committed data is already durable in the active segment, so the log
//! simply stays on it and retries at the next commit. Replay walks the
//! segments in order and tolerates a torn tail only in the *last* one; a
//! torn frame in an earlier segment is real corruption.
//!
//! The *epoch* ties a log to the checkpoint it extends: every checkpoint
//! bumps the epoch, rewrites `catalog.meta` (atomic rename), and resets
//! the log — higher segments are removed *first* (so every crash window
//! leaves an epoch-uniform log), then segment 1 is truncated and given
//! the new epoch. Replay compares epochs and discards a log older than
//! the catalog meta — the crash window between the meta rename and the
//! log reset is thereby safe.
//!
//! **Poisoning.** Any write or fsync failure inside [`Wal::commit`] marks
//! the log poisoned: the buffered records were consumed and a torn frame
//! may sit on disk, so acknowledging any later commit would risk silent
//! loss. A poisoned log refuses further commits (and resets) with a clean
//! error; the session layer turns that into read-only degraded mode.
//! Torn tails (truncated record, checksum mismatch) end replay at the
//! last intact committed record — that is a *normal* crash artifact, not
//! an error. A record whose checksum verifies but whose payload does not
//! decode is real corruption and comes back as a clean [`EngineError`].

use std::io::{Cursor, Read, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::error::EngineError;
use crate::schema::Column;
use crate::storage::checksum::crc32;
use crate::storage::frame;
use crate::storage::io::{self, FileHandle, OpenMode};
use crate::types::DataType;
use crate::value::Value;

/// WAL file magic (and format version).
pub const WAL_MAGIC: &[u8; 8] = b"OIVMWAL1";

/// Header bytes: magic + epoch.
pub const WAL_HEADER: usize = 16;

/// Default segment size bound: rotate after the active segment reaches
/// this many bytes.
pub const DEFAULT_SEGMENT_BYTES: u64 = 16 << 20;

/// File name of the pre-segmentation single-file layout, still accepted
/// by [`Wal::replay`] as segment 0.
pub const LEGACY_WAL_FILE: &str = "wal.log";

/// Buffered bytes above which [`Wal::log`] writes through to the file
/// (without committing) so huge statements don't balloon memory.
const FLUSH_THRESHOLD: usize = 1 << 20;

/// Cap on identifier/SQL string lengths in records (decode-side sanity
/// bound against corrupt lengths).
const MAX_WAL_TEXT: u32 = 1 << 20;

const TAG_COMMIT: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_UPDATE: u8 = 4;
const TAG_TRUNCATE: u8 = 5;
const TAG_COMPACT: u8 = 6;
const TAG_CREATE_TABLE: u8 = 7;
const TAG_DROP_TABLE: u8 = 8;
const TAG_CREATE_VIEW: u8 = 9;
const TAG_DROP_VIEW: u8 = 10;
const TAG_CREATE_INDEX: u8 = 11;
const TAG_DROP_INDEX: u8 = 12;
const TAG_ADD_PK: u8 = 13;

fn corrupt(what: impl Into<String>) -> EngineError {
    EngineError::execution(format!("corrupt WAL record: {}", what.into()))
}

fn io_err(op: &str, path: &Path, e: std::io::Error) -> EngineError {
    EngineError::execution(format!("WAL I/O error ({op}, {}): {e}", path.display()))
}

/// One logical redo record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Statement boundary: everything logged since the previous marker is
    /// durable as a unit once this record reaches disk.
    Commit,
    /// Row appended to a table (slot id is implied by replay order).
    Insert {
        /// Target table.
        table: String,
        /// Full-width row values.
        row: Vec<Value>,
    },
    /// Row tombstoned by slot id.
    Delete {
        /// Target table.
        table: String,
        /// Physical slot id.
        row_id: u64,
    },
    /// Row replaced in place.
    Update {
        /// Target table.
        table: String,
        /// Physical slot id.
        row_id: u64,
        /// New full-width row values.
        row: Vec<Value>,
    },
    /// All rows deleted (keeps schema and indexes).
    Truncate {
        /// Target table.
        table: String,
    },
    /// Tombstones dropped and slots renumbered.
    Compact {
        /// Target table.
        table: String,
    },
    /// Table created.
    CreateTable {
        /// Table name.
        name: String,
        /// Column layout.
        columns: Vec<Column>,
        /// Primary-key column positions.
        primary_key: Vec<usize>,
    },
    /// Table dropped.
    DropTable {
        /// Table name.
        name: String,
    },
    /// Logical (non-materialized) view created.
    CreateView {
        /// View name.
        name: String,
        /// The view's defining query, printed as SQL.
        sql: String,
    },
    /// Logical view dropped.
    DropView {
        /// View name.
        name: String,
    },
    /// Secondary index created.
    CreateIndex {
        /// Owning table.
        table: String,
        /// Index name.
        name: String,
        /// Indexed column positions.
        columns: Vec<usize>,
        /// Uniqueness constraint.
        unique: bool,
    },
    /// Secondary index dropped.
    DropIndex {
        /// Owning table.
        table: String,
        /// Index name.
        name: String,
    },
    /// Primary-key index attached after creation (UNIQUE index on a
    /// keyless table).
    AddPk {
        /// Owning table.
        table: String,
        /// Key column positions.
        columns: Vec<usize>,
    },
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn get_str(r: &mut impl Read) -> Result<String, EngineError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)
        .map_err(|_| corrupt("truncated string length"))?;
    let len = u32::from_le_bytes(b);
    if len > MAX_WAL_TEXT {
        return Err(corrupt(format!("string length {len} exceeds cap")));
    }
    let mut bytes = vec![0u8; len as usize];
    r.read_exact(&mut bytes)
        .map_err(|_| corrupt("truncated string"))?;
    String::from_utf8(bytes).map_err(|_| corrupt("string is not UTF-8"))
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn get_u64(r: &mut impl Read) -> Result<u64, EngineError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(|_| corrupt("truncated u64"))?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn put_positions(buf: &mut Vec<u8>, cols: &[usize]) {
    buf.extend_from_slice(&(cols.len() as u32).to_le_bytes());
    for &c in cols {
        buf.extend_from_slice(&(c as u32).to_le_bytes());
    }
}

pub(crate) fn get_positions(r: &mut impl Read) -> Result<Vec<usize>, EngineError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)
        .map_err(|_| corrupt("truncated position count"))?;
    let n = u32::from_le_bytes(b);
    if n > frame::MAX_FRAME_COLS {
        return Err(corrupt(format!("position count {n} exceeds column cap")));
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        r.read_exact(&mut b)
            .map_err(|_| corrupt("truncated position"))?;
        out.push(u32::from_le_bytes(b) as usize);
    }
    Ok(out)
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Boolean => 0,
        DataType::Integer => 1,
        DataType::Double => 2,
        DataType::Varchar => 3,
        DataType::Date => 4,
    }
}

fn type_from_tag(tag: u8) -> Result<DataType, EngineError> {
    Ok(match tag {
        0 => DataType::Boolean,
        1 => DataType::Integer,
        2 => DataType::Double,
        3 => DataType::Varchar,
        4 => DataType::Date,
        other => return Err(corrupt(format!("unknown type tag {other}"))),
    })
}

/// Serialize a column list (shared with the catalog meta encoder).
pub(crate) fn put_columns(buf: &mut Vec<u8>, columns: &[Column]) {
    buf.extend_from_slice(&(columns.len() as u32).to_le_bytes());
    for c in columns {
        put_str(buf, &c.name);
        buf.push(type_tag(c.ty));
        buf.push(u8::from(c.not_null));
    }
}

/// Deserialize a column list (shared with the catalog meta decoder).
pub(crate) fn get_columns(r: &mut impl Read) -> Result<Vec<Column>, EngineError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)
        .map_err(|_| corrupt("truncated column count"))?;
    let n = u32::from_le_bytes(b);
    if n > frame::MAX_FRAME_COLS {
        return Err(corrupt(format!("column count {n} exceeds cap")));
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let name = get_str(r)?;
        let mut two = [0u8; 2];
        r.read_exact(&mut two)
            .map_err(|_| corrupt("truncated column flags"))?;
        out.push(Column {
            name,
            ty: type_from_tag(two[0])?,
            not_null: match two[1] {
                0 => false,
                1 => true,
                other => return Err(corrupt(format!("column not-null byte {other}"))),
            },
        });
    }
    Ok(out)
}

impl WalRecord {
    /// Encode this record's payload (no framing).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WalRecord::Commit => buf.push(TAG_COMMIT),
            WalRecord::Insert { table, row } => {
                buf.push(TAG_INSERT);
                put_str(buf, table);
                frame::encode_row(buf, row);
            }
            WalRecord::Delete { table, row_id } => {
                buf.push(TAG_DELETE);
                put_str(buf, table);
                put_u64(buf, *row_id);
            }
            WalRecord::Update { table, row_id, row } => {
                buf.push(TAG_UPDATE);
                put_str(buf, table);
                put_u64(buf, *row_id);
                frame::encode_row(buf, row);
            }
            WalRecord::Truncate { table } => {
                buf.push(TAG_TRUNCATE);
                put_str(buf, table);
            }
            WalRecord::Compact { table } => {
                buf.push(TAG_COMPACT);
                put_str(buf, table);
            }
            WalRecord::CreateTable {
                name,
                columns,
                primary_key,
            } => {
                buf.push(TAG_CREATE_TABLE);
                put_str(buf, name);
                put_columns(buf, columns);
                put_positions(buf, primary_key);
            }
            WalRecord::DropTable { name } => {
                buf.push(TAG_DROP_TABLE);
                put_str(buf, name);
            }
            WalRecord::CreateView { name, sql } => {
                buf.push(TAG_CREATE_VIEW);
                put_str(buf, name);
                put_str(buf, sql);
            }
            WalRecord::DropView { name } => {
                buf.push(TAG_DROP_VIEW);
                put_str(buf, name);
            }
            WalRecord::CreateIndex {
                table,
                name,
                columns,
                unique,
            } => {
                buf.push(TAG_CREATE_INDEX);
                put_str(buf, table);
                put_str(buf, name);
                put_positions(buf, columns);
                buf.push(u8::from(*unique));
            }
            WalRecord::DropIndex { table, name } => {
                buf.push(TAG_DROP_INDEX);
                put_str(buf, table);
                put_str(buf, name);
            }
            WalRecord::AddPk { table, columns } => {
                buf.push(TAG_ADD_PK);
                put_str(buf, table);
                put_positions(buf, columns);
            }
        }
    }

    /// Decode one payload produced by [`encode`](WalRecord::encode).
    /// Trailing payload bytes are corruption.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, EngineError> {
        let mut r = Cursor::new(payload);
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)
            .map_err(|_| corrupt("empty record"))?;
        let rec = match tag[0] {
            TAG_COMMIT => WalRecord::Commit,
            TAG_INSERT => WalRecord::Insert {
                table: get_str(&mut r)?,
                row: frame::decode_row(&mut r)?,
            },
            TAG_DELETE => WalRecord::Delete {
                table: get_str(&mut r)?,
                row_id: get_u64(&mut r)?,
            },
            TAG_UPDATE => WalRecord::Update {
                table: get_str(&mut r)?,
                row_id: get_u64(&mut r)?,
                row: frame::decode_row(&mut r)?,
            },
            TAG_TRUNCATE => WalRecord::Truncate {
                table: get_str(&mut r)?,
            },
            TAG_COMPACT => WalRecord::Compact {
                table: get_str(&mut r)?,
            },
            TAG_CREATE_TABLE => WalRecord::CreateTable {
                name: get_str(&mut r)?,
                columns: get_columns(&mut r)?,
                primary_key: get_positions(&mut r)?,
            },
            TAG_DROP_TABLE => WalRecord::DropTable {
                name: get_str(&mut r)?,
            },
            TAG_CREATE_VIEW => WalRecord::CreateView {
                name: get_str(&mut r)?,
                sql: get_str(&mut r)?,
            },
            TAG_DROP_VIEW => WalRecord::DropView {
                name: get_str(&mut r)?,
            },
            TAG_CREATE_INDEX => {
                let table = get_str(&mut r)?;
                let name = get_str(&mut r)?;
                let columns = get_positions(&mut r)?;
                let mut b = [0u8; 1];
                r.read_exact(&mut b)
                    .map_err(|_| corrupt("truncated unique flag"))?;
                let unique = match b[0] {
                    0 => false,
                    1 => true,
                    other => return Err(corrupt(format!("unique byte {other}"))),
                };
                WalRecord::CreateIndex {
                    table,
                    name,
                    columns,
                    unique,
                }
            }
            TAG_DROP_INDEX => WalRecord::DropIndex {
                table: get_str(&mut r)?,
                name: get_str(&mut r)?,
            },
            TAG_ADD_PK => WalRecord::AddPk {
                table: get_str(&mut r)?,
                columns: get_positions(&mut r)?,
            },
            other => return Err(corrupt(format!("unknown record tag {other}"))),
        };
        if r.position() != payload.len() as u64 {
            return Err(corrupt("trailing bytes after record payload"));
        }
        Ok(rec)
    }
}

/// Cumulative WAL counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Redo records logged (commit markers excluded).
    pub records: u64,
    /// Commit points (markers actually written; empty commits skipped).
    pub commits: u64,
    /// fsyncs issued (file and directory).
    pub syncs: u64,
    /// Bytes appended to the log since it was opened or last reset.
    pub bytes_written: u64,
    /// Transient-error I/O retries, process-wide (snapshot of
    /// [`io::retries`] at the time of the stats call).
    pub retries: u64,
    /// Segment rotations performed since open.
    pub rotations: u64,
    /// Live segment files (1 after a reset; grows with each rotation).
    pub segments: u64,
    /// Whether the log is poisoned (a commit-path write or fsync failed;
    /// the database is in read-only degraded mode).
    pub poisoned: bool,
}

#[derive(Debug)]
struct WalInner {
    file: FileHandle,
    /// Index of the active segment (1-based; 0 = legacy `wal.log`).
    seg_index: u64,
    /// Bytes in the active segment, including any appended after an
    /// errored write (approximation is fine: the log poisons on error).
    seg_size: u64,
    /// Epoch written into segment headers (set by [`Wal::reset`]).
    epoch: u64,
    /// Encoded frames not yet written to the file.
    buf: Vec<u8>,
    /// Records logged since the last commit marker.
    pending: bool,
    /// I/O error from an opportunistic mid-statement flush, surfaced at
    /// the next [`Wal::commit`].
    deferred: Option<EngineError>,
    /// Why the log refuses further commits, once a commit-path write or
    /// fsync has failed.
    poisoned: Option<String>,
    stats: WalStats,
}

impl WalInner {
    fn poison(&mut self, why: String) {
        self.buf.clear();
        self.pending = false;
        self.stats.poisoned = true;
        self.poisoned.get_or_insert(why);
    }
}

/// A write-ahead log handle over a directory of segment files. Shared as
/// `Arc<Wal>` by every table of a durable catalog; interior mutability
/// makes [`log`](Wal::log) callable from `&self` hooks deep inside row
/// mutations.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    sync_on_commit: bool,
    segment_bytes: u64,
    inner: Mutex<WalInner>,
}

/// Path of segment `index` inside `dir` (`wal.0001.log`, …; index 0 is
/// the legacy single-file name).
pub fn segment_path(dir: &Path, index: u64) -> PathBuf {
    if index == 0 {
        dir.join(LEGACY_WAL_FILE)
    } else {
        dir.join(format!("wal.{index:04}.log"))
    }
}

/// Segment files present in `dir`, as `(index, path)` sorted by index.
/// A legacy `wal.log` sorts first as index 0.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, EngineError> {
    let entries = match io::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err("list", dir, e)),
    };
    let mut segs = Vec::new();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name == LEGACY_WAL_FILE {
            segs.push((0, path));
        } else if let Some(digits) = name
            .strip_prefix("wal.")
            .and_then(|rest| rest.strip_suffix(".log"))
        {
            if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                if let Ok(idx) = digits.parse::<u64>() {
                    segs.push((idx, path));
                }
            }
        }
    }
    segs.sort_by_key(|&(idx, _)| idx);
    Ok(segs)
}

impl Wal {
    /// Open the log in `dir`, attaching to the highest existing segment
    /// (creating `wal.0001.log` if none exist). The files are not
    /// modified until [`reset`](Wal::reset) — callers replay first, then
    /// reset with a fresh epoch.
    pub fn open(
        dir: impl Into<PathBuf>,
        sync_on_commit: bool,
        segment_bytes: u64,
    ) -> Result<Wal, EngineError> {
        let dir = dir.into();
        let segs = list_segments(&dir)?;
        let (seg_index, path) = match segs.last() {
            Some((idx, path)) => (*idx, path.clone()),
            None => (1, segment_path(&dir, 1)),
        };
        let mut file =
            io::open(&path, OpenMode::ReadWrite).map_err(|e| io_err("open", &path, e))?;
        let seg_size = file.len().map_err(|e| io_err("stat", &path, e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek", &path, e))?;
        Ok(Wal {
            dir,
            sync_on_commit,
            segment_bytes,
            inner: Mutex::new(WalInner {
                file,
                seg_index,
                seg_size,
                epoch: 0,
                buf: Vec::new(),
                pending: false,
                deferred: None,
                poisoned: None,
                stats: WalStats {
                    segments: segs.len().max(1) as u64,
                    ..WalStats::default()
                },
            }),
        })
    }

    /// Discard all segments and start a fresh epoch: higher segments (and
    /// a legacy `wal.log`) are removed *first*, then segment 1 is
    /// truncated, given the new header, fsynced, and its directory entry
    /// fsynced. Called by every checkpoint after the catalog meta rename;
    /// the remove-first ordering keeps every crash window epoch-uniform.
    pub fn reset(&self, epoch: u64) -> Result<(), EngineError> {
        let mut inner = self.lock();
        if let Some(why) = &inner.poisoned {
            return Err(EngineError::execution(format!("WAL is poisoned: {why}")));
        }
        inner.buf.clear();
        inner.pending = false;
        inner.deferred = None;
        for (idx, path) in list_segments(&self.dir)?.into_iter().rev() {
            if idx != 1 {
                match io::remove_file(&path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(io_err("remove segment", &path, e)),
                }
            }
        }
        let path = segment_path(&self.dir, 1);
        let mut file =
            io::open(&path, OpenMode::ReadWrite).map_err(|e| io_err("open", &path, e))?;
        file.set_len(0).map_err(|e| io_err("truncate", &path, e))?;
        write_header(&mut file, epoch).map_err(|e| io_err("header", &path, e))?;
        file.sync_data().map_err(|e| io_err("fsync", &path, e))?;
        io::sync_dir(&self.dir).map_err(|e| io_err("fsync dir", &self.dir, e))?;
        inner.file = file;
        inner.seg_index = 1;
        inner.seg_size = WAL_HEADER as u64;
        inner.epoch = epoch;
        inner.stats.syncs += 2;
        inner.stats.bytes_written = WAL_HEADER as u64;
        inner.stats.segments = 1;
        Ok(())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WalInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether the log has refused a commit and entered the poisoned
    /// (read-only degraded) state.
    pub fn poisoned(&self) -> bool {
        self.lock().poisoned.is_some()
    }

    /// Append one framed record to the in-memory buffer. Never blocks on
    /// I/O and never fails: oversized buffers are opportunistically
    /// written through, with any I/O error deferred to the next
    /// [`commit`](Wal::commit) — the hook sites inside row mutations have
    /// no error channel. A poisoned log drops the record (the session
    /// layer rejects the owning statement before acknowledging it).
    pub fn log(&self, rec: &WalRecord) {
        let mut inner = self.lock();
        if inner.poisoned.is_some() {
            return;
        }
        let start = inner.buf.len();
        inner.buf.extend_from_slice(&[0u8; 8]); // frame placeholder
        let rec_start = inner.buf.len();
        {
            let WalInner { buf, .. } = &mut *inner;
            rec.encode(buf);
        }
        let payload_len = (inner.buf.len() - rec_start) as u32;
        let crc = crc32(&inner.buf[rec_start..]);
        inner.buf[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
        inner.buf[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
        inner.pending = true;
        if !matches!(rec, WalRecord::Commit) {
            inner.stats.records += 1;
        }
        if inner.buf.len() >= FLUSH_THRESHOLD {
            if let Err(e) = Self::write_buf(&mut inner) {
                inner.deferred.get_or_insert(e);
            }
        }
    }

    fn write_buf(inner: &mut WalInner) -> Result<(), EngineError> {
        if inner.buf.is_empty() {
            return Ok(());
        }
        let buf = std::mem::take(&mut inner.buf);
        let res = inner.file.write_all(&buf);
        inner.stats.bytes_written += buf.len() as u64;
        inner.seg_size += buf.len() as u64;
        res.map_err(|e| io_err("append", inner.file.path(), e))
    }

    /// Close the current statement: append a [`WalRecord::Commit`] marker,
    /// write everything buffered, and (when configured) fsync. A no-op
    /// when nothing was logged since the last commit. Returns whether a
    /// commit point was actually written.
    ///
    /// Any write or fsync failure here — including a deferred error from
    /// an opportunistic mid-statement flush — poisons the log: the
    /// buffered records are gone and a torn frame may be on disk, so no
    /// later commit can be safely acknowledged. After a successful commit
    /// the log rotates if the active segment reached the size bound; a
    /// failed rotation is tolerated (retried at the next commit).
    pub fn commit(&self) -> Result<bool, EngineError> {
        let mut inner = self.lock();
        if let Some(why) = &inner.poisoned {
            return Err(EngineError::execution(format!(
                "WAL is poisoned ({why}); database is in read-only degraded mode"
            )));
        }
        if let Some(e) = inner.deferred.take() {
            inner.poison(e.to_string());
            return Err(e);
        }
        if !inner.pending {
            return Ok(false);
        }
        let start = inner.buf.len();
        inner.buf.extend_from_slice(&[0u8; 8]);
        let rec_start = inner.buf.len();
        {
            let WalInner { buf, .. } = &mut *inner;
            WalRecord::Commit.encode(buf);
        }
        let payload_len = (inner.buf.len() - rec_start) as u32;
        let crc = crc32(&inner.buf[rec_start..]);
        inner.buf[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
        inner.buf[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
        if let Err(e) = Self::write_buf(&mut inner) {
            inner.poison(e.to_string());
            return Err(e);
        }
        if self.sync_on_commit {
            if let Err(e) = inner.file.sync_data() {
                let e = io_err("fsync", inner.file.path(), e);
                inner.poison(e.to_string());
                return Err(e);
            }
            inner.stats.syncs += 1;
        }
        inner.pending = false;
        inner.stats.commits += 1;
        if inner.seg_size >= self.segment_bytes {
            self.rotate(&mut inner);
        }
        Ok(true)
    }

    /// Best-effort rotation to the next segment. On any failure the log
    /// stays on the current (already durable) segment and retries after
    /// the next commit.
    fn rotate(&self, inner: &mut WalInner) {
        let next = inner.seg_index + 1;
        let path = segment_path(&self.dir, next);
        let mut file = match io::open(&path, OpenMode::Create) {
            Ok(f) => f,
            Err(_) => return,
        };
        let epoch = inner.epoch;
        if write_header(&mut file, epoch).is_err()
            || file.sync_data().is_err()
            || io::sync_dir(&self.dir).is_err()
        {
            let _ = io::remove_file(&path);
            return;
        }
        inner.file = file;
        inner.seg_index = next;
        inner.seg_size = WAL_HEADER as u64;
        inner.stats.syncs += 2;
        inner.stats.bytes_written += WAL_HEADER as u64;
        inner.stats.rotations += 1;
        inner.stats.segments += 1;
    }

    /// Cumulative counters (plus a snapshot of the process-wide
    /// transient-retry counter).
    pub fn stats(&self) -> WalStats {
        let mut stats = self.lock().stats;
        stats.retries = io::retries();
        stats
    }

    /// Replay the segmented log in `dir`: `(epoch, committed records,
    /// total file bytes)`. Returns `None` when no segment exists or the
    /// first one is too short to hold a header (a crash before the first
    /// reset completed). Segments are replayed in order; the epoch is
    /// taken from the first segment and scanning stops at the first
    /// segment whose epoch differs (stale leftovers from an interrupted
    /// reset). Torn tails end the replay at the last committed record,
    /// but are tolerated only in the final segment — a torn frame in an
    /// earlier segment is reported as corruption. A record that passes
    /// its checksum but fails to decode is always corruption.
    pub fn replay(dir: &Path) -> Result<Option<(u64, Vec<WalRecord>, u64)>, EngineError> {
        let segs = list_segments(dir)?;
        if segs.is_empty() {
            return Ok(None);
        }
        let last = segs.len() - 1;
        let mut log_epoch = None;
        let mut records = Vec::new();
        let mut committed = 0usize;
        let mut total = 0u64;
        for (i, (_, path)) in segs.iter().enumerate() {
            let bytes = match io::read(path) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(io_err("read", path, e)),
            };
            total += bytes.len() as u64;
            if bytes.len() < WAL_HEADER {
                if log_epoch.is_none() {
                    // Crash before the first reset finished writing the
                    // first header: nothing to replay.
                    return Ok(None);
                }
                if i < last {
                    return Err(corrupt(format!(
                        "segment {} is shorter than its header",
                        path.display()
                    )));
                }
                break;
            }
            if &bytes[..8] != WAL_MAGIC {
                return Err(corrupt(format!("bad WAL magic in {}", path.display())));
            }
            let epoch = u64::from_le_bytes(bytes[8..16].try_into().expect("sliced 8 bytes"));
            match log_epoch {
                None => log_epoch = Some(epoch),
                Some(e) if e != epoch => break,
                Some(_) => {}
            }
            let mut off = WAL_HEADER;
            while bytes.len() - off >= 8 {
                let len =
                    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("sliced 4 bytes"))
                        as usize;
                let crc =
                    u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("sliced 4 bytes"));
                let torn = match bytes.get(off + 8..off + 8 + len) {
                    None => true, // record extends past EOF
                    Some(payload) if crc32(payload) != crc => true,
                    Some(payload) => {
                        let rec = WalRecord::decode(payload)?;
                        off += 8 + len;
                        if matches!(rec, WalRecord::Commit) {
                            committed = records.len();
                        } else {
                            records.push(rec);
                        }
                        false
                    }
                };
                if torn {
                    if i < last {
                        return Err(corrupt(format!(
                            "torn frame in non-final segment {}",
                            path.display()
                        )));
                    }
                    break;
                }
            }
            if i < last && bytes.len() - off != 0 && bytes.len() - off < 8 {
                return Err(corrupt(format!(
                    "torn frame in non-final segment {}",
                    path.display()
                )));
            }
        }
        let Some(epoch) = log_epoch else {
            return Ok(None);
        };
        records.truncate(committed);
        Ok(Some((epoch, records, total)))
    }
}

/// Seek to 0 and write the `magic + epoch` header.
fn write_header(file: &mut FileHandle, epoch: u64) -> std::io::Result<()> {
    file.seek(SeekFrom::Start(0))?;
    file.write_all(WAL_MAGIC)?;
    file.write_all(&epoch.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::io::{set_fault_plan, FaultKind, FaultPlan, Trigger};
    use std::sync::Arc;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("openivm-waltest-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                name: "t".into(),
                columns: vec![
                    Column::not_null("k", DataType::Varchar),
                    Column::new("v", DataType::Integer),
                ],
                primary_key: vec![0],
            },
            WalRecord::Insert {
                table: "t".into(),
                row: vec![Value::from("a"), Value::Integer(1)],
            },
            WalRecord::Update {
                table: "t".into(),
                row_id: 0,
                row: vec![Value::from("a"), Value::Integer(2)],
            },
            WalRecord::Delete {
                table: "t".into(),
                row_id: 0,
            },
            WalRecord::Truncate { table: "t".into() },
            WalRecord::Compact { table: "t".into() },
            WalRecord::CreateIndex {
                table: "t".into(),
                name: "ix".into(),
                columns: vec![1],
                unique: false,
            },
            WalRecord::DropIndex {
                table: "t".into(),
                name: "ix".into(),
            },
            WalRecord::AddPk {
                table: "t".into(),
                columns: vec![0],
            },
            WalRecord::CreateView {
                name: "v".into(),
                sql: "SELECT k FROM t".into(),
            },
            WalRecord::DropView { name: "v".into() },
            WalRecord::DropTable { name: "t".into() },
        ]
    }

    #[test]
    fn every_record_roundtrips() {
        for rec in sample_records() {
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            assert_eq!(WalRecord::decode(&buf).unwrap(), rec, "{rec:?}");
            // Every strict prefix is a clean error, never a panic.
            for cut in 0..buf.len() {
                assert!(WalRecord::decode(&buf[..cut]).is_err(), "{rec:?} cut {cut}");
            }
            // Trailing garbage is rejected too.
            buf.push(0);
            assert!(WalRecord::decode(&buf).is_err());
        }
    }

    #[test]
    fn log_commit_replay() {
        let dir = temp_dir("basic");
        let wal = Wal::open(&dir, true, DEFAULT_SEGMENT_BYTES).unwrap();
        wal.reset(3).unwrap();
        let recs = sample_records();
        for r in &recs[..4] {
            wal.log(r);
        }
        assert!(wal.commit().unwrap());
        assert!(!wal.commit().unwrap(), "empty commit is skipped");
        for r in &recs[4..] {
            wal.log(r);
        }
        assert!(wal.commit().unwrap());
        let (epoch, replayed, bytes) = Wal::replay(&dir).unwrap().unwrap();
        assert_eq!(epoch, 3);
        assert_eq!(replayed, recs);
        assert!(bytes > WAL_HEADER as u64);
        let stats = wal.stats();
        assert_eq!(stats.records, recs.len() as u64);
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.segments, 1);
        assert_eq!(stats.rotations, 0);
        assert!(!stats.poisoned);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn uncommitted_tail_is_discarded() {
        let dir = temp_dir("uncommitted");
        let wal = Wal::open(&dir, false, DEFAULT_SEGMENT_BYTES).unwrap();
        wal.reset(0).unwrap();
        wal.log(&WalRecord::Truncate { table: "a".into() });
        wal.commit().unwrap();
        // Logged but never committed: must not replay. Force the bytes to
        // disk without a commit marker via the internal write path.
        wal.log(&WalRecord::Truncate { table: "b".into() });
        {
            let mut inner = wal.lock();
            Wal::write_buf(&mut inner).unwrap();
        }
        let (_, replayed, _) = Wal::replay(&dir).unwrap().unwrap();
        assert_eq!(replayed, vec![WalRecord::Truncate { table: "a".into() }]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_tail_recovers_committed_prefix_at_every_cut() {
        let dir = temp_dir("torn");
        let wal = Wal::open(&dir, false, DEFAULT_SEGMENT_BYTES).unwrap();
        wal.reset(1).unwrap();
        let recs = sample_records();
        // One commit per record → the committed prefix grows record by
        // record and every cut point must recover some exact prefix.
        for r in &recs {
            wal.log(r);
            wal.commit().unwrap();
        }
        let seg = segment_path(&dir, 1);
        let full = std::fs::read(&seg).unwrap();
        let mut prev_len = 0usize;
        for cut in 0..=full.len() {
            std::fs::write(&seg, &full[..cut]).unwrap();
            match Wal::replay(&dir).unwrap() {
                None => assert!(cut < WAL_HEADER, "header cut {cut}"),
                Some((epoch, replayed, _)) => {
                    assert_eq!(epoch, 1);
                    assert_eq!(replayed, recs[..replayed.len()], "cut {cut}");
                    assert!(replayed.len() >= prev_len, "prefix must be monotone");
                    prev_len = replayed.len();
                }
            }
        }
        assert_eq!(prev_len, recs.len());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn valid_crc_bad_payload_is_real_corruption() {
        let dir = temp_dir("corrupt");
        let wal = Wal::open(&dir, false, DEFAULT_SEGMENT_BYTES).unwrap();
        wal.reset(0).unwrap();
        drop(wal);
        // Hand-craft a record with a correct checksum over garbage.
        let seg = segment_path(&dir, 1);
        let payload = [0xEEu8, 1, 2, 3];
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(&seg, &bytes).unwrap();
        let err = Wal::replay(&dir).unwrap_err();
        assert!(err.to_string().contains("unknown record tag"), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn reset_discards_history_and_bumps_epoch() {
        let dir = temp_dir("reset");
        let wal = Wal::open(&dir, false, DEFAULT_SEGMENT_BYTES).unwrap();
        wal.reset(0).unwrap();
        wal.log(&WalRecord::Truncate { table: "x".into() });
        wal.commit().unwrap();
        wal.reset(1).unwrap();
        let (epoch, replayed, _) = Wal::replay(&dir).unwrap().unwrap();
        assert_eq!(epoch, 1);
        assert!(replayed.is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rotation_bounds_segments_and_reset_recycles_them() {
        let dir = temp_dir("rotate");
        // Tiny bound: every commit rotates once past the header.
        let wal = Wal::open(&dir, false, 64).unwrap();
        wal.reset(7).unwrap();
        let recs = sample_records();
        for r in &recs {
            wal.log(r);
            wal.commit().unwrap();
        }
        let stats = wal.stats();
        assert!(stats.rotations >= 2, "expected rotations, got {stats:?}");
        assert_eq!(stats.segments, stats.rotations + 1);
        let on_disk = list_segments(&dir).unwrap();
        assert_eq!(on_disk.len() as u64, stats.segments);
        for (_, path) in &on_disk {
            assert!(
                std::fs::metadata(path).unwrap().len() <= 64 + 512,
                "segment {} exceeds bound by more than one commit",
                path.display()
            );
        }
        // Replay concatenates the segments in order.
        let (epoch, replayed, _) = Wal::replay(&dir).unwrap().unwrap();
        assert_eq!(epoch, 7);
        assert_eq!(replayed, recs);
        // A checkpoint-driven reset recycles every segment but the first.
        wal.reset(8).unwrap();
        let on_disk = list_segments(&dir).unwrap();
        assert_eq!(on_disk.len(), 1);
        assert_eq!(on_disk[0].1, segment_path(&dir, 1));
        assert_eq!(wal.stats().segments, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_frame_in_non_final_segment_is_corruption() {
        let dir = temp_dir("torn-mid");
        let wal = Wal::open(&dir, false, 64).unwrap();
        wal.reset(1).unwrap();
        for r in &sample_records() {
            wal.log(r);
            wal.commit().unwrap();
        }
        assert!(wal.stats().segments >= 2);
        drop(wal);
        // Truncate the FIRST segment mid-frame: with later segments
        // present this cannot be a crash tail, so replay must refuse.
        let seg1 = segment_path(&dir, 1);
        let bytes = std::fs::read(&seg1).unwrap();
        std::fs::write(&seg1, &bytes[..bytes.len() - 3]).unwrap();
        let err = Wal::replay(&dir).unwrap_err();
        assert!(err.to_string().contains("non-final segment"), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn legacy_single_file_layout_replays_as_segment_zero() {
        let dir = temp_dir("legacy");
        let wal = Wal::open(&dir, false, DEFAULT_SEGMENT_BYTES).unwrap();
        wal.reset(5).unwrap();
        wal.log(&WalRecord::Truncate { table: "t".into() });
        wal.commit().unwrap();
        drop(wal);
        // Rebuild the pre-segmentation layout: one `wal.log`.
        std::fs::rename(segment_path(&dir, 1), dir.join(LEGACY_WAL_FILE)).unwrap();
        let (epoch, replayed, _) = Wal::replay(&dir).unwrap().unwrap();
        assert_eq!(epoch, 5);
        assert_eq!(replayed, vec![WalRecord::Truncate { table: "t".into() }]);
        // A reset from the segmented layout removes the legacy file.
        let wal = Wal::open(&dir, false, DEFAULT_SEGMENT_BYTES).unwrap();
        wal.reset(6).unwrap();
        assert!(!dir.join(LEGACY_WAL_FILE).exists());
        assert!(segment_path(&dir, 1).exists());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fsync_failure_poisons_the_log() {
        let _serial = io::test_plan_serial();
        let dir = temp_dir("poison");
        let wal = Wal::open(&dir, true, DEFAULT_SEGMENT_BYTES).unwrap();
        wal.reset(1).unwrap();
        wal.log(&WalRecord::Truncate { table: "t".into() });
        wal.commit().unwrap();
        wal.log(&WalRecord::Truncate { table: "u".into() });
        let prev = set_fault_plan(Some(Arc::new(FaultPlan::new().with_rule(
            FaultKind::FsyncFail,
            "openivm-waltest",
            Trigger::Once(1),
        ))));
        let err = wal.commit().unwrap_err();
        set_fault_plan(prev);
        assert!(err.to_string().contains("fsync"), "{err}");
        assert!(wal.poisoned());
        assert!(wal.stats().poisoned);
        // Further commits fail cleanly, log() is a harmless no-op, and
        // reset (a checkpoint) refuses too.
        wal.log(&WalRecord::Truncate { table: "v".into() });
        let err = wal.commit().unwrap_err();
        assert!(err.to_string().contains("read-only"), "{err}");
        assert!(wal.reset(2).is_err());
        // No acknowledged-commit loss: the acknowledged "t" commit must
        // replay. The unacknowledged "u" frame reached the file but was
        // never fsynced — whether it survives is exactly the uncertainty
        // poisoning exists to stop acknowledging, so either way is safe.
        let (_, replayed, _) = Wal::replay(&dir).unwrap().unwrap();
        assert!(!replayed.is_empty());
        assert_eq!(replayed[0], WalRecord::Truncate { table: "t".into() });
        let _ = std::fs::remove_dir_all(dir);
    }
}
