//! ARIES-lite write-ahead log: logical redo records + committed-prefix
//! replay.
//!
//! The log is a header (`magic`, `epoch`) followed by CRC-framed records:
//!
//! ```text
//! file   := MAGIC epoch:u64 record*
//! record := len:u32 crc:u32 payload   (crc = crc32(payload))
//! ```
//!
//! Records are *logical redo*: one per row mutation or DDL action, with a
//! [`WalRecord::Commit`] marker closing each statement. There are no undo
//! records — recovery replays the longest committed prefix onto the
//! catalog restored from the last checkpoint, which is exactly the
//! in-memory engine's statement-at-a-time semantics. Group commit:
//! [`Wal::log`] only buffers (so hot DML paths never block on I/O), and
//! [`Wal::commit`] appends the marker, writes, and optionally fsyncs —
//! one durability point per statement, many records per write.
//!
//! The *epoch* ties a log to the checkpoint it extends: every checkpoint
//! bumps the epoch, rewrites `catalog.meta` (atomic rename), and resets
//! the log with the new epoch in its header. Replay compares epochs and
//! discards a log older than the catalog meta — the crash window between
//! the meta rename and the log reset is thereby safe.
//!
//! Torn tails (truncated record, checksum mismatch) end replay at the
//! last intact committed record — that is a *normal* crash artifact, not
//! an error. A record whose checksum verifies but whose payload does not
//! decode is real corruption and comes back as a clean [`EngineError`].

use std::fs::{File, OpenOptions};
use std::io::{Cursor, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::error::EngineError;
use crate::schema::Column;
use crate::storage::checksum::crc32;
use crate::storage::frame;
use crate::types::DataType;
use crate::value::Value;

/// WAL file magic (and format version).
pub const WAL_MAGIC: &[u8; 8] = b"OIVMWAL1";

/// Header bytes: magic + epoch.
pub const WAL_HEADER: usize = 16;

/// Buffered bytes above which [`Wal::log`] writes through to the file
/// (without committing) so huge statements don't balloon memory.
const FLUSH_THRESHOLD: usize = 1 << 20;

/// Cap on identifier/SQL string lengths in records (decode-side sanity
/// bound against corrupt lengths).
const MAX_WAL_TEXT: u32 = 1 << 20;

const TAG_COMMIT: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_UPDATE: u8 = 4;
const TAG_TRUNCATE: u8 = 5;
const TAG_COMPACT: u8 = 6;
const TAG_CREATE_TABLE: u8 = 7;
const TAG_DROP_TABLE: u8 = 8;
const TAG_CREATE_VIEW: u8 = 9;
const TAG_DROP_VIEW: u8 = 10;
const TAG_CREATE_INDEX: u8 = 11;
const TAG_DROP_INDEX: u8 = 12;
const TAG_ADD_PK: u8 = 13;

fn corrupt(what: impl Into<String>) -> EngineError {
    EngineError::execution(format!("corrupt WAL record: {}", what.into()))
}

fn io_err(op: &str, path: &Path, e: std::io::Error) -> EngineError {
    EngineError::execution(format!("WAL I/O error ({op}, {}): {e}", path.display()))
}

/// One logical redo record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Statement boundary: everything logged since the previous marker is
    /// durable as a unit once this record reaches disk.
    Commit,
    /// Row appended to a table (slot id is implied by replay order).
    Insert {
        /// Target table.
        table: String,
        /// Full-width row values.
        row: Vec<Value>,
    },
    /// Row tombstoned by slot id.
    Delete {
        /// Target table.
        table: String,
        /// Physical slot id.
        row_id: u64,
    },
    /// Row replaced in place.
    Update {
        /// Target table.
        table: String,
        /// Physical slot id.
        row_id: u64,
        /// New full-width row values.
        row: Vec<Value>,
    },
    /// All rows deleted (keeps schema and indexes).
    Truncate {
        /// Target table.
        table: String,
    },
    /// Tombstones dropped and slots renumbered.
    Compact {
        /// Target table.
        table: String,
    },
    /// Table created.
    CreateTable {
        /// Table name.
        name: String,
        /// Column layout.
        columns: Vec<Column>,
        /// Primary-key column positions.
        primary_key: Vec<usize>,
    },
    /// Table dropped.
    DropTable {
        /// Table name.
        name: String,
    },
    /// Logical (non-materialized) view created.
    CreateView {
        /// View name.
        name: String,
        /// The view's defining query, printed as SQL.
        sql: String,
    },
    /// Logical view dropped.
    DropView {
        /// View name.
        name: String,
    },
    /// Secondary index created.
    CreateIndex {
        /// Owning table.
        table: String,
        /// Index name.
        name: String,
        /// Indexed column positions.
        columns: Vec<usize>,
        /// Uniqueness constraint.
        unique: bool,
    },
    /// Secondary index dropped.
    DropIndex {
        /// Owning table.
        table: String,
        /// Index name.
        name: String,
    },
    /// Primary-key index attached after creation (UNIQUE index on a
    /// keyless table).
    AddPk {
        /// Owning table.
        table: String,
        /// Key column positions.
        columns: Vec<usize>,
    },
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn get_str(r: &mut impl Read) -> Result<String, EngineError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)
        .map_err(|_| corrupt("truncated string length"))?;
    let len = u32::from_le_bytes(b);
    if len > MAX_WAL_TEXT {
        return Err(corrupt(format!("string length {len} exceeds cap")));
    }
    let mut bytes = vec![0u8; len as usize];
    r.read_exact(&mut bytes)
        .map_err(|_| corrupt("truncated string"))?;
    String::from_utf8(bytes).map_err(|_| corrupt("string is not UTF-8"))
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn get_u64(r: &mut impl Read) -> Result<u64, EngineError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(|_| corrupt("truncated u64"))?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn put_positions(buf: &mut Vec<u8>, cols: &[usize]) {
    buf.extend_from_slice(&(cols.len() as u32).to_le_bytes());
    for &c in cols {
        buf.extend_from_slice(&(c as u32).to_le_bytes());
    }
}

pub(crate) fn get_positions(r: &mut impl Read) -> Result<Vec<usize>, EngineError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)
        .map_err(|_| corrupt("truncated position count"))?;
    let n = u32::from_le_bytes(b);
    if n > frame::MAX_FRAME_COLS {
        return Err(corrupt(format!("position count {n} exceeds column cap")));
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        r.read_exact(&mut b)
            .map_err(|_| corrupt("truncated position"))?;
        out.push(u32::from_le_bytes(b) as usize);
    }
    Ok(out)
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Boolean => 0,
        DataType::Integer => 1,
        DataType::Double => 2,
        DataType::Varchar => 3,
        DataType::Date => 4,
    }
}

fn type_from_tag(tag: u8) -> Result<DataType, EngineError> {
    Ok(match tag {
        0 => DataType::Boolean,
        1 => DataType::Integer,
        2 => DataType::Double,
        3 => DataType::Varchar,
        4 => DataType::Date,
        other => return Err(corrupt(format!("unknown type tag {other}"))),
    })
}

/// Serialize a column list (shared with the catalog meta encoder).
pub(crate) fn put_columns(buf: &mut Vec<u8>, columns: &[Column]) {
    buf.extend_from_slice(&(columns.len() as u32).to_le_bytes());
    for c in columns {
        put_str(buf, &c.name);
        buf.push(type_tag(c.ty));
        buf.push(u8::from(c.not_null));
    }
}

/// Deserialize a column list (shared with the catalog meta decoder).
pub(crate) fn get_columns(r: &mut impl Read) -> Result<Vec<Column>, EngineError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)
        .map_err(|_| corrupt("truncated column count"))?;
    let n = u32::from_le_bytes(b);
    if n > frame::MAX_FRAME_COLS {
        return Err(corrupt(format!("column count {n} exceeds cap")));
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let name = get_str(r)?;
        let mut two = [0u8; 2];
        r.read_exact(&mut two)
            .map_err(|_| corrupt("truncated column flags"))?;
        out.push(Column {
            name,
            ty: type_from_tag(two[0])?,
            not_null: match two[1] {
                0 => false,
                1 => true,
                other => return Err(corrupt(format!("column not-null byte {other}"))),
            },
        });
    }
    Ok(out)
}

impl WalRecord {
    /// Encode this record's payload (no framing).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WalRecord::Commit => buf.push(TAG_COMMIT),
            WalRecord::Insert { table, row } => {
                buf.push(TAG_INSERT);
                put_str(buf, table);
                frame::encode_row(buf, row);
            }
            WalRecord::Delete { table, row_id } => {
                buf.push(TAG_DELETE);
                put_str(buf, table);
                put_u64(buf, *row_id);
            }
            WalRecord::Update { table, row_id, row } => {
                buf.push(TAG_UPDATE);
                put_str(buf, table);
                put_u64(buf, *row_id);
                frame::encode_row(buf, row);
            }
            WalRecord::Truncate { table } => {
                buf.push(TAG_TRUNCATE);
                put_str(buf, table);
            }
            WalRecord::Compact { table } => {
                buf.push(TAG_COMPACT);
                put_str(buf, table);
            }
            WalRecord::CreateTable {
                name,
                columns,
                primary_key,
            } => {
                buf.push(TAG_CREATE_TABLE);
                put_str(buf, name);
                put_columns(buf, columns);
                put_positions(buf, primary_key);
            }
            WalRecord::DropTable { name } => {
                buf.push(TAG_DROP_TABLE);
                put_str(buf, name);
            }
            WalRecord::CreateView { name, sql } => {
                buf.push(TAG_CREATE_VIEW);
                put_str(buf, name);
                put_str(buf, sql);
            }
            WalRecord::DropView { name } => {
                buf.push(TAG_DROP_VIEW);
                put_str(buf, name);
            }
            WalRecord::CreateIndex {
                table,
                name,
                columns,
                unique,
            } => {
                buf.push(TAG_CREATE_INDEX);
                put_str(buf, table);
                put_str(buf, name);
                put_positions(buf, columns);
                buf.push(u8::from(*unique));
            }
            WalRecord::DropIndex { table, name } => {
                buf.push(TAG_DROP_INDEX);
                put_str(buf, table);
                put_str(buf, name);
            }
            WalRecord::AddPk { table, columns } => {
                buf.push(TAG_ADD_PK);
                put_str(buf, table);
                put_positions(buf, columns);
            }
        }
    }

    /// Decode one payload produced by [`encode`](WalRecord::encode).
    /// Trailing payload bytes are corruption.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, EngineError> {
        let mut r = Cursor::new(payload);
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)
            .map_err(|_| corrupt("empty record"))?;
        let rec = match tag[0] {
            TAG_COMMIT => WalRecord::Commit,
            TAG_INSERT => WalRecord::Insert {
                table: get_str(&mut r)?,
                row: frame::decode_row(&mut r)?,
            },
            TAG_DELETE => WalRecord::Delete {
                table: get_str(&mut r)?,
                row_id: get_u64(&mut r)?,
            },
            TAG_UPDATE => WalRecord::Update {
                table: get_str(&mut r)?,
                row_id: get_u64(&mut r)?,
                row: frame::decode_row(&mut r)?,
            },
            TAG_TRUNCATE => WalRecord::Truncate {
                table: get_str(&mut r)?,
            },
            TAG_COMPACT => WalRecord::Compact {
                table: get_str(&mut r)?,
            },
            TAG_CREATE_TABLE => WalRecord::CreateTable {
                name: get_str(&mut r)?,
                columns: get_columns(&mut r)?,
                primary_key: get_positions(&mut r)?,
            },
            TAG_DROP_TABLE => WalRecord::DropTable {
                name: get_str(&mut r)?,
            },
            TAG_CREATE_VIEW => WalRecord::CreateView {
                name: get_str(&mut r)?,
                sql: get_str(&mut r)?,
            },
            TAG_DROP_VIEW => WalRecord::DropView {
                name: get_str(&mut r)?,
            },
            TAG_CREATE_INDEX => {
                let table = get_str(&mut r)?;
                let name = get_str(&mut r)?;
                let columns = get_positions(&mut r)?;
                let mut b = [0u8; 1];
                r.read_exact(&mut b)
                    .map_err(|_| corrupt("truncated unique flag"))?;
                let unique = match b[0] {
                    0 => false,
                    1 => true,
                    other => return Err(corrupt(format!("unique byte {other}"))),
                };
                WalRecord::CreateIndex {
                    table,
                    name,
                    columns,
                    unique,
                }
            }
            TAG_DROP_INDEX => WalRecord::DropIndex {
                table: get_str(&mut r)?,
                name: get_str(&mut r)?,
            },
            TAG_ADD_PK => WalRecord::AddPk {
                table: get_str(&mut r)?,
                columns: get_positions(&mut r)?,
            },
            other => return Err(corrupt(format!("unknown record tag {other}"))),
        };
        if r.position() != payload.len() as u64 {
            return Err(corrupt("trailing bytes after record payload"));
        }
        Ok(rec)
    }
}

/// Cumulative WAL counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Redo records logged (commit markers excluded).
    pub records: u64,
    /// Commit points (markers actually written; empty commits skipped).
    pub commits: u64,
    /// fsyncs issued.
    pub syncs: u64,
    /// Bytes appended to the log since it was opened or last reset.
    pub bytes_written: u64,
}

#[derive(Debug)]
struct WalInner {
    file: File,
    /// Encoded frames not yet written to the file.
    buf: Vec<u8>,
    /// Records logged since the last commit marker.
    pending: bool,
    /// I/O error from an opportunistic mid-statement flush, surfaced at
    /// the next [`Wal::commit`].
    deferred: Option<EngineError>,
    stats: WalStats,
}

/// A write-ahead log handle. Shared as `Arc<Wal>` by every table of a
/// durable catalog; interior mutability makes [`log`](Wal::log)
/// callable from `&self` hooks deep inside row mutations.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    sync_on_commit: bool,
    inner: Mutex<WalInner>,
}

impl Wal {
    /// Open (creating if missing) the log at `path` for appending. The
    /// file is not touched until [`reset`](Wal::reset) — callers replay
    /// first, then reset with a fresh epoch.
    pub fn open(path: impl Into<PathBuf>, sync_on_commit: bool) -> Result<Wal, EngineError> {
        let path = path.into();
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open", &path, e))?;
        Ok(Wal {
            path,
            sync_on_commit,
            inner: Mutex::new(WalInner {
                file,
                buf: Vec::new(),
                pending: false,
                deferred: None,
                stats: WalStats::default(),
            }),
        })
    }

    /// Truncate the log and write a fresh `epoch` header (fsynced). Called
    /// by every checkpoint after the catalog meta rename.
    pub fn reset(&self, epoch: u64) -> Result<(), EngineError> {
        let mut inner = self.lock();
        inner.buf.clear();
        inner.pending = false;
        inner.deferred = None;
        inner
            .file
            .set_len(0)
            .map_err(|e| io_err("truncate", &self.path, e))?;
        inner
            .file
            .seek_write_header(epoch)
            .map_err(|e| io_err("header", &self.path, e))?;
        inner
            .file
            .sync_data()
            .map_err(|e| io_err("fsync", &self.path, e))?;
        inner.stats.syncs += 1;
        inner.stats.bytes_written = WAL_HEADER as u64;
        Ok(())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WalInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Append one framed record to the in-memory buffer. Never blocks on
    /// I/O and never fails: oversized buffers are opportunistically
    /// written through, with any I/O error deferred to the next
    /// [`commit`](Wal::commit) — the hook sites inside row mutations have
    /// no error channel.
    pub fn log(&self, rec: &WalRecord) {
        let mut inner = self.lock();
        let start = inner.buf.len();
        inner.buf.extend_from_slice(&[0u8; 8]); // frame placeholder
        let rec_start = inner.buf.len();
        {
            let WalInner { buf, .. } = &mut *inner;
            rec.encode(buf);
        }
        let payload_len = (inner.buf.len() - rec_start) as u32;
        let crc = crc32(&inner.buf[rec_start..]);
        inner.buf[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
        inner.buf[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
        inner.pending = true;
        if !matches!(rec, WalRecord::Commit) {
            inner.stats.records += 1;
        }
        if inner.buf.len() >= FLUSH_THRESHOLD {
            if let Err(e) = Self::write_buf(&mut inner, &self.path) {
                inner.deferred.get_or_insert(e);
            }
        }
    }

    fn write_buf(inner: &mut WalInner, path: &Path) -> Result<(), EngineError> {
        if inner.buf.is_empty() {
            return Ok(());
        }
        let buf = std::mem::take(&mut inner.buf);
        let res = inner
            .file
            .write_all(&buf)
            .map_err(|e| io_err("append", path, e));
        inner.stats.bytes_written += buf.len() as u64;
        res
    }

    /// Close the current statement: append a [`WalRecord::Commit`] marker,
    /// write everything buffered, and (when configured) fsync. A no-op
    /// when nothing was logged since the last commit. Returns whether a
    /// commit point was actually written.
    pub fn commit(&self) -> Result<bool, EngineError> {
        let mut inner = self.lock();
        if let Some(e) = inner.deferred.take() {
            return Err(e);
        }
        if !inner.pending {
            return Ok(false);
        }
        let start = inner.buf.len();
        inner.buf.extend_from_slice(&[0u8; 8]);
        let rec_start = inner.buf.len();
        {
            let WalInner { buf, .. } = &mut *inner;
            WalRecord::Commit.encode(buf);
        }
        let payload_len = (inner.buf.len() - rec_start) as u32;
        let crc = crc32(&inner.buf[rec_start..]);
        inner.buf[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
        inner.buf[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
        Self::write_buf(&mut inner, &self.path)?;
        if self.sync_on_commit {
            inner
                .file
                .sync_data()
                .map_err(|e| io_err("fsync", &self.path, e))?;
            inner.stats.syncs += 1;
        }
        inner.pending = false;
        inner.stats.commits += 1;
        Ok(true)
    }

    /// Cumulative counters.
    pub fn stats(&self) -> WalStats {
        self.lock().stats
    }

    /// Replay the log at `path`: `(epoch, committed records, file bytes)`.
    /// Returns `None` when the file is missing or too short to hold a
    /// header (a crash before the first reset completed). Torn tails end
    /// the replay at the last committed record; a record that passes its
    /// checksum but fails to decode is reported as corruption.
    pub fn replay(path: &Path) -> Result<Option<(u64, Vec<WalRecord>, u64)>, EngineError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err("read", path, e)),
        };
        let total = bytes.len() as u64;
        if bytes.len() < WAL_HEADER {
            return Ok(None);
        }
        if &bytes[..8] != WAL_MAGIC {
            return Err(corrupt("bad WAL magic"));
        }
        let epoch = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let mut records = Vec::new();
        let mut committed = 0usize;
        let mut off = WAL_HEADER;
        while bytes.len() - off >= 8 {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
            let Some(payload) = bytes.get(off + 8..off + 8 + len) else {
                break; // torn tail: record extends past EOF
            };
            if crc32(payload) != crc {
                break; // torn tail: partially written record
            }
            let rec = WalRecord::decode(payload)?;
            off += 8 + len;
            if matches!(rec, WalRecord::Commit) {
                committed = records.len();
            } else {
                records.push(rec);
            }
        }
        records.truncate(committed);
        Ok(Some((epoch, records, total)))
    }
}

/// Tiny extension so `reset` reads naturally: seek to 0 and write the
/// header in one call.
trait HeaderWrite {
    fn seek_write_header(&mut self, epoch: u64) -> std::io::Result<()>;
}

impl HeaderWrite for File {
    fn seek_write_header(&mut self, epoch: u64) -> std::io::Result<()> {
        use std::io::Seek;
        self.seek(std::io::SeekFrom::Start(0))?;
        self.write_all(WAL_MAGIC)?;
        self.write_all(&epoch.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "openivm-wal-test-{}-{name}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                name: "t".into(),
                columns: vec![
                    Column::not_null("k", DataType::Varchar),
                    Column::new("v", DataType::Integer),
                ],
                primary_key: vec![0],
            },
            WalRecord::Insert {
                table: "t".into(),
                row: vec![Value::from("a"), Value::Integer(1)],
            },
            WalRecord::Update {
                table: "t".into(),
                row_id: 0,
                row: vec![Value::from("a"), Value::Integer(2)],
            },
            WalRecord::Delete {
                table: "t".into(),
                row_id: 0,
            },
            WalRecord::Truncate { table: "t".into() },
            WalRecord::Compact { table: "t".into() },
            WalRecord::CreateIndex {
                table: "t".into(),
                name: "ix".into(),
                columns: vec![1],
                unique: false,
            },
            WalRecord::DropIndex {
                table: "t".into(),
                name: "ix".into(),
            },
            WalRecord::AddPk {
                table: "t".into(),
                columns: vec![0],
            },
            WalRecord::CreateView {
                name: "v".into(),
                sql: "SELECT k FROM t".into(),
            },
            WalRecord::DropView { name: "v".into() },
            WalRecord::DropTable { name: "t".into() },
        ]
    }

    #[test]
    fn every_record_roundtrips() {
        for rec in sample_records() {
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            assert_eq!(WalRecord::decode(&buf).unwrap(), rec, "{rec:?}");
            // Every strict prefix is a clean error, never a panic.
            for cut in 0..buf.len() {
                assert!(WalRecord::decode(&buf[..cut]).is_err(), "{rec:?} cut {cut}");
            }
            // Trailing garbage is rejected too.
            buf.push(0);
            assert!(WalRecord::decode(&buf).is_err());
        }
    }

    #[test]
    fn log_commit_replay() {
        let path = temp_wal("basic");
        let wal = Wal::open(&path, true).unwrap();
        wal.reset(3).unwrap();
        let recs = sample_records();
        for r in &recs[..4] {
            wal.log(r);
        }
        assert!(wal.commit().unwrap());
        assert!(!wal.commit().unwrap(), "empty commit is skipped");
        for r in &recs[4..] {
            wal.log(r);
        }
        assert!(wal.commit().unwrap());
        let (epoch, replayed, bytes) = Wal::replay(&path).unwrap().unwrap();
        assert_eq!(epoch, 3);
        assert_eq!(replayed, recs);
        assert!(bytes > WAL_HEADER as u64);
        let stats = wal.stats();
        assert_eq!(stats.records, recs.len() as u64);
        assert_eq!(stats.commits, 2);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn uncommitted_tail_is_discarded() {
        let path = temp_wal("uncommitted");
        let wal = Wal::open(&path, false).unwrap();
        wal.reset(0).unwrap();
        wal.log(&WalRecord::Truncate { table: "a".into() });
        wal.commit().unwrap();
        // Logged but never committed: must not replay. Force the bytes to
        // disk without a commit marker via a second reset-open trick —
        // drop flushes nothing, so write through the internal path.
        wal.log(&WalRecord::Truncate { table: "b".into() });
        {
            let mut inner = wal.lock();
            Wal::write_buf(&mut inner, &path).unwrap();
        }
        let (_, replayed, _) = Wal::replay(&path).unwrap().unwrap();
        assert_eq!(replayed, vec![WalRecord::Truncate { table: "a".into() }]);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn torn_tail_recovers_committed_prefix_at_every_cut() {
        let path = temp_wal("torn");
        let wal = Wal::open(&path, false).unwrap();
        wal.reset(1).unwrap();
        let recs = sample_records();
        // One commit per record → the committed prefix grows record by
        // record and every cut point must recover some exact prefix.
        for r in &recs {
            wal.log(r);
            wal.commit().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let mut prev_len = 0usize;
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            match Wal::replay(&path).unwrap() {
                None => assert!(cut < WAL_HEADER, "header cut {cut}"),
                Some((epoch, replayed, _)) => {
                    assert_eq!(epoch, 1);
                    assert_eq!(replayed, recs[..replayed.len()], "cut {cut}");
                    assert!(replayed.len() >= prev_len, "prefix must be monotone");
                    prev_len = replayed.len();
                }
            }
        }
        assert_eq!(prev_len, recs.len());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn valid_crc_bad_payload_is_real_corruption() {
        let path = temp_wal("corrupt");
        let wal = Wal::open(&path, false).unwrap();
        wal.reset(0).unwrap();
        drop(wal);
        // Hand-craft a record with a correct checksum over garbage.
        let payload = [0xEEu8, 1, 2, 3];
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(&path, &bytes).unwrap();
        let err = Wal::replay(&path).unwrap_err();
        assert!(err.to_string().contains("unknown record tag"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn reset_discards_history_and_bumps_epoch() {
        let path = temp_wal("reset");
        let wal = Wal::open(&path, false).unwrap();
        wal.reset(0).unwrap();
        wal.log(&WalRecord::Truncate { table: "x".into() });
        wal.commit().unwrap();
        wal.reset(1).unwrap();
        let (epoch, replayed, _) = Wal::replay(&path).unwrap().unwrap();
        assert_eq!(epoch, 1);
        assert!(replayed.is_empty());
        let _ = std::fs::remove_file(path);
    }
}
