//! Data types supported by the engine.

use std::fmt;

use ivm_sql::ast::TypeName;

/// The engine's type system: a deliberately small, analytics-oriented set
/// mirroring what the paper's workloads need (Listing 1 uses VARCHAR and
/// INTEGER; aggregates produce INTEGER/DOUBLE; the multiplicity column is
/// BOOLEAN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// `BOOLEAN` — notably the `_ivm_multiplicity` column type.
    Boolean,
    /// 64-bit signed integer (`INTEGER`, `BIGINT`).
    Integer,
    /// 64-bit IEEE float (`DOUBLE`, `FLOAT`, `REAL`).
    Double,
    /// UTF-8 string (`VARCHAR`, `TEXT`).
    Varchar,
    /// Days since the Unix epoch (`DATE`).
    Date,
}

impl DataType {
    /// Canonical SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            DataType::Boolean => "BOOLEAN",
            DataType::Integer => "INTEGER",
            DataType::Double => "DOUBLE",
            DataType::Varchar => "VARCHAR",
            DataType::Date => "DATE",
        }
    }

    /// True for INTEGER and DOUBLE.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Integer | DataType::Double)
    }

    /// Whether a value of type `from` may be used where `self` is expected
    /// without an explicit cast (we allow the usual numeric widening).
    pub fn accepts(&self, from: DataType) -> bool {
        *self == from || (*self == DataType::Double && from == DataType::Integer)
    }

    /// The common type two operands promote to for arithmetic/comparison,
    /// if any.
    pub fn promote(a: DataType, b: DataType) -> Option<DataType> {
        if a == b {
            return Some(a);
        }
        match (a, b) {
            (DataType::Integer, DataType::Double) | (DataType::Double, DataType::Integer) => {
                Some(DataType::Double)
            }
            _ => None,
        }
    }
}

impl From<TypeName> for DataType {
    fn from(t: TypeName) -> Self {
        match t {
            TypeName::Boolean => DataType::Boolean,
            TypeName::Integer => DataType::Integer,
            TypeName::Double => DataType::Double,
            TypeName::Varchar => DataType::Varchar,
            TypeName::Date => DataType::Date,
        }
    }
}

impl From<DataType> for TypeName {
    fn from(t: DataType) -> Self {
        match t {
            DataType::Boolean => TypeName::Boolean,
            DataType::Integer => TypeName::Integer,
            DataType::Double => TypeName::Double,
            DataType::Varchar => TypeName::Varchar,
            DataType::Date => TypeName::Date,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion() {
        assert_eq!(
            DataType::promote(DataType::Integer, DataType::Double),
            Some(DataType::Double)
        );
        assert_eq!(
            DataType::promote(DataType::Integer, DataType::Integer),
            Some(DataType::Integer)
        );
        assert_eq!(
            DataType::promote(DataType::Integer, DataType::Varchar),
            None
        );
    }

    #[test]
    fn accepts_widening() {
        assert!(DataType::Double.accepts(DataType::Integer));
        assert!(!DataType::Integer.accepts(DataType::Double));
        assert!(DataType::Varchar.accepts(DataType::Varchar));
    }

    #[test]
    fn typename_round_trip() {
        for t in [
            DataType::Boolean,
            DataType::Integer,
            DataType::Double,
            DataType::Varchar,
            DataType::Date,
        ] {
            assert_eq!(DataType::from(TypeName::from(t)), t);
        }
    }
}
