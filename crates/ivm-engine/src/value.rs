//! Runtime values with SQL semantics.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::EngineError;
use crate::types::DataType;

/// A single runtime value.
///
/// `Value` implements *grouping* equality/ordering (used by hash aggregation,
/// hash joins, DISTINCT, ORDER BY, and index keys): `Null == Null`, doubles
/// compare via `total_cmp`, and `Null` sorts first. SQL three-valued
/// comparison lives in the expression evaluator, not here.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// BOOLEAN value.
    Boolean(bool),
    /// INTEGER value.
    Integer(i64),
    /// DOUBLE value.
    Double(f64),
    /// VARCHAR value.
    Varchar(String),
    /// DATE value as days since the Unix epoch.
    Date(i32),
}

impl Value {
    /// Type of the value, when it has one (NULL is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Boolean(_) => Some(DataType::Boolean),
            Value::Integer(_) => Some(DataType::Integer),
            Value::Double(_) => Some(DataType::Double),
            Value::Varchar(_) => Some(DataType::Varchar),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// True when the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as boolean for predicate evaluation; NULL is `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer accessor.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric value widened to f64, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Varchar(s) => Some(s),
            _ => None,
        }
    }

    /// Cast to `target`, with SQL cast semantics. NULL casts to NULL.
    pub fn cast(&self, target: DataType) -> Result<Value, EngineError> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        if self.data_type() == Some(target) {
            return Ok(self.clone());
        }
        let out = match (self, target) {
            (Value::Integer(i), DataType::Double) => Some(Value::Double(*i as f64)),
            (Value::Double(d), DataType::Integer) => {
                // SQL rounds half away from zero on double→int casts.
                let r = d.round();
                if r.is_finite() && (i64::MIN as f64..=i64::MAX as f64).contains(&r) {
                    Some(Value::Integer(r as i64))
                } else {
                    None
                }
            }
            (Value::Integer(i), DataType::Boolean) => Some(Value::Boolean(*i != 0)),
            (Value::Boolean(b), DataType::Integer) => Some(Value::Integer(i64::from(*b))),
            (Value::Varchar(s), DataType::Integer) => {
                s.trim().parse::<i64>().ok().map(Value::Integer)
            }
            (Value::Varchar(s), DataType::Double) => {
                s.trim().parse::<f64>().ok().map(Value::Double)
            }
            (Value::Varchar(s), DataType::Boolean) => {
                match s.trim().to_ascii_lowercase().as_str() {
                    "true" | "t" | "1" => Some(Value::Boolean(true)),
                    "false" | "f" | "0" => Some(Value::Boolean(false)),
                    _ => None,
                }
            }
            (Value::Varchar(s), DataType::Date) => parse_date(s).map(Value::Date),
            (v, DataType::Varchar) => Some(Value::Varchar(v.to_string())),
            (Value::Date(d), DataType::Integer) => Some(Value::Integer(i64::from(*d))),
            (Value::Integer(i), DataType::Date) => i32::try_from(*i).ok().map(Value::Date),
            _ => None,
        };
        out.ok_or_else(|| EngineError::invalid_cast(format!("cannot cast {self} to {target}")))
    }

    /// Grouping comparison used by sorting and index keys: NULL first, then
    /// by type-specific order. Cross-numeric-type values compare by value.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Boolean(a), Boolean(b)) => a.cmp(b),
            (Integer(a), Integer(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Integer(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Integer(b)) => a.total_cmp(&(*b as f64)),
            (Varchar(a), Varchar(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            // Differently-typed values never meet in well-typed plans; fall
            // back to a stable order by type tag for robustness.
            _ => type_rank(self).cmp(&type_rank(other)),
        }
    }
}

/// Read-only access to one logical row, by column position.
///
/// Expression evaluation is generic over this trait so the same evaluator
/// runs against materialized rows (`Vec<Value>`, slices) and against rows
/// living inside a columnar [`crate::exec::RowBatch`] without gathering
/// them first.
pub trait Tuple {
    /// The value at column `index`, or `None` when out of range.
    fn col(&self, index: usize) -> Option<&Value>;
}

impl Tuple for [Value] {
    fn col(&self, index: usize) -> Option<&Value> {
        self.get(index)
    }
}

impl<const N: usize> Tuple for [Value; N] {
    fn col(&self, index: usize) -> Option<&Value> {
        self.get(index)
    }
}

impl Tuple for Vec<Value> {
    fn col(&self, index: usize) -> Option<&Value> {
        self.get(index)
    }
}

impl<T: Tuple + ?Sized> Tuple for &T {
    fn col(&self, index: usize) -> Option<&Value> {
        (**self).col(index)
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Boolean(_) => 1,
        Value::Integer(_) => 2,
        Value::Double(_) => 3,
        Value::Varchar(_) => 4,
        Value::Date(_) => 5,
    }
}

/// Parse `YYYY-MM-DD` into days since the Unix epoch (proleptic Gregorian).
pub fn parse_date(s: &str) -> Option<i32> {
    let mut parts = s.trim().splitn(3, '-');
    let year: i32 = parts.next()?.parse().ok()?;
    let month: u32 = parts.next()?.parse().ok()?;
    let day: u32 = parts.next()?.parse().ok()?;
    days_from_civil(year, month, day)
}

/// Format days-since-epoch as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Howard Hinnant's `days_from_civil` algorithm.
fn days_from_civil(y: i32, m: u32, d: u32) -> Option<i32> {
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64;
    let mp = ((m + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    i32::try_from(era as i64 * 146_097 + doe - 719_468).ok()
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    ((y + i64::from(m <= 2)) as i32, m, d)
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Boolean(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Integers and doubles that are numerically equal must hash the
            // same because they compare equal in total_cmp.
            Value::Integer(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Double(d) => {
                2u8.hash(state);
                d.to_bits().hash(state);
            }
            Value::Varchar(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                5u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Boolean(b) => write!(f, "{}", if *b { "true" } else { "false" }),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Double(d) => {
                if d.fract() == 0.0 && d.is_finite() && d.abs() < 1e15 {
                    write!(f, "{d:.1}")
                } else {
                    write!(f, "{d}")
                }
            }
            Value::Varchar(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{}", format_date(*d)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Varchar(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Varchar(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_groups_with_null() {
        assert_eq!(Value::Null, Value::Null);
        assert!(Value::Null < Value::Integer(0));
    }

    #[test]
    fn cross_numeric_equality_and_hash() {
        use std::collections::hash_map::DefaultHasher;
        let a = Value::Integer(3);
        let b = Value::Double(3.0);
        assert_eq!(a, b);
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::Integer(2).cast(DataType::Double).unwrap(),
            Value::Double(2.0)
        );
        assert_eq!(
            Value::Double(2.6).cast(DataType::Integer).unwrap(),
            Value::Integer(3)
        );
        assert_eq!(
            Value::Varchar("42".into()).cast(DataType::Integer).unwrap(),
            Value::Integer(42)
        );
        assert_eq!(
            Value::Integer(7).cast(DataType::Varchar).unwrap(),
            Value::Varchar("7".into())
        );
        assert_eq!(Value::Null.cast(DataType::Integer).unwrap(), Value::Null);
        assert!(Value::Varchar("xyz".into())
            .cast(DataType::Integer)
            .is_err());
        assert!(Value::Double(f64::NAN).cast(DataType::Integer).is_err());
    }

    #[test]
    fn date_round_trip() {
        for s in [
            "1970-01-01",
            "2024-06-09",
            "1969-12-31",
            "2000-02-29",
            "1582-10-15",
        ] {
            let d = parse_date(s).unwrap();
            assert_eq!(format_date(d), s, "round trip of {s}");
        }
        assert_eq!(parse_date("1970-01-01"), Some(0));
        assert_eq!(parse_date("1970-01-02"), Some(1));
        assert_eq!(parse_date("1969-12-31"), Some(-1));
        assert_eq!(parse_date("not-a-date"), None);
        assert_eq!(parse_date("2024-13-01"), None);
    }

    #[test]
    fn boolean_casts() {
        assert_eq!(
            Value::Varchar("true".into())
                .cast(DataType::Boolean)
                .unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(
            Value::Boolean(true).cast(DataType::Integer).unwrap(),
            Value::Integer(1)
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Double(2.0).to_string(), "2.0");
        assert_eq!(Value::Double(2.5).to_string(), "2.5");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Date(0).to_string(), "1970-01-01");
    }

    #[test]
    fn nan_totals() {
        // NaN groups with NaN under total_cmp — required for stable grouping.
        assert_eq!(Value::Double(f64::NAN), Value::Double(f64::NAN));
    }
}
