//! Durable-database integration tests: open/checkpoint/close lifecycle,
//! WAL-only recovery, residency control, corruption handling, and the
//! in-memory/durable equivalence contract.

use ivm_engine::{Database, Value};

/// Fresh scratch directory for one test.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("openivm-durtest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn seed_workload(db: &mut Database) {
    db.execute("CREATE TABLE accounts (id INTEGER PRIMARY KEY, owner VARCHAR, balance INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE events (tag VARCHAR, amount INTEGER)")
        .unwrap();
    db.execute(
        "INSERT INTO accounts VALUES (1, 'ada', 100), (2, 'bob', 50), (3, 'cyd', 75), \
         (4, 'dee', 20)",
    )
    .unwrap();
    db.execute("CREATE INDEX idx_owner ON accounts (owner)")
        .unwrap();
    db.execute("DELETE FROM accounts WHERE id = 2").unwrap();
    db.execute("UPDATE accounts SET balance = balance + 5 WHERE id = 3")
        .unwrap();
    let values: Vec<String> = (0..50).map(|i| format!("('t{}', {i})", i % 7)).collect();
    db.execute(&format!("INSERT INTO events VALUES {}", values.join(", ")))
        .unwrap();
    db.execute("CREATE VIEW rich AS SELECT owner FROM accounts WHERE balance >= 75")
        .unwrap();
}

/// Rows *and* order: scans replay slot order, so a faithful recovery must
/// reproduce both.
fn observe(db: &mut Database) -> Vec<Vec<Vec<Value>>> {
    [
        "SELECT * FROM accounts",
        "SELECT * FROM events",
        "SELECT tag, SUM(amount) AS s FROM events GROUP BY tag ORDER BY tag",
        "SELECT * FROM rich",
    ]
    .iter()
    .map(|q| db.query(q).unwrap().rows)
    .collect()
}

#[test]
fn close_and_reopen_recovers_rows_and_order() {
    let dir = TempDir::new("reopen");
    let expected = {
        let mut db = Database::open(dir.path()).unwrap();
        assert!(db.is_durable());
        assert_eq!(db.data_dir(), Some(dir.path()));
        seed_workload(&mut db);
        let snapshot = observe(&mut db);
        db.close().unwrap();
        snapshot
    };
    let mut db = Database::open(dir.path()).unwrap();
    assert_eq!(observe(&mut db), expected);
    // Checkpointed state has no WAL to replay.
    assert_eq!(db.recovery_stats().unwrap().replayed_records, 0);
    // The tombstone from the DELETE survives: slot layout is preserved.
    let t = db.catalog().table("accounts").unwrap();
    assert_eq!(t.total_slots(), 4);
    assert_eq!(t.live_rows(), 3);
    assert_eq!(t.secondary_index_names(), vec!["idx_owner".to_string()]);
    // Recovered tables keep logging: mutate, drop without close, reopen.
    db.execute("INSERT INTO accounts VALUES (9, 'zoe', 1)")
        .unwrap();
    drop(db);
    let db = Database::open(dir.path()).unwrap();
    assert_eq!(db.query("SELECT * FROM accounts").unwrap().rows.len(), 4);
}

#[test]
fn wal_replay_recovers_uncheckpointed_state() {
    let dir = TempDir::new("walonly");
    let expected = {
        let mut db = Database::open(dir.path()).unwrap();
        seed_workload(&mut db);
        let snapshot = observe(&mut db);
        // No close(): everything after the initial (empty) checkpoint
        // lives only in the WAL.
        drop(db);
        snapshot
    };
    let mut db = Database::open(dir.path()).unwrap();
    assert!(db.recovery_stats().unwrap().replayed_records > 0);
    assert_eq!(observe(&mut db), expected);
}

#[test]
fn unload_and_reload_round_trip() {
    let dir = TempDir::new("unload");
    let mut db = Database::open(dir.path()).unwrap();
    seed_workload(&mut db);
    let before = observe(&mut db);

    db.unload_table("events").unwrap();
    // `query(&self)` cannot reload; it reports the residency problem.
    let err = db.query("SELECT * FROM events").unwrap_err();
    assert!(err.to_string().contains("not resident"), "{err}");
    // Explicit reload restores the exact table.
    db.load_table("events").unwrap();
    assert_eq!(observe(&mut db), before);

    // `execute` reloads on demand — including through views.
    db.unload_table("accounts").unwrap();
    assert_eq!(db.execute("SELECT * FROM rich").unwrap().rows.len(), 2);
    assert_eq!(observe(&mut db), before);

    // In-memory databases refuse residency control loudly. (Under the
    // suite-wide OPENIVM_DATA_DIR leg `new` is durable, so the refusal
    // only applies when it actually built an in-memory database.)
    let mut mem = Database::new();
    mem.execute("CREATE TABLE t (a INTEGER)").unwrap();
    if !mem.is_durable() {
        assert!(mem.unload_table("t").is_err());
    }
}

#[test]
fn torn_wal_tail_recovers_committed_prefix() {
    let dir = TempDir::new("torn");
    {
        let mut db = Database::open(dir.path()).unwrap();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        db.close().unwrap();
    }
    {
        let mut db = Database::open(dir.path()).unwrap();
        for i in 0..10 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        drop(db);
    }
    // Cut the WAL mid-file: recovery must stop at a committed prefix —
    // cleanly, never with a panic.
    let wal = dir.path().join("wal.0001.log");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - bytes.len() / 3]).unwrap();
    let db = Database::open(dir.path()).unwrap();
    let rows = db.query("SELECT a FROM t ORDER BY a").unwrap().rows;
    assert!(rows.len() < 10, "cut WAL cannot yield the full history");
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row[0], Value::Integer(i as i64), "prefix property");
    }
}

#[test]
fn corrupt_page_and_meta_are_clean_errors() {
    let dir = TempDir::new("corrupt");
    {
        let mut db = Database::open(dir.path()).unwrap();
        seed_workload(&mut db);
        db.close().unwrap();
    }
    // Flip a byte in the page file: checksum verification must turn it
    // into an `EngineError`, not a panic or silent garbage.
    let pages = dir.path().join("pages.db");
    let mut bytes = std::fs::read(&pages).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&pages, &bytes).unwrap();
    let err = Database::open(dir.path()).unwrap_err();
    assert!(
        err.to_string().contains("checksum") || err.to_string().contains("corrupt"),
        "{err}"
    );
}

#[test]
fn in_memory_and_durable_sessions_agree() {
    let dir = TempDir::new("equiv");
    let mut mem = Database::new();
    let mut dur = Database::open(dir.path()).unwrap();
    seed_workload(&mut mem);
    seed_workload(&mut dur);
    assert_eq!(observe(&mut mem), observe(&mut dur));
    // Statements that fail half-way must leave identical state too: the
    // second tuple violates the PK after the first was applied.
    let stmt = "INSERT INTO accounts VALUES (8, 'kim', 1), (8, 'kim', 1)";
    assert!(mem.execute(stmt).is_err());
    assert!(dur.execute(stmt).is_err());
    assert_eq!(observe(&mut mem), observe(&mut dur));
    dur.close().unwrap();
    // ... and the durable session's error-path state survives recovery.
    let mut dur = Database::open(dir.path()).unwrap();
    assert_eq!(observe(&mut mem), observe(&mut dur));
}

#[test]
fn wal_segments_rotate_stay_bounded_and_recycle() {
    let dir = TempDir::new("segments");
    let opts = ivm_engine::DurabilityOptions {
        wal_segment_bytes: 512,
        ..ivm_engine::DurabilityOptions::default()
    };
    let mut db = Database::open_with_options(dir.path(), opts).unwrap();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.checkpoint().unwrap();
    for i in 0..200 {
        db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    let stats = db.wal_stats().unwrap();
    assert!(stats.rotations >= 2, "expected rotations, got {stats:?}");
    assert_eq!(stats.segments, stats.rotations + 1);
    let on_disk = || {
        let mut segs: Vec<String> = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.unwrap().file_name().into_string().ok())
            .filter(|n| n.starts_with("wal.") && n.ends_with(".log"))
            .collect();
        segs.sort();
        segs
    };
    let segs = on_disk();
    assert_eq!(segs.len() as u64, stats.segments, "{segs:?}");
    // Each sealed segment respects the bound plus at most one record.
    for seg in &segs[..segs.len() - 1] {
        let len = std::fs::metadata(dir.path().join(seg)).unwrap().len();
        assert!(len <= 512 + 4096, "segment {seg} is {len} bytes");
    }

    // A crash (drop without close) replays every segment in order.
    drop(db);
    let db = Database::open_with_options(dir.path(), opts).unwrap();
    let rows = db.query("SELECT COUNT(*) FROM t").unwrap().rows;
    assert_eq!(rows[0][0], Value::Integer(200));

    // Recovery checkpointed, which recycles the log to one segment.
    assert_eq!(on_disk(), vec!["wal.0001.log".to_string()]);
    assert_eq!(db.wal_stats().unwrap().segments, 1);
    db.close().unwrap();
}

#[test]
fn auto_checkpoint_bounds_the_wal() {
    let dir = TempDir::new("autockpt");
    let opts = ivm_engine::DurabilityOptions {
        wal_segment_bytes: 512,
        ..ivm_engine::DurabilityOptions::default()
    };
    let mut db = Database::open_with_options(dir.path(), opts).unwrap();
    db.set_auto_checkpoint(Some(2048));
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    for i in 0..300 {
        db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        // The WAL never holds more than the threshold plus one statement.
        let stats = db.wal_stats().unwrap();
        assert!(
            stats.bytes_written < 2048 + 1024,
            "statement {i}: WAL grew to {} bytes",
            stats.bytes_written
        );
    }
    // The auto-checkpoints also recycled segments along the way.
    let segs = std::fs::read_dir(dir.path())
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .filter(|n| n.starts_with("wal.") && n.ends_with(".log"))
        .count();
    assert!(segs <= 5, "auto-checkpoint left {segs} segments");
    db.close().unwrap();
    let db = Database::open(dir.path()).unwrap();
    assert_eq!(
        db.query("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
        Value::Integer(300)
    );
}
