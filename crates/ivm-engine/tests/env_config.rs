//! Process-level environment-configuration tests: `Database::new` must
//! honor valid `OPENIVM_PARALLELISM` / `OPENIVM_MEMORY_BUDGET` settings
//! and fail *loudly* (panic with the parse error) on invalid ones —
//! never silently fall back, which is how a typo'd budget used to turn
//! into an unbudgeted (or serial) run nobody notices.
//!
//! Environment variables are process-global, so every scenario lives in
//! ONE `#[test]` function (this file is its own test binary): there is
//! no concurrent test that could observe the temporary values.

use ivm_engine::Database;

struct EnvGuard {
    name: &'static str,
    saved: Option<std::ffi::OsString>,
}

impl EnvGuard {
    fn set(name: &'static str, value: &str) -> EnvGuard {
        let saved = std::env::var_os(name);
        std::env::set_var(name, value);
        EnvGuard { name, saved }
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        match &self.saved {
            Some(v) => std::env::set_var(self.name, v),
            None => std::env::remove_var(self.name),
        }
    }
}

fn new_database_panic_message() -> Option<String> {
    // A loud startup error is a panic from `Database::new`; capture it
    // without letting the default hook spam the test output.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(Database::new);
    std::panic::set_hook(prev);
    match result {
        Ok(_) => None,
        Err(payload) => Some(
            payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default(),
        ),
    }
}

#[test]
fn env_settings_apply_and_invalid_values_fail_loudly() {
    // Valid settings flow into the session defaults.
    {
        let _p = EnvGuard::set("OPENIVM_PARALLELISM", "3");
        let _m = EnvGuard::set("OPENIVM_MEMORY_BUDGET", "64KB");
        let db = Database::new();
        assert_eq!(db.parallelism(), 3);
        assert_eq!(db.memory_budget(), Some(64 * 1024));
    }
    // `0` / `unbounded` budgets disable the limit.
    {
        let _m = EnvGuard::set("OPENIVM_MEMORY_BUDGET", "0");
        assert_eq!(Database::new().memory_budget(), None);
    }
    {
        let _m = EnvGuard::set("OPENIVM_MEMORY_BUDGET", "unbounded");
        assert_eq!(Database::new().memory_budget(), None);
    }
    // Invalid parallelism: loud error naming the variable and value.
    {
        let _p = EnvGuard::set("OPENIVM_PARALLELISM", "many");
        let msg = new_database_panic_message().expect("invalid parallelism must panic");
        assert!(
            msg.contains("OPENIVM_PARALLELISM") && msg.contains("many"),
            "{msg}"
        );
    }
    {
        let _p = EnvGuard::set("OPENIVM_PARALLELISM", "0");
        let msg = new_database_panic_message().expect("zero workers must panic");
        assert!(msg.contains("OPENIVM_PARALLELISM"), "{msg}");
    }
    // Invalid budget: loud error naming the variable and value.
    {
        let _m = EnvGuard::set("OPENIVM_MEMORY_BUDGET", "lots");
        let msg = new_database_panic_message().expect("invalid budget must panic");
        assert!(
            msg.contains("OPENIVM_MEMORY_BUDGET") && msg.contains("lots"),
            "{msg}"
        );
    }
    // A valid OPENIVM_DATA_DIR makes every `new` database durable in a
    // fresh ephemeral subdirectory of that path, removed on drop.
    {
        let root = std::env::temp_dir().join(format!("openivm-envdata-{}", std::process::id()));
        std::fs::create_dir_all(&root).unwrap();
        let root_str = root.to_str().unwrap().to_string();
        let _d = EnvGuard::set("OPENIVM_DATA_DIR", Box::leak(root_str.into_boxed_str()));
        let subdir;
        {
            let mut db = Database::new();
            assert!(db.is_durable(), "OPENIVM_DATA_DIR must make `new` durable");
            subdir = db.data_dir().unwrap().to_path_buf();
            assert!(subdir.starts_with(&root), "{subdir:?} not under {root:?}");
            db.execute("CREATE TABLE t (k INTEGER)").unwrap();
            db.execute("INSERT INTO t VALUES (1)").unwrap();
            assert!(subdir.join("wal.0001.log").exists());
        }
        // Dropping the database removes its ephemeral subdirectory.
        assert!(!subdir.exists(), "ephemeral data dir leaked: {subdir:?}");
        std::fs::remove_dir_all(&root).unwrap();
    }
    // OPENIVM_FAULT_PLAN: the documented grammar parses; garbage is an
    // error naming the variable (the env path panics with this message
    // rather than silently running fault-free). A parsed plan installed
    // process-wide turns the first matching durable operation into a
    // clean `EngineError`, never a panic.
    {
        use ivm_engine::{parse_fault_plan_setting, set_fault_plan, FAULT_PLAN_ENV};
        assert!(parse_fault_plan_setting("transient@*:%7").is_ok());
        assert!(parse_fault_plan_setting("enospc@wal.:3;fsync@*:1").is_ok());
        for bad in ["gremlin@*:1", "enospc@x", "transient@*:%0", "short@*:zero"] {
            let err = parse_fault_plan_setting(bad).unwrap_err();
            assert!(err.to_string().contains(FAULT_PLAN_ENV), "{bad:?} → {err}");
        }

        let dir = std::env::temp_dir().join(format!("openivm-envfault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let plan = parse_fault_plan_setting("enospc@openivm-envfault:1").unwrap();
        let prev = set_fault_plan(Some(std::sync::Arc::new(plan)));
        let result = std::panic::catch_unwind(|| Database::open(&dir));
        set_fault_plan(prev);
        let err = result.expect("injected ENOSPC must not panic").unwrap_err();
        assert!(
            err.to_string().to_lowercase().contains("space")
                || err.to_string().contains("os error"),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    // An empty OPENIVM_DATA_DIR is a loud startup error, not a silent
    // fall-back to in-memory.
    {
        let _d = EnvGuard::set("OPENIVM_DATA_DIR", "   ");
        let msg = new_database_panic_message().expect("blank data dir must panic");
        assert!(msg.contains("OPENIVM_DATA_DIR"), "{msg}");
    }
    // The spill-dir override lands in the budget's directory config, and
    // a session constrained through env actually spills into it.
    {
        let dir = std::env::temp_dir().join(format!("openivm-envtest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let _m = EnvGuard::set("OPENIVM_MEMORY_BUDGET", "1");
        let dir_str = dir.to_str().unwrap().to_string();
        let _d = EnvGuard::set("OPENIVM_SPILL_DIR", Box::leak(dir_str.into_boxed_str()));
        let mut db = Database::new();
        db.set_parallelism(1);
        db.execute("CREATE TABLE t (k INTEGER)").unwrap();
        let values: Vec<String> = (0..200).map(|i| format!("({})", i % 5)).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
        assert_eq!(
            db.query("SELECT k, COUNT(*) FROM t GROUP BY k")
                .unwrap()
                .rows
                .len(),
            5
        );
        assert!(db.spill_stats().spilled());
        // Spill files are removed as soon as their partitions are read.
        let leftovers: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(leftovers.is_empty(), "leaked spill files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
