//! The batched executor must be oblivious to where batch boundaries fall:
//! every query result must be identical for input sizes straddling the
//! default 1024-row batch (0/1/1023/1024/1025) and for pathological batch
//! sizes, with and without tombstoned rows.

use ivm_engine::{Database, Value};

const SIZES: [usize; 5] = [0, 1, 1023, 1024, 1025];
const BATCH_SIZES: [usize; 5] = [1, 3, 1023, 1024, 1025];

/// Load `n` rows (v = 0..n, g cycles over 7 groups) through the storage
/// layer, optionally tombstoning every 5th row.
fn load(db: &mut Database, n: usize, with_deletes: bool) {
    db.execute("CREATE TABLE t (g VARCHAR, v INTEGER)").unwrap();
    let table = db.catalog_mut().table_mut("t").unwrap();
    for v in 0..n {
        table
            .insert(vec![
                Value::from(format!("g{}", v % 7)),
                Value::Integer(v as i64),
            ])
            .unwrap();
    }
    if with_deletes {
        for v in (0..n).step_by(5) {
            table.delete(v as u64).unwrap();
        }
    }
}

/// Expected live values after the optional tombstoning.
fn live_values(n: usize, with_deletes: bool) -> Vec<i64> {
    (0..n as i64)
        .filter(|v| !with_deletes || v % 5 != 0)
        .collect()
}

#[test]
fn scan_filter_aggregate_at_boundary_sizes() {
    for with_deletes in [false, true] {
        for n in SIZES {
            let mut db = Database::new();
            load(&mut db, n, with_deletes);
            let live = live_values(n, with_deletes);

            let r = db
                .query("SELECT COUNT(*) AS c, SUM(v) AS s FROM t")
                .unwrap();
            assert_eq!(
                r.rows[0][0],
                Value::Integer(live.len() as i64),
                "count n={n}"
            );
            let expected_sum: i64 = live.iter().sum();
            let sum = if live.is_empty() {
                Value::Null
            } else {
                Value::Integer(expected_sum)
            };
            assert_eq!(r.rows[0][1], sum, "sum n={n} deletes={with_deletes}");

            let r = db
                .query("SELECT v FROM t WHERE v % 2 = 1 ORDER BY v")
                .unwrap();
            let odd: Vec<i64> = live.iter().copied().filter(|v| v % 2 == 1).collect();
            assert_eq!(r.rows.len(), odd.len(), "filter n={n}");
            assert_eq!(
                r.rows
                    .iter()
                    .map(|row| row[0].as_integer().unwrap())
                    .collect::<Vec<_>>(),
                odd,
                "filtered order n={n}"
            );

            let r = db
                .query("SELECT g, COUNT(*) AS c FROM t GROUP BY g ORDER BY g")
                .unwrap();
            let groups = live
                .iter()
                .map(|v| v % 7)
                .collect::<std::collections::HashSet<_>>();
            assert_eq!(r.rows.len(), groups.len(), "groups n={n}");
        }
    }
}

#[test]
fn results_are_invariant_under_batch_size() {
    let queries = [
        "SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t GROUP BY g ORDER BY g",
        "SELECT v FROM t WHERE v > 500 ORDER BY v DESC LIMIT 10",
        "SELECT DISTINCT g FROM t ORDER BY g",
        "SELECT v FROM t ORDER BY v LIMIT 5 OFFSET 1021",
        "SELECT a.g, a.v, b.v FROM t AS a JOIN t AS b ON a.v = b.v WHERE a.v < 20 ORDER BY a.v",
    ];
    let reference = {
        let mut db = Database::new();
        load(&mut db, 1025, true);
        queries.map(|q| db.query(q).unwrap().rows)
    };
    for batch_size in BATCH_SIZES {
        let mut db = Database::with_batch_size(batch_size);
        load(&mut db, 1025, true);
        for (q, expected) in queries.iter().zip(&reference) {
            let got = db.query(q).unwrap().rows;
            assert_eq!(&got, expected, "batch_size={batch_size} query={q}");
        }
    }
}

#[test]
fn limit_terminates_early_at_boundaries() {
    for n in SIZES {
        let mut db = Database::new();
        load(&mut db, n, false);
        for limit in [0usize, 1, 1023, 1024, 1025, 2000] {
            let r = db.query(&format!("SELECT v FROM t LIMIT {limit}")).unwrap();
            assert_eq!(r.rows.len(), limit.min(n), "n={n} limit={limit}");
        }
    }
}

/// Pushed-down scans (Filter folded into TableScan) must agree with the
/// unfused plan at every boundary size, with and without tombstoned
/// windows, and the EXPLAIN output must show the fold actually happened.
#[test]
fn pushed_down_scans_at_boundary_sizes() {
    for with_deletes in [false, true] {
        for n in SIZES {
            let mut db = Database::new();
            load(&mut db, n, with_deletes);
            let live = live_values(n, with_deletes);

            let r = db.query("SELECT v FROM t WHERE v >= 3 ORDER BY v").unwrap();
            let expected: Vec<i64> = live.iter().copied().filter(|&v| v >= 3).collect();
            assert_eq!(
                r.rows
                    .iter()
                    .map(|row| row[0].as_integer().unwrap())
                    .collect::<Vec<_>>(),
                expected,
                "pushed scan n={n} deletes={with_deletes}"
            );

            let r = db
                .query("SELECT COUNT(*) AS c FROM t WHERE g = 'g3' AND v > 10")
                .unwrap();
            let expected = live.iter().filter(|&&v| v % 7 == 3 && v > 10).count() as i64;
            assert_eq!(
                r.rows[0][0],
                Value::Integer(expected),
                "conjunctive pushed scan n={n} deletes={with_deletes}"
            );
        }
    }
    // The fold is visible in the physical plan.
    let mut db = Database::new();
    load(&mut db, 10, false);
    let r = db.execute("EXPLAIN SELECT v FROM t WHERE v > 3").unwrap();
    let text: String = r
        .rows
        .iter()
        .map(|row| row[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("TableScan t [filtered]"), "{text}");
    assert!(!text.contains("Filter"), "filter should be folded:\n{text}");
}

/// Equality predicates over a primary key answer through the ART index
/// (visible in EXPLAIN) and must return exactly the scan-path rows.
#[test]
fn index_point_reads_match_scans() {
    let mut db = Database::new();
    db.execute("CREATE TABLE k (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    for id in 0..1025i64 {
        db.execute(&format!("INSERT INTO k VALUES ({id}, {})", id * 10))
            .unwrap();
    }
    db.execute("DELETE FROM k WHERE id = 500").unwrap();

    let r = db.execute("EXPLAIN SELECT v FROM k WHERE id = 7").unwrap();
    let text: String = r
        .rows
        .iter()
        .map(|row| row[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("index_eq=1"), "{text}");

    let hit = db.query("SELECT v FROM k WHERE id = 7").unwrap();
    assert_eq!(hit.rows, vec![vec![Value::Integer(70)]]);
    let tombstoned = db.query("SELECT v FROM k WHERE id = 500").unwrap();
    assert!(tombstoned.rows.is_empty(), "deleted key must not resurface");
    let miss = db.query("SELECT v FROM k WHERE id = 99999").unwrap();
    assert!(miss.rows.is_empty());
    // Residual conjuncts are still applied to the looked-up row.
    let filtered = db
        .query("SELECT v FROM k WHERE id = 7 AND v > 1000")
        .unwrap();
    assert!(filtered.rows.is_empty());
}

/// Join operators must never emit a batch larger than the executor batch
/// size, even under CROSS fan-out — pulled at the operator level so the
/// batching contract itself is observable.
#[test]
fn join_output_batches_stay_bounded() {
    use ivm_engine::exec::build_operator;
    use ivm_engine::planner::lower;

    let mut db = Database::with_batch_size(8);
    db.execute("CREATE TABLE a (x INTEGER)").unwrap();
    db.execute("CREATE TABLE b (y INTEGER)").unwrap();
    for v in 0..40i64 {
        db.execute(&format!("INSERT INTO a VALUES ({v})")).unwrap();
        db.execute(&format!("INSERT INTO b VALUES ({v})")).unwrap();
    }
    let q = match ivm_sql::parse_statement("SELECT x, y FROM a CROSS JOIN b").unwrap() {
        ivm_sql::ast::Statement::Query(q) => q,
        _ => unreachable!(),
    };
    let plan = ivm_engine::optimizer::optimize(ivm_engine::plan_query(&q, db.catalog()).unwrap());
    let physical = lower(&plan, db.catalog()).unwrap();
    let mut op = build_operator(&physical, db.catalog(), 8).unwrap();
    let mut total = 0;
    while let Some(batch) = op.next_batch().unwrap() {
        assert!(
            batch.num_rows() <= 8,
            "oversized batch {}",
            batch.num_rows()
        );
        total += batch.num_rows();
    }
    assert_eq!(total, 1600);
}

/// `ORDER BY … LIMIT` lowers to the bounded-heap TopK operator and must
/// agree with the full-sort reference at every boundary size.
#[test]
fn top_k_matches_full_sort_at_boundaries() {
    for n in SIZES {
        let mut db = Database::new();
        load(&mut db, n, true);
        let live = live_values(n, true);
        for (limit, offset) in [(0usize, 0usize), (1, 0), (10, 3), (2000, 0), (5, 1021)] {
            let r = db
                .query(&format!(
                    "SELECT v FROM t ORDER BY v DESC LIMIT {limit} OFFSET {offset}"
                ))
                .unwrap();
            let mut expected: Vec<i64> = live.clone();
            expected.sort_by(|a, b| b.cmp(a));
            let expected: Vec<i64> = expected.into_iter().skip(offset).take(limit).collect();
            assert_eq!(
                r.rows
                    .iter()
                    .map(|row| row[0].as_integer().unwrap())
                    .collect::<Vec<_>>(),
                expected,
                "top-k n={n} limit={limit} offset={offset}"
            );
        }
    }
    // A huge user-supplied LIMIT must not preallocate (or abort): memory
    // stays bounded by the input.
    let mut db = Database::new();
    load(&mut db, 10, false);
    let r = db
        .query("SELECT v FROM t ORDER BY v LIMIT 1000000000000000")
        .unwrap();
    assert_eq!(r.rows.len(), 10);

    let mut db = Database::new();
    load(&mut db, 10, false);
    let r = db
        .execute("EXPLAIN SELECT v FROM t ORDER BY v LIMIT 3")
        .unwrap();
    let text: String = r
        .rows
        .iter()
        .map(|row| row[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("TopK"), "{text}");
    assert!(
        !text.contains("Sort"),
        "TopK replaces the full sort:\n{text}"
    );
}

#[test]
fn joins_at_boundary_sizes() {
    for n in [0usize, 1, 1023, 1024, 1025] {
        let mut db = Database::new();
        db.execute("CREATE TABLE f (k INTEGER, v INTEGER)").unwrap();
        db.execute("CREATE TABLE d (k INTEGER, label VARCHAR)")
            .unwrap();
        {
            let table = db.catalog_mut().table_mut("f").unwrap();
            for v in 0..n {
                table
                    .insert(vec![
                        Value::Integer((v % 11) as i64),
                        Value::Integer(v as i64),
                    ])
                    .unwrap();
            }
        }
        {
            let table = db.catalog_mut().table_mut("d").unwrap();
            for k in 0..7i64 {
                table
                    .insert(vec![Value::Integer(k), Value::from(format!("d{k}"))])
                    .unwrap();
            }
        }
        // Keys 0..7 match, 7..11 dangle: inner drops them, left keeps them.
        let inner = db
            .query("SELECT f.v, d.label FROM f JOIN d ON f.k = d.k")
            .unwrap();
        let expected_inner = (0..n).filter(|v| v % 11 < 7).count();
        assert_eq!(inner.rows.len(), expected_inner, "inner n={n}");
        let left = db
            .query("SELECT f.v, d.label FROM f LEFT JOIN d ON f.k = d.k")
            .unwrap();
        assert_eq!(left.rows.len(), n, "left n={n}");
        let dangling = left.rows.iter().filter(|r| r[1].is_null()).count();
        assert_eq!(dangling, n - expected_inner, "left padding n={n}");
    }
}
