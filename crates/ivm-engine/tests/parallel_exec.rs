//! Parallel-executor equivalence tests: the morsel-driven executor at
//! parallelism 2 and 4 must produce the same results as the serial
//! operator tree, across operator shapes and at morsel/batch boundary
//! sizes (0, 1, 1023, 1024, 1025 rows; single- and multi-morsel tables).
//!
//! Morsel sizes are shrunk so even small tables split into many morsels;
//! all data here is exact-typed (integers, text), where parallel results
//! are specified to be *identical* to serial, not just multiset-equal.

use ivm_engine::{Database, Value};

/// Queries spanning every parallelizable shape: pipelines (scan, filter,
/// project, computed projection, CASE fallback), partitioned joins
/// (inner/left/full, residual, join + aggregate), partitioned aggregation
/// (grouped, global, DISTINCT), and the replay-merged breakers (sort,
/// top-k, distinct, set ops, limit).
fn queries() -> Vec<&'static str> {
    vec![
        "SELECT g, v, tag FROM t",
        "SELECT v FROM t WHERE v > 100",
        "SELECT v * 2 + 1 AS d, g FROM t WHERE v % 3 = 0",
        "SELECT CASE WHEN v % 2 = 0 THEN 'even' ELSE 'odd' END AS p, v FROM t",
        "SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t GROUP BY g",
        "SELECT g, MIN(v) AS lo, MAX(v) AS hi, AVG(v) AS m FROM t GROUP BY g",
        "SELECT SUM(v) AS s, COUNT(*) AS c, MIN(v) AS lo FROM t",
        "SELECT g, COUNT(DISTINCT tag) AS dt, SUM(DISTINCT v % 10) AS dv FROM t GROUP BY g",
        "SELECT g, SUM(v) AS s FROM t WHERE v > 50 GROUP BY g",
        "SELECT t.v, d.name FROM t JOIN dim AS d ON t.g = d.id",
        "SELECT t.v, d.name FROM t LEFT JOIN dim AS d ON t.g = d.id AND t.v > 200",
        "SELECT t.v, d.name FROM t FULL JOIN dim AS d ON t.g = d.id",
        "SELECT d.name, SUM(t.v) AS s, COUNT(*) AS c \
         FROM t JOIN dim AS d ON t.g = d.id GROUP BY d.name",
        "SELECT DISTINCT g FROM t",
        "SELECT g, v, tag FROM t ORDER BY v, g, tag",
        "SELECT g, v FROM t ORDER BY v DESC, g DESC LIMIT 7",
        "SELECT v FROM t WHERE v > 10 LIMIT 5",
        "SELECT v FROM t WHERE v < 100 UNION SELECT v FROM t WHERE v >= 100 AND v < 120",
        "SELECT v FROM t EXCEPT SELECT v FROM t WHERE v % 2 = 0",
        "SELECT v FROM t INTERSECT ALL SELECT v FROM t WHERE v > 500",
    ]
}

/// Build `t` (n rows, some `dim` keys unmatched) and `dim` (5 rows, one
/// key matching nothing in `t`).
fn load(db: &mut Database, n: usize, with_tombstones: bool) {
    db.execute("CREATE TABLE t (g VARCHAR, v INTEGER, tag BOOLEAN)")
        .unwrap();
    db.execute("CREATE TABLE dim (id VARCHAR, name VARCHAR)")
        .unwrap();
    for d in 0..5 {
        db.execute(&format!("INSERT INTO dim VALUES ('g{d}', 'name{d}')"))
            .unwrap();
    }
    if n > 0 {
        let values: Vec<String> = (0..n)
            .map(|i| {
                format!(
                    "('g{}', {}, {})",
                    i % 7, // g5/g6 never match dim; dim g4 may go unmatched
                    (i * 37) % 1000,
                    if i % 3 == 0 { "TRUE" } else { "FALSE" }
                )
            })
            .collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
    }
    if with_tombstones && n > 10 {
        db.execute("DELETE FROM t WHERE v % 11 = 3").unwrap();
    }
}

fn assert_equivalent(n: usize, with_tombstones: bool, morsel: usize, batch: usize) {
    let mut serial = Database::with_batch_size(batch);
    serial.set_parallelism(1);
    load(&mut serial, n, with_tombstones);
    for workers in [2usize, 4] {
        let mut par = Database::with_batch_size(batch);
        par.set_parallelism(workers);
        par.set_morsel_size(morsel);
        load(&mut par, n, with_tombstones);
        for q in queries() {
            let a = serial.query(q).unwrap();
            let b = par.query(q).unwrap();
            assert_eq!(
                a.rows, b.rows,
                "parallel({workers}, morsel={morsel}) diverges from serial \
                 on {q} (n={n}, tombstones={with_tombstones})"
            );
            assert_eq!(a.columns, b.columns, "column names diverge on {q}");
        }
    }
}

#[test]
fn morsel_boundary_sizes_match_serial() {
    // The canonical batch-boundary sizes, with the default batch size and
    // a morsel of 256 slots (0/1 rows = zero/single-morsel tables; 1025 =
    // five morsels with a one-row tail).
    for n in [0usize, 1, 1023, 1024, 1025] {
        assert_equivalent(n, false, 256, 1024);
    }
}

#[test]
fn single_morsel_table_runs_serially_and_matches() {
    // Table fits one morsel: the executor must take the serial path and
    // still agree.
    assert_equivalent(500, false, 4096, 1024);
    assert_equivalent(500, true, 4096, 1024);
}

#[test]
fn tombstoned_tables_match_serial() {
    assert_equivalent(1025, true, 256, 1024);
}

#[test]
fn tiny_morsels_and_batches_match_serial() {
    // Morsel smaller than the batch, batch of 3: worst-case windowing.
    assert_equivalent(257, false, 7, 3);
    assert_equivalent(257, true, 16, 8);
}

#[test]
fn parallelism_levels_agree_with_each_other() {
    // p=2 and p=4 must agree exactly (determinism across worker counts),
    // including when morsel scheduling differs run to run.
    let mut db2 = Database::new();
    db2.set_parallelism(2);
    db2.set_morsel_size(64);
    load(&mut db2, 777, true);
    let mut db4 = Database::new();
    db4.set_parallelism(4);
    db4.set_morsel_size(64);
    load(&mut db4, 777, true);
    for q in queries() {
        let a = db2.query(q).unwrap();
        let b = db4.query(q).unwrap();
        assert_eq!(a.rows, b.rows, "p=2 vs p=4 diverge on {q}");
    }
    // And repeated runs at the same parallelism are stable.
    for q in queries() {
        let a = db4.query(q).unwrap();
        let b = db4.query(q).unwrap();
        assert_eq!(a.rows, b.rows, "p=4 unstable across runs on {q}");
    }
}

#[test]
fn runtime_errors_are_deterministic() {
    let mut par = Database::new();
    par.set_parallelism(4);
    par.set_morsel_size(32);
    load(&mut par, 600, false);
    // Division by zero on some row: every run must error (never a silent
    // partial result), with the error of the earliest failing morsel.
    let q = "SELECT SUM(1000 / (v - 259)) AS s FROM t";
    let serial_err = {
        let mut s = Database::new();
        s.set_parallelism(1);
        load(&mut s, 600, false);
        s.query(q).unwrap_err().to_string()
    };
    for _ in 0..3 {
        let e = par.query(q).unwrap_err().to_string();
        assert_eq!(e, serial_err);
    }
}

#[test]
fn index_point_reads_stay_on_the_serial_path() {
    let mut par = Database::new();
    par.set_parallelism(4);
    par.set_morsel_size(64);
    par.execute("CREATE TABLE k (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    let values: Vec<String> = (0..1000).map(|i| format!("({i}, {})", i * 3)).collect();
    par.execute(&format!("INSERT INTO k VALUES {}", values.join(", ")))
        .unwrap();
    let r = par.query("SELECT v FROM k WHERE id = 837").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Integer(837 * 3)]]);
    let r = par.query("SELECT v FROM k WHERE id = 5000").unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn update_delete_semantics_unaffected_by_parallelism() {
    let run = |workers: usize| {
        let mut db = Database::new();
        db.set_parallelism(workers);
        db.set_morsel_size(64);
        load(&mut db, 500, false);
        let upd = db
            .execute("UPDATE t SET v = v + 1 WHERE v % 5 = 0")
            .unwrap();
        let del = db.execute("DELETE FROM t WHERE v % 7 = 1").unwrap();
        let sum = db.query("SELECT SUM(v), COUNT(*) FROM t").unwrap();
        (upd.rows_affected, del.rows_affected, sum.rows)
    };
    assert_eq!(run(1), run(4));
}
