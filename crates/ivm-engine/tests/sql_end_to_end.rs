//! End-to-end SQL tests for the embedded engine: the exact statements the
//! OpenIVM compiler emits must run here.

use ivm_engine::{Database, Value};

fn db() -> Database {
    Database::new()
}

fn ints(result: &ivm_engine::QueryResult) -> Vec<Vec<i64>> {
    result
        .rows
        .iter()
        .map(|r| r.iter().filter_map(Value::as_integer).collect())
        .collect()
}

#[test]
fn create_insert_select() {
    let mut db = db();
    db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)").unwrap();
    let r = db
        .execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x')")
        .unwrap();
    assert_eq!(r.rows_affected, 3);
    let r = db
        .query("SELECT a FROM t WHERE b = 'x' ORDER BY a")
        .unwrap();
    assert_eq!(ints(&r), vec![vec![1], vec![3]]);
}

#[test]
fn paper_listing_2_runs_verbatim() {
    // Set up the Listing 1 schema plus the delta tables OpenIVM generates.
    let mut db = db();
    db.execute_script(
        "CREATE TABLE groups (group_index VARCHAR, group_value INTEGER);
         CREATE TABLE delta_groups (group_index VARCHAR, group_value INTEGER,
                                    _duckdb_ivm_multiplicity BOOLEAN);
         CREATE TABLE query_groups (group_index VARCHAR, total_value INTEGER,
                                    PRIMARY KEY (group_index));
         CREATE TABLE delta_query_groups (group_index VARCHAR, total_value INTEGER,
                                          _duckdb_ivm_multiplicity BOOLEAN);",
    )
    .unwrap();

    // Existing view state: apple→5, banana→2 (the paper's §2 example).
    db.execute("INSERT INTO query_groups VALUES ('apple', 5), ('banana', 2)")
        .unwrap();
    // Deltas: remove 3 units of apple, add 1 banana.
    db.execute("INSERT INTO delta_groups VALUES ('apple', 3, FALSE), ('banana', 1, TRUE)")
        .unwrap();

    // Listing 2, statement 1: ΔT → ΔV.
    db.execute(
        "INSERT INTO delta_query_groups
         SELECT group_index, SUM(group_value) AS total_value, _duckdb_ivm_multiplicity
         FROM delta_groups
         GROUP BY group_index, _duckdb_ivm_multiplicity",
    )
    .unwrap();

    // Listing 2, statement 2: upsert ΔV into V via LEFT JOIN + CTE.
    db.execute(
        "INSERT OR REPLACE INTO query_groups
         WITH ivm_cte AS (
           SELECT group_index,
                  SUM(CASE WHEN _duckdb_ivm_multiplicity = FALSE
                      THEN -total_value ELSE total_value END) AS total_value
           FROM delta_query_groups
           GROUP BY group_index)
         SELECT delta_query_groups.group_index,
                SUM(COALESCE(query_groups.total_value, 0) + delta_query_groups.total_value)
         FROM ivm_cte AS delta_query_groups
         LEFT JOIN query_groups
           ON query_groups.group_index = delta_query_groups.group_index
         GROUP BY delta_query_groups.group_index",
    )
    .unwrap();

    // Listing 2, statements 3–4: cleanup.
    db.execute("DELETE FROM query_groups WHERE total_value = 0")
        .unwrap();
    db.execute("DELETE FROM delta_query_groups").unwrap();

    // Expected V' from the paper: apple → 2, banana → 3.
    let r = db
        .query("SELECT group_index, total_value FROM query_groups ORDER BY group_index")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::from("apple"), Value::Integer(2)],
            vec![Value::from("banana"), Value::Integer(3)],
        ]
    );
}

#[test]
fn group_by_with_having_and_order() {
    let mut db = db();
    db.execute("CREATE TABLE s (g VARCHAR, v INTEGER)").unwrap();
    db.execute("INSERT INTO s VALUES ('a',1),('a',2),('b',10),('c',1)")
        .unwrap();
    let r = db
        .query(
            "SELECT g, SUM(v) AS total, COUNT(*) AS n FROM s
             GROUP BY g HAVING SUM(v) > 1 ORDER BY total DESC",
        )
        .unwrap();
    assert_eq!(r.columns, vec!["g", "total", "n"]);
    assert_eq!(
        r.rows,
        vec![
            vec![Value::from("b"), Value::Integer(10), Value::Integer(1)],
            vec![Value::from("a"), Value::Integer(3), Value::Integer(2)],
        ]
    );
}

#[test]
fn joins_and_wildcards() {
    let mut db = db();
    db.execute_script(
        "CREATE TABLE orders (id INTEGER, customer INTEGER, amount INTEGER);
         CREATE TABLE customers (id INTEGER, name VARCHAR);",
    )
    .unwrap();
    db.execute("INSERT INTO orders VALUES (1, 10, 100), (2, 11, 50), (3, 99, 1)")
        .unwrap();
    db.execute("INSERT INTO customers VALUES (10, 'ada'), (11, 'bob')")
        .unwrap();
    let r = db
        .query(
            "SELECT customers.name, orders.amount FROM orders
             INNER JOIN customers ON orders.customer = customers.id
             ORDER BY orders.amount DESC",
        )
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::from("ada"), Value::Integer(100)],
            vec![Value::from("bob"), Value::Integer(50)],
        ]
    );
    // LEFT JOIN keeps the unmatched order with NULL padding.
    let r = db
        .query(
            "SELECT orders.id, customers.name FROM orders
             LEFT JOIN customers ON orders.customer = customers.id
             ORDER BY orders.id",
        )
        .unwrap();
    assert_eq!(r.rows[2], vec![Value::Integer(3), Value::Null]);
}

#[test]
fn set_operations() {
    let mut db = db();
    db.execute("CREATE TABLE a (x INTEGER)").unwrap();
    db.execute("CREATE TABLE b (x INTEGER)").unwrap();
    db.execute("INSERT INTO a VALUES (1), (2), (2), (3)")
        .unwrap();
    db.execute("INSERT INTO b VALUES (2), (4)").unwrap();
    let r = db
        .query("SELECT x FROM a UNION SELECT x FROM b ORDER BY x")
        .unwrap();
    assert_eq!(ints(&r), vec![vec![1], vec![2], vec![3], vec![4]]);
    let r = db
        .query("SELECT x FROM a UNION ALL SELECT x FROM b")
        .unwrap();
    assert_eq!(r.rows.len(), 6);
    let r = db
        .query("SELECT x FROM a EXCEPT SELECT x FROM b ORDER BY x")
        .unwrap();
    assert_eq!(ints(&r), vec![vec![1], vec![3]]);
    // EXCEPT ALL is a bag difference: one 2 survives.
    let r = db
        .query("SELECT x FROM a EXCEPT ALL SELECT x FROM b ORDER BY x")
        .unwrap();
    assert_eq!(ints(&r), vec![vec![1], vec![2], vec![3]]);
    let r = db
        .query("SELECT x FROM a INTERSECT SELECT x FROM b")
        .unwrap();
    assert_eq!(ints(&r), vec![vec![2]]);
}

#[test]
fn update_and_delete_with_predicates() {
    let mut db = db();
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
        .unwrap();
    let r = db.execute("UPDATE t SET v = v + 1 WHERE k >= 2").unwrap();
    assert_eq!(r.rows_affected, 2);
    let r = db.execute("DELETE FROM t WHERE v = 21").unwrap();
    assert_eq!(r.rows_affected, 1);
    let r = db.query("SELECT k, v FROM t ORDER BY k").unwrap();
    assert_eq!(ints(&r), vec![vec![1, 10], vec![3, 31]]);
}

#[test]
fn in_subquery_predicates() {
    let mut db = db();
    db.execute("CREATE TABLE t (g VARCHAR, v INTEGER)").unwrap();
    db.execute("CREATE TABLE dirty (g VARCHAR)").unwrap();
    db.execute("INSERT INTO t VALUES ('a',1),('b',2),('c',3)")
        .unwrap();
    db.execute("INSERT INTO dirty VALUES ('a'),('c')").unwrap();
    let r = db
        .query("SELECT v FROM t WHERE g IN (SELECT g FROM dirty) ORDER BY v")
        .unwrap();
    assert_eq!(ints(&r), vec![vec![1], vec![3]]);
    let r = db
        .query("SELECT v FROM t WHERE g NOT IN (SELECT g FROM dirty)")
        .unwrap();
    assert_eq!(ints(&r), vec![vec![2]]);
    // DELETE driven by a subquery — the MIN/MAX dirty-group pattern.
    db.execute("DELETE FROM t WHERE g IN (SELECT g FROM dirty)")
        .unwrap();
    let r = db.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Integer(1)));
}

#[test]
fn on_conflict_do_update() {
    let mut db = db();
    db.execute("CREATE TABLE v (k VARCHAR PRIMARY KEY, total INTEGER)")
        .unwrap();
    db.execute("INSERT INTO v VALUES ('a', 5)").unwrap();
    db.execute(
        "INSERT INTO v VALUES ('a', 3), ('b', 1)
         ON CONFLICT (k) DO UPDATE SET total = v.total + excluded.total",
    )
    .unwrap();
    let r = db.query("SELECT k, total FROM v ORDER BY k").unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::from("a"), Value::Integer(8)],
            vec![Value::from("b"), Value::Integer(1)],
        ]
    );
    // DO NOTHING skips silently.
    db.execute("INSERT INTO v VALUES ('a', 99) ON CONFLICT DO NOTHING")
        .unwrap();
    let r = db.query("SELECT total FROM v WHERE k = 'a'").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Integer(8)));
}

#[test]
fn views_inline() {
    let mut db = db();
    db.execute("CREATE TABLE t (g VARCHAR, v INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES ('a', 1), ('a', 2)")
        .unwrap();
    db.execute("CREATE VIEW sums AS SELECT g, SUM(v) AS total FROM t GROUP BY g")
        .unwrap();
    let r = db.query("SELECT total FROM sums WHERE g = 'a'").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Integer(3)));
    // Views track the base table.
    db.execute("INSERT INTO t VALUES ('a', 10)").unwrap();
    let r = db.query("SELECT total FROM sums WHERE g = 'a'").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Integer(13)));
}

#[test]
fn materialized_view_requires_extension() {
    let mut db = db();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    let err = db
        .execute("CREATE MATERIALIZED VIEW mv AS SELECT a FROM t")
        .unwrap_err();
    assert_eq!(err.kind(), ivm_engine::ErrorKind::Unsupported);
}

#[test]
fn avg_min_max_distinct() {
    let mut db = db();
    db.execute("CREATE TABLE t (g VARCHAR, v INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES ('a',1),('a',1),('a',4),('b',7)")
        .unwrap();
    let r = db
        .query(
            "SELECT g, AVG(v), MIN(v), MAX(v), COUNT(DISTINCT v) FROM t
             GROUP BY g ORDER BY g",
        )
        .unwrap();
    assert_eq!(
        r.rows[0],
        vec![
            Value::from("a"),
            Value::Double(2.0),
            Value::Integer(1),
            Value::Integer(4),
            Value::Integer(2),
        ]
    );
    assert_eq!(r.rows[1][1], Value::Double(7.0));
}

#[test]
fn scalar_queries_without_from() {
    let db = db();
    let r = db.query("SELECT 1 + 2 AS three").unwrap();
    assert_eq!(r.columns, vec!["three"]);
    assert_eq!(r.scalar(), Some(&Value::Integer(3)));
    let r = db
        .query("SELECT CASE WHEN TRUE THEN 'yes' ELSE 'no' END")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::from("yes")));
}

#[test]
fn limit_offset() {
    let mut db = db();
    db.execute("CREATE TABLE t (v INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1),(2),(3),(4),(5)")
        .unwrap();
    let r = db
        .query("SELECT v FROM t ORDER BY v LIMIT 2 OFFSET 1")
        .unwrap();
    assert_eq!(ints(&r), vec![vec![2], vec![3]]);
    let r = db.query("SELECT v FROM t ORDER BY v LIMIT 0").unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn insert_from_query_with_columns() {
    let mut db = db();
    db.execute("CREATE TABLE src (a INTEGER, b INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE dst (x INTEGER, y INTEGER, z VARCHAR)")
        .unwrap();
    db.execute("INSERT INTO src VALUES (1, 2)").unwrap();
    db.execute("INSERT INTO dst (y, x) SELECT a, b FROM src")
        .unwrap();
    let r = db.query("SELECT x, y, z FROM dst").unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::Integer(2), Value::Integer(1), Value::Null]]
    );
}

#[test]
fn error_paths() {
    let mut db = db();
    assert!(db.execute("SELEC 1").is_err(), "parse error");
    assert!(db.query("SELECT * FROM missing").is_err(), "catalog error");
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    assert!(db.query("SELECT b FROM t").is_err(), "binder error");
    assert!(db.execute("INSERT INTO t VALUES (1, 2)").is_err(), "arity");
    assert!(
        db.query("SELECT a, SUM(a) FROM t").is_err(),
        "a not grouped"
    );
    assert!(
        db.execute("CREATE TABLE t (a INTEGER)").is_err(),
        "duplicate table"
    );
    // Division by zero at runtime.
    db.execute("INSERT INTO t VALUES (0)").unwrap();
    assert!(db.query("SELECT 1 / a FROM t").is_err());
}

#[test]
fn group_by_alias_and_ordinal() {
    let mut db = db();
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10), (1, 20), (2, 5)")
        .unwrap();
    let r = db
        .query("SELECT a * 2 AS dbl, SUM(b) FROM t GROUP BY dbl ORDER BY dbl")
        .unwrap();
    assert_eq!(ints(&r), vec![vec![2, 30], vec![4, 5]]);
    let r = db
        .query("SELECT a * 2, SUM(b) FROM t GROUP BY 1 ORDER BY 1")
        .unwrap();
    assert_eq!(ints(&r), vec![vec![2, 30], vec![4, 5]]);
}

#[test]
fn distinct_rows() {
    let mut db = db();
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1,1),(1,1),(1,2)")
        .unwrap();
    let r = db.query("SELECT DISTINCT a, b FROM t ORDER BY b").unwrap();
    assert_eq!(ints(&r), vec![vec![1, 1], vec![1, 2]]);
}

#[test]
fn create_index_statements() {
    let mut db = db();
    db.execute("CREATE TABLE v (k VARCHAR, total INTEGER)")
        .unwrap();
    db.execute("INSERT INTO v VALUES ('a', 1), ('b', 2)")
        .unwrap();
    // UNIQUE index on a keyless table becomes the PK (paper's
    // build-after-populate ART path) and enables INSERT OR REPLACE.
    db.execute("CREATE UNIQUE INDEX v_pk ON v (k)").unwrap();
    db.execute("INSERT OR REPLACE INTO v VALUES ('a', 42)")
        .unwrap();
    let r = db.query("SELECT total FROM v WHERE k = 'a'").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Integer(42)));
    db.execute("CREATE INDEX v_sec ON v (total)").unwrap();
    db.execute("DROP INDEX v_sec").unwrap();
    assert!(db.execute("DROP INDEX v_sec").is_err());
}

#[test]
fn cte_shadowing_and_reuse() {
    let mut db = db();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    // CTE shadows the base table.
    let r = db
        .query("WITH t AS (SELECT a * 10 AS a FROM t) SELECT a FROM t ORDER BY a")
        .unwrap();
    assert_eq!(ints(&r), vec![vec![10], vec![20]]);
    // Chained CTEs referencing earlier ones.
    let r = db
        .query(
            "WITH one AS (SELECT a FROM t WHERE a = 1),
                  two AS (SELECT a + 1 AS a FROM one)
             SELECT a FROM two",
        )
        .unwrap();
    assert_eq!(ints(&r), vec![vec![2]]);
}

#[test]
fn explain_renders_plan_tree() {
    let mut db = db();
    db.execute("CREATE TABLE t (g VARCHAR, v INTEGER)").unwrap();
    let r = db
        .execute("EXPLAIN SELECT g, SUM(v) FROM t WHERE v > 0 GROUP BY g")
        .unwrap();
    assert_eq!(r.columns, vec!["explain"]);
    let text: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
    let joined = text.join("\n");
    assert!(joined.contains("Project"), "{joined}");
    assert!(joined.contains("Aggregate"), "{joined}");
    assert!(joined.contains("Scan t"), "{joined}");
    // EXPLAIN never executes the query.
    assert!(db.execute("EXPLAIN DELETE FROM t").is_err(), "queries only");
}
