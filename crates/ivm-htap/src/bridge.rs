//! The delta bridge: OLTP triggers → OLAP delta tables.
//!
//! Replaces the paper's postgres_scanner hop with an explicit ship step:
//! committed `(row, multiplicity)` pairs drained from the OLTP change logs
//! are ingested into the OLAP session's ΔT tables (and its base-table
//! mirrors, emulating attached-database access).

use ivm_core::IvmSession;
use ivm_oltp::OltpEngine;

use crate::error::HtapError;

/// Shipping counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShipStats {
    /// Ship invocations that moved at least one delta.
    pub batches: usize,
    /// Total delta rows moved.
    pub rows: usize,
}

/// Moves deltas for a set of mirrored tables.
#[derive(Debug, Default)]
pub struct Bridge {
    tables: Vec<String>,
    stats: ShipStats,
}

impl Bridge {
    /// A bridge over no tables.
    pub fn new() -> Bridge {
        Bridge::default()
    }

    /// Track a mirrored table.
    pub fn track(&mut self, table: impl Into<String>) {
        let t = table.into();
        if !self.tables.contains(&t) {
            self.tables.push(t);
        }
    }

    /// Tracked tables.
    pub fn tables(&self) -> &[String] {
        &self.tables
    }

    /// Shipping counters.
    pub fn stats(&self) -> ShipStats {
        self.stats
    }

    /// Drain every tracked table's change log from the OLTP engine and
    /// ingest into the OLAP session. Returns the number of rows shipped.
    pub fn ship(
        &mut self,
        oltp: &mut OltpEngine,
        olap: &mut IvmSession,
    ) -> Result<usize, HtapError> {
        let mut shipped = 0usize;
        for table in self.tables.clone() {
            let changes = oltp.drain_changes(&table);
            if changes.is_empty() {
                continue;
            }
            let pairs: Vec<(Vec<ivm_engine::Value>, bool)> =
                changes.into_iter().map(|c| (c.row, c.insertion)).collect();
            shipped += pairs.len();
            olap.ingest_deltas(&table, &pairs)?;
        }
        if shipped > 0 {
            self.stats.batches += 1;
            self.stats.rows += shipped;
        }
        Ok(shipped)
    }
}
