//! Cross-system consistency checking.

use std::collections::HashMap;

use ivm_engine::Value;

/// Outcome of a pipeline-wide consistency check.
#[derive(Debug, Clone, Default)]
pub struct ConsistencyReport {
    /// Mirrored tables whose OLTP and OLAP contents diverge.
    pub mismatched_tables: Vec<String>,
    /// Materialized views that disagree with a from-scratch recomputation.
    pub mismatched_views: Vec<String>,
}

impl ConsistencyReport {
    /// True when everything matched.
    pub fn is_consistent(&self) -> bool {
        self.mismatched_tables.is_empty() && self.mismatched_views.is_empty()
    }
}

/// Compare two row sets as multisets, normalizing INTEGER/DOUBLE so values
/// widened by arithmetic still compare equal.
pub fn rows_equal_as_multisets(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    fn key(rows: &[Vec<Value>]) -> HashMap<Vec<Value>, usize> {
        let mut m = HashMap::new();
        for r in rows {
            let normalized: Vec<Value> = r
                .iter()
                .map(|v| match v {
                    Value::Integer(i) => Value::Double(*i as f64),
                    other => other.clone(),
                })
                .collect();
            *m.entry(normalized).or_insert(0) += 1;
        }
        m
    }
    key(a) == key(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiset_semantics() {
        let a = vec![vec![Value::Integer(1)], vec![Value::Integer(1)]];
        let b = vec![vec![Value::Integer(1)]];
        assert!(!rows_equal_as_multisets(&a, &b), "counts matter");
        let c = vec![vec![Value::Double(1.0)], vec![Value::Integer(1)]];
        assert!(
            rows_equal_as_multisets(&a, &c),
            "numeric widening normalized"
        );
        let d = vec![vec![Value::Integer(1)], vec![Value::Integer(2)]];
        assert!(!rows_equal_as_multisets(&a, &d));
    }

    #[test]
    fn order_is_irrelevant() {
        let a = vec![vec![Value::from("x")], vec![Value::from("y")]];
        let b = vec![vec![Value::from("y")], vec![Value::from("x")]];
        assert!(rows_equal_as_multisets(&a, &b));
    }
}
