//! HTAP pipeline error type.

use std::fmt;

/// Errors from the cross-system pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HtapError {
    message: String,
}

impl HtapError {
    /// Construct an error.
    pub fn new(message: impl Into<String>) -> HtapError {
        HtapError {
            message: message.into(),
        }
    }

    /// The message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for HtapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "htap error: {}", self.message)
    }
}

impl std::error::Error for HtapError {}

impl From<ivm_oltp::OltpError> for HtapError {
    fn from(e: ivm_oltp::OltpError) -> Self {
        HtapError::new(e.to_string())
    }
}

impl From<ivm_core::IvmError> for HtapError {
    fn from(e: ivm_core::IvmError) -> Self {
        HtapError::new(e.to_string())
    }
}

impl From<ivm_engine::EngineError> for HtapError {
    fn from(e: ivm_engine::EngineError) -> Self {
        HtapError::new(e.to_string())
    }
}

impl From<ivm_sql::SqlError> for HtapError {
    fn from(e: ivm_sql::SqlError) -> Self {
        HtapError::new(e.to_string())
    }
}
