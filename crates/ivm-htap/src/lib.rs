//! # ivm-htap — cross-system IVM orchestration
//!
//! Reproduces the paper's Figure 3: "an HTAP pipeline … capturing deltas in
//! an OLTP system and feeding these into an IVM computation that maintains
//! materialized views in an OLAP system". The OLTP side is
//! [`ivm_oltp::OltpEngine`] (the PostgreSQL stand-in, with user-configured
//! triggers); the OLAP side is [`ivm_core::IvmSession`] over the embedded
//! columnar engine (the DuckDB stand-in); the [`HtapPipeline`] is the glue
//! that ships delta batches and kicks off the generated propagation SQL.
//!
//! ```
//! use ivm_htap::HtapPipeline;
//!
//! let mut htap = HtapPipeline::with_defaults();
//! htap.mirror_table("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)").unwrap();
//! htap.create_materialized_view(
//!     "CREATE MATERIALIZED VIEW qg AS \
//!      SELECT group_index, SUM(group_value) AS total FROM groups GROUP BY group_index",
//! ).unwrap();
//! htap.execute_oltp("INSERT INTO groups VALUES ('a', 1), ('a', 2)").unwrap();
//! htap.sync().unwrap();
//! let result = htap.query_view("qg").unwrap();
//! assert_eq!(result.rows.len(), 1);
//! ```

#![warn(missing_docs)]

mod bridge;
mod consistency;
mod error;
mod pipeline;

pub use bridge::{Bridge, ShipStats};
pub use consistency::{rows_equal_as_multisets, ConsistencyReport};
pub use error::HtapError;
pub use pipeline::HtapPipeline;
