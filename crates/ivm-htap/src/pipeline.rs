//! The Figure-3 pipeline: OLTP writes → triggers → delta ship → OLAP IVM.

use ivm_core::{IvmFlags, IvmSession};
use ivm_engine::QueryResult;
use ivm_oltp::{OltpEngine, OltpResult};

use crate::bridge::{Bridge, ShipStats};
use crate::consistency::{rows_equal_as_multisets, ConsistencyReport};
use crate::error::HtapError;

/// The cross-system HTAP pipeline: "a trusted and efficient OLTP system
/// (PostgreSQL) with an efficient analytical engine (DuckDB)" (§3), with
/// OpenIVM-generated SQL maintaining the analytical views.
#[derive(Debug)]
pub struct HtapPipeline {
    oltp: OltpEngine,
    olap: IvmSession,
    bridge: Bridge,
}

impl HtapPipeline {
    /// Build a pipeline with the given OLAP-side compiler flags.
    pub fn new(flags: IvmFlags) -> HtapPipeline {
        HtapPipeline {
            oltp: OltpEngine::new(),
            olap: IvmSession::new(flags),
            bridge: Bridge::new(),
        }
    }

    /// Paper-default flags.
    pub fn with_defaults() -> HtapPipeline {
        HtapPipeline::new(IvmFlags::paper_defaults())
    }

    /// Reopen a pipeline whose OLAP side lives in a durable data
    /// directory. The OLAP session recovers its tables and views from the
    /// checkpoint + WAL; the OLTP row store (which stands in for an
    /// external PostgreSQL and has no log of its own here) is rebuilt
    /// from the recovered mirrors: each base table is recreated with the
    /// mirror's schema, bulk-loaded from the mirror's rows, and only then
    /// gets its capture trigger back — so recovery itself ships nothing.
    pub fn open(
        path: impl AsRef<std::path::Path>,
        flags: IvmFlags,
    ) -> Result<HtapPipeline, HtapError> {
        let olap = IvmSession::open(path, flags)?;
        let mut oltp = OltpEngine::new();
        let mut bridge = Bridge::new();
        for name in Self::mirrored_tables(&olap) {
            let (create_sql, rows) = {
                let table = olap.database().catalog().table(&name)?;
                let mut cols: Vec<String> = table
                    .schema
                    .columns
                    .iter()
                    .map(|c| {
                        let null = if c.not_null { " NOT NULL" } else { "" };
                        format!("{} {}{null}", c.name, c.ty)
                    })
                    .collect();
                if !table.primary_key.is_empty() {
                    let keys: Vec<&str> = table
                        .primary_key
                        .iter()
                        .map(|&i| table.schema.columns[i].name.as_str())
                        .collect();
                    cols.push(format!("PRIMARY KEY ({})", keys.join(", ")));
                }
                let rows: Vec<Vec<ivm_engine::Value>> = table.scan().map(|(_, row)| row).collect();
                (format!("CREATE TABLE {name} ({})", cols.join(", ")), rows)
            };
            oltp.execute(&create_sql)?;
            oltp.load_rows(&name, rows)?;
            oltp.create_capture_trigger(&name)?;
            bridge.track(name);
        }
        Ok(HtapPipeline { oltp, olap, bridge })
    }

    /// The OLAP-side tables that are OLTP mirrors: everything except
    /// OpenIVM metadata (`_openivm_*`), IVM plumbing (`_ivm_*` staging),
    /// materialized-view tables, and the `delta_<name>` tables shadowing
    /// an existing table or view.
    fn mirrored_tables(olap: &IvmSession) -> Vec<String> {
        let catalog = olap.database().catalog();
        let all = catalog.table_names();
        let views: Vec<&str> = olap.views().iter().map(|v| v.name.as_str()).collect();
        all.iter()
            .filter(|name| {
                if name.starts_with("_openivm_") || name.starts_with("_ivm_") {
                    return false;
                }
                if views.contains(&name.as_str()) {
                    return false;
                }
                if let Some(base) = name.strip_prefix("delta_") {
                    if all.iter().any(|t| t.as_str() == base) || views.contains(&base) {
                        return false;
                    }
                }
                true
            })
            .cloned()
            .collect()
    }

    /// Checkpoint the OLAP side's durable state (no-op for in-memory
    /// pipelines).
    pub fn checkpoint(&mut self) -> Result<(), HtapError> {
        Ok(self.olap.checkpoint()?)
    }

    /// Checkpoint and drop the pipeline (clean shutdown).
    pub fn close(mut self) -> Result<(), HtapError> {
        self.checkpoint()
    }

    /// Borrow the OLTP engine.
    pub fn oltp(&self) -> &OltpEngine {
        &self.oltp
    }

    /// Mutably borrow the OLTP engine (bulk loads in benchmarks).
    pub fn oltp_mut(&mut self) -> &mut OltpEngine {
        &mut self.oltp
    }

    /// Borrow the OLAP IVM session.
    pub fn olap(&self) -> &IvmSession {
        &self.olap
    }

    /// Mutably borrow the OLAP IVM session.
    pub fn olap_mut(&mut self) -> &mut IvmSession {
        &mut self.olap
    }

    /// Turn on concurrent snapshot serving on the OLAP side: clone the
    /// returned hub into reader threads while this pipeline keeps
    /// ingesting and refreshing (see [`IvmSession::share`]).
    pub fn share(&mut self) -> ivm_engine::SnapshotHub {
        self.olap.share()
    }

    /// Set the OLAP engine's executor parallelism (worker threads). The
    /// analytical side — view recomputation, ad-hoc OLAP queries, and
    /// propagation-script execution — runs on the morsel-driven parallel
    /// executor when above 1. The OLTP row store stays single-threaded by
    /// design (it is the row-at-a-time foil).
    pub fn set_parallelism(&mut self, workers: usize) {
        self.olap.set_parallelism(workers);
    }

    /// Set the OLAP engine's executor memory budget in bytes (`None` =
    /// unbounded): analytical joins and aggregations whose hash state
    /// exceeds the budget spill radix partitions to disk (see
    /// `ivm_engine::Database::set_memory_budget` for the trade-offs).
    pub fn set_memory_budget(&mut self, bytes: Option<usize>) {
        self.olap.set_memory_budget(bytes);
    }

    /// Shipping counters.
    pub fn ship_stats(&self) -> ShipStats {
        self.bridge.stats()
    }

    /// Create a base table on both systems, install the change-capture
    /// trigger on the OLTP side, and start tracking it in the bridge.
    pub fn mirror_table(&mut self, create_table_sql: &str) -> Result<(), HtapError> {
        // Validate shape first.
        let stmt = ivm_sql::parse_statement(create_table_sql)?;
        let ivm_sql::ast::Statement::CreateTable(ct) = &stmt else {
            return Err(HtapError::new("mirror_table expects CREATE TABLE"));
        };
        let name = ct.name.normalized().to_string();
        self.oltp.execute(create_table_sql)?;
        self.olap.execute(create_table_sql)?;
        self.oltp.create_capture_trigger(&name)?;
        self.bridge.track(name);
        Ok(())
    }

    /// Run a transactional statement on the OLTP system.
    pub fn execute_oltp(&mut self, sql: &str) -> Result<OltpResult, HtapError> {
        Ok(self.oltp.execute(sql)?)
    }

    /// Create a materialized view on the OLAP side. Base-table contents
    /// already on the OLTP side must have been shipped first (the mirror
    /// feeds initial population).
    pub fn create_materialized_view(&mut self, sql: &str) -> Result<(), HtapError> {
        self.olap.execute(sql)?;
        Ok(())
    }

    /// Ship pending deltas across. Returns rows shipped. Propagation runs
    /// per the OLAP session's [`ivm_core::PropagationMode`] — with the
    /// default lazy mode it is deferred to the next view read.
    pub fn sync(&mut self) -> Result<usize, HtapError> {
        // Tables that feed no view yet have no delta tables to ingest into.
        if self.olap.views().is_empty() {
            return Ok(0);
        }
        self.bridge.ship(&mut self.oltp, &mut self.olap)
    }

    /// Ship and force propagation of every dirty view.
    pub fn sync_and_refresh(&mut self) -> Result<(), HtapError> {
        self.sync()?;
        self.olap.refresh_all()?;
        Ok(())
    }

    /// Query a materialized view (ships pending deltas first, then lets the
    /// lazy refresh policy do its work).
    pub fn query_view(&mut self, name: &str) -> Result<QueryResult, HtapError> {
        self.sync()?;
        Ok(self.olap.query_view(name)?)
    }

    /// Run an arbitrary analytical query on the OLAP engine (views refresh
    /// lazily when referenced).
    pub fn query_olap(&mut self, sql: &str) -> Result<QueryResult, HtapError> {
        self.sync()?;
        Ok(self.olap.execute(sql)?)
    }

    /// Full-pipeline consistency check: every mirror equals its OLTP
    /// source, and every view equals a from-scratch recomputation.
    pub fn check_consistency(&mut self) -> Result<ConsistencyReport, HtapError> {
        self.sync_and_refresh()?;
        let mut report = ConsistencyReport::default();
        for table in self.bridge.tables().to_vec() {
            let oltp_rows = self.oltp.execute(&format!("SELECT * FROM {table}"))?.rows;
            let olap_rows = self
                .olap
                .database()
                .query(&format!("SELECT * FROM {table}"))?
                .rows;
            if !rows_equal_as_multisets(&oltp_rows, &olap_rows) {
                report.mismatched_tables.push(table);
            }
        }
        let views: Vec<String> = self.olap.views().iter().map(|v| v.name.clone()).collect();
        for v in views {
            if !self.olap.check_consistency(&v)? {
                report.mismatched_views.push(v);
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline_with_view() -> HtapPipeline {
        let mut htap = HtapPipeline::with_defaults();
        htap.mirror_table("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
            .unwrap();
        htap.create_materialized_view(
            "CREATE MATERIALIZED VIEW qg AS \
             SELECT group_index, SUM(group_value) AS total \
             FROM groups GROUP BY group_index",
        )
        .unwrap();
        htap
    }

    #[test]
    fn basic_flow() {
        let mut htap = pipeline_with_view();
        htap.execute_oltp("INSERT INTO groups VALUES ('a', 1), ('a', 2), ('b', 5)")
            .unwrap();
        let shipped = htap.sync().unwrap();
        assert_eq!(shipped, 3);
        let r = htap.query_view("qg").unwrap();
        assert_eq!(r.rows.len(), 2);
        let report = htap.check_consistency().unwrap();
        assert!(report.is_consistent(), "{report:?}");
    }

    #[test]
    fn transactional_visibility() {
        let mut htap = pipeline_with_view();
        htap.execute_oltp("BEGIN").unwrap();
        htap.execute_oltp("INSERT INTO groups VALUES ('a', 1)")
            .unwrap();
        assert_eq!(htap.sync().unwrap(), 0, "uncommitted rows never ship");
        htap.execute_oltp("COMMIT").unwrap();
        assert_eq!(htap.sync().unwrap(), 1);
        assert!(htap.check_consistency().unwrap().is_consistent());
    }

    #[test]
    fn rollback_ships_nothing() {
        let mut htap = pipeline_with_view();
        htap.execute_oltp("BEGIN").unwrap();
        htap.execute_oltp("INSERT INTO groups VALUES ('x', 9)")
            .unwrap();
        htap.execute_oltp("ROLLBACK").unwrap();
        assert_eq!(htap.sync().unwrap(), 0);
        let r = htap.query_view("qg").unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn updates_and_deletes_flow_through() {
        let mut htap = pipeline_with_view();
        htap.execute_oltp("INSERT INTO groups VALUES ('a', 1), ('b', 2)")
            .unwrap();
        htap.execute_oltp("UPDATE groups SET group_value = 10 WHERE group_index = 'a'")
            .unwrap();
        htap.execute_oltp("DELETE FROM groups WHERE group_index = 'b'")
            .unwrap();
        let report = htap.check_consistency().unwrap();
        assert!(report.is_consistent(), "{report:?}");
        let r = htap.query_view("qg").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][1], ivm_engine::Value::Integer(10));
    }

    #[test]
    fn parallel_olap_stays_consistent() {
        let mut htap = pipeline_with_view();
        htap.set_parallelism(4);
        htap.olap_mut().database_mut().set_morsel_size(64);
        let values: Vec<String> = (0..600)
            .map(|i| format!("('g{}', {})", i % 9, i % 50))
            .collect();
        htap.execute_oltp(&format!("INSERT INTO groups VALUES {}", values.join(", ")))
            .unwrap();
        let report = htap.check_consistency().unwrap();
        assert!(report.is_consistent(), "{report:?}");
        let r = htap.query_view("qg").unwrap();
        assert_eq!(r.rows.len(), 9);
    }

    #[test]
    fn ship_stats_accumulate() {
        let mut htap = pipeline_with_view();
        htap.execute_oltp("INSERT INTO groups VALUES ('a', 1)")
            .unwrap();
        htap.sync().unwrap();
        htap.execute_oltp("INSERT INTO groups VALUES ('b', 2)")
            .unwrap();
        htap.sync().unwrap();
        let stats = htap.ship_stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.rows, 2);
    }
}
