//! The OLTP row store.
//!
//! Stands in for PostgreSQL in the paper's cross-system demo (Figure 3):
//! a row-oriented engine with primary keys (B-tree), single-writer
//! transactions with undo-based rollback, and AFTER triggers for change
//! capture. Analytics (joins, wide scans) are deliberately slow here —
//! that asymmetry is the reason the HTAP pipeline exists.

use std::collections::{BTreeMap, HashMap};

use ivm_engine::expr::bind::{bind_expr, BindColumn, Scope};
use ivm_engine::expr::BoundExpr;
use ivm_engine::{Column, DataType, Schema, Value};
use ivm_sql::ast::{Expr, InsertSource, OrderByExpr, SelectItem, SetExpr, Statement, TableRef};
use ivm_sql::parse_statement;

use crate::error::OltpError;
use crate::trigger::{ChangeLog, ChangeRecord};

/// Result of one OLTP statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OltpResult {
    /// Column names for queries.
    pub columns: Vec<String>,
    /// Result rows for queries.
    pub rows: Vec<Vec<Value>>,
    /// Rows touched by DML.
    pub rows_affected: usize,
}

/// One table: row-oriented storage keyed by a surrogate row id, plus a
/// B-tree primary-key index when declared.
#[derive(Debug)]
struct OltpTable {
    schema: Schema,
    pk: Vec<usize>,
    rows: BTreeMap<u64, Vec<Value>>,
    pk_index: BTreeMap<Vec<Value>, u64>,
    next_id: u64,
}

impl OltpTable {
    fn pk_key(&self, row: &[Value]) -> Option<Vec<Value>> {
        if self.pk.is_empty() {
            None
        } else {
            Some(self.pk.iter().map(|&i| row[i].clone()).collect())
        }
    }
}

/// Undo-log entry for rollback.
#[derive(Debug)]
enum Undo {
    Insert {
        table: String,
        id: u64,
    },
    Delete {
        table: String,
        id: u64,
        row: Vec<Value>,
    },
    Update {
        table: String,
        id: u64,
        old: Vec<Value>,
    },
}

/// The OLTP engine.
#[derive(Debug, Default)]
pub struct OltpEngine {
    tables: HashMap<String, OltpTable>,
    /// Change logs for tables with a capture trigger installed.
    triggers: HashMap<String, ChangeLog>,
    in_txn: bool,
    undo: Vec<Undo>,
    statements_executed: u64,
}

impl OltpEngine {
    /// An empty engine.
    pub fn new() -> OltpEngine {
        OltpEngine::default()
    }

    /// Number of statements executed (for the experiment harness).
    pub fn statements_executed(&self) -> u64 {
        self.statements_executed
    }

    /// Install an AFTER-statement change-capture trigger on a table.
    pub fn create_capture_trigger(&mut self, table: &str) -> Result<(), OltpError> {
        if !self.tables.contains_key(table) {
            return Err(OltpError::new(format!("table {table} does not exist")));
        }
        self.triggers.entry(table.to_string()).or_default();
        Ok(())
    }

    /// Drain the committed changes captured for a table.
    pub fn drain_changes(&mut self, table: &str) -> Vec<ChangeRecord> {
        self.triggers
            .get_mut(table)
            .map(ChangeLog::drain)
            .unwrap_or_default()
    }

    /// Committed-but-unshipped change count for a table.
    pub fn pending_changes(&self, table: &str) -> usize {
        self.triggers.get(table).map(ChangeLog::len).unwrap_or(0)
    }

    /// Table schema lookup (used by the HTAP bridge to mirror schemas).
    pub fn table_schema(&self, table: &str) -> Option<&Schema> {
        self.tables.get(table).map(|t| &t.schema)
    }

    /// Live row count.
    pub fn row_count(&self, table: &str) -> usize {
        self.tables.get(table).map(|t| t.rows.len()).unwrap_or(0)
    }

    /// Bulk-load already-committed rows into a table, bypassing change
    /// capture and the undo log. Used when an HTAP pipeline reopens a
    /// durable database: the OLAP side is the recovered source of truth
    /// and its rows must reappear here without being re-captured as new
    /// changes (which would double-apply them to the mirrors).
    pub fn load_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<(), OltpError> {
        if self.in_txn {
            return Err(OltpError::new("cannot bulk-load inside a transaction"));
        }
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| OltpError::new(format!("table {table} does not exist")))?;
        for row in rows {
            if row.len() != t.schema.len() {
                return Err(OltpError::new(format!(
                    "bulk-load arity mismatch for {table}: expected {}, got {}",
                    t.schema.len(),
                    row.len()
                )));
            }
            let id = t.next_id;
            if let Some(key) = t.pk_key(&row) {
                if t.pk_index.contains_key(&key) {
                    return Err(OltpError::new(format!("duplicate key in {table}")));
                }
                t.pk_index.insert(key, id);
            }
            t.next_id += 1;
            t.rows.insert(id, row);
        }
        Ok(())
    }

    /// Execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<OltpResult, OltpError> {
        let stmt = parse_statement(sql)?;
        self.statements_executed += 1;
        match stmt {
            Statement::CreateTable(ct) => self.create_table(ct),
            Statement::Insert(ins) => self.insert(ins),
            Statement::Update(u) => self.update(u),
            Statement::Delete(d) => self.delete(d),
            Statement::Query(q) => self.select(*q),
            Statement::Begin => {
                if self.in_txn {
                    return Err(OltpError::new("transaction already open"));
                }
                self.in_txn = true;
                Ok(OltpResult::default())
            }
            Statement::Commit => {
                if !self.in_txn {
                    return Err(OltpError::new("no open transaction"));
                }
                self.in_txn = false;
                self.undo.clear();
                for log in self.triggers.values_mut() {
                    log.commit();
                }
                Ok(OltpResult::default())
            }
            Statement::Rollback => {
                if !self.in_txn {
                    return Err(OltpError::new("no open transaction"));
                }
                self.in_txn = false;
                self.apply_undo();
                for log in self.triggers.values_mut() {
                    log.rollback();
                }
                Ok(OltpResult::default())
            }
            Statement::Drop(d) => {
                let name = d.name.normalized();
                if self.tables.remove(name).is_none() && !d.if_exists {
                    return Err(OltpError::new(format!("table {name} does not exist")));
                }
                self.triggers.remove(name);
                Ok(OltpResult::default())
            }
            other => Err(OltpError::new(format!(
                "unsupported OLTP statement: {other:?}"
            ))),
        }
    }

    /// Execute a `;`-separated script.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<OltpResult>, OltpError> {
        ivm_sql::parse_statements(sql)?
            .into_iter()
            .map(|s| {
                self.statements_executed += 1;
                match s {
                    Statement::CreateTable(ct) => self.create_table(ct),
                    Statement::Insert(ins) => self.insert(ins),
                    Statement::Update(u) => self.update(u),
                    Statement::Delete(d) => self.delete(d),
                    Statement::Query(q) => self.select(*q),
                    other => Err(OltpError::new(format!("unsupported in script: {other:?}"))),
                }
            })
            .collect()
    }

    fn apply_undo(&mut self) {
        while let Some(entry) = self.undo.pop() {
            match entry {
                Undo::Insert { table, id } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        if let Some(row) = t.rows.remove(&id) {
                            if let Some(key) = t.pk_key(&row) {
                                t.pk_index.remove(&key);
                            }
                        }
                    }
                }
                Undo::Delete { table, id, row } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        if let Some(key) = t.pk_key(&row) {
                            t.pk_index.insert(key, id);
                        }
                        t.rows.insert(id, row);
                    }
                }
                Undo::Update { table, id, old } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        if let Some(current) = t.rows.get(&id).cloned() {
                            if let Some(key) = t.pk_key(&current) {
                                t.pk_index.remove(&key);
                            }
                        }
                        if let Some(key) = t.pk_key(&old) {
                            t.pk_index.insert(key, id);
                        }
                        t.rows.insert(id, old);
                    }
                }
            }
        }
    }

    fn create_table(&mut self, ct: ivm_sql::ast::CreateTable) -> Result<OltpResult, OltpError> {
        let name = ct.name.normalized().to_string();
        if self.tables.contains_key(&name) {
            if ct.if_not_exists {
                return Ok(OltpResult::default());
            }
            return Err(OltpError::new(format!("table {name} already exists")));
        }
        let schema = Schema::new(
            ct.columns
                .iter()
                .map(|c| Column {
                    name: c.name.normalized().to_string(),
                    ty: DataType::from(c.ty),
                    not_null: c.not_null,
                })
                .collect(),
        );
        let mut pk = Vec::new();
        for k in &ct.primary_key {
            let pos = schema
                .position(k.normalized())
                .ok_or_else(|| OltpError::new(format!("unknown PK column {}", k.normalized())))?;
            pk.push(pos);
        }
        self.tables.insert(
            name,
            OltpTable {
                schema,
                pk,
                rows: BTreeMap::new(),
                pk_index: BTreeMap::new(),
                next_id: 0,
            },
        );
        Ok(OltpResult::default())
    }

    fn table(&self, name: &str) -> Result<&OltpTable, OltpError> {
        self.tables
            .get(name)
            .ok_or_else(|| OltpError::new(format!("table {name} does not exist")))
    }

    fn scope(schema: &Schema, table: &str) -> Scope {
        Scope {
            columns: schema
                .columns
                .iter()
                .map(|c| BindColumn {
                    qualifier: Some(table.to_string()),
                    name: c.name.clone(),
                    ty: Some(c.ty),
                })
                .collect(),
        }
    }

    fn insert(&mut self, ins: ivm_sql::ast::Insert) -> Result<OltpResult, OltpError> {
        if ins.or_replace || ins.on_conflict.is_some() {
            return Err(OltpError::new(
                "upserts are not supported by the OLTP engine",
            ));
        }
        let name = ins.table.normalized().to_string();
        let (schema, pk, column_map) = {
            let t = self.table(&name)?;
            let map: Vec<usize> = if ins.columns.is_empty() {
                (0..t.schema.len()).collect()
            } else {
                let mut m = Vec::new();
                for c in &ins.columns {
                    m.push(t.schema.position(c.normalized()).ok_or_else(|| {
                        OltpError::new(format!("unknown column {}", c.normalized()))
                    })?);
                }
                m
            };
            (t.schema.clone(), t.pk.clone(), map)
        };
        let InsertSource::Values(rows) = &ins.source else {
            return Err(OltpError::new(
                "INSERT … SELECT is not supported by the OLTP engine",
            ));
        };
        let empty = Scope::empty();
        let mut affected = 0usize;
        for value_row in rows {
            if value_row.len() != column_map.len() {
                return Err(OltpError::new("INSERT arity mismatch"));
            }
            let mut row = vec![Value::Null; schema.len()];
            for (expr, &target) in value_row.iter().zip(&column_map) {
                let bound = bind_expr(expr, &empty)?;
                let v = bound.eval(&[])?;
                row[target] = coerce(v, schema.columns[target].ty)?;
            }
            for (v, c) in row.iter().zip(&schema.columns) {
                if v.is_null() && c.not_null {
                    return Err(OltpError::new(format!("NOT NULL violated: {}", c.name)));
                }
            }
            let t = self.tables.get_mut(&name).expect("checked");
            if !pk.is_empty() {
                let key: Vec<Value> = pk.iter().map(|&i| row[i].clone()).collect();
                if t.pk_index.contains_key(&key) {
                    return Err(OltpError::new(format!("duplicate key in {name}")));
                }
                t.pk_index.insert(key, t.next_id);
            }
            let id = t.next_id;
            t.next_id += 1;
            t.rows.insert(id, row.clone());
            if self.in_txn {
                self.undo.push(Undo::Insert {
                    table: name.clone(),
                    id,
                });
            }
            if let Some(log) = self.triggers.get_mut(&name) {
                log.record(ChangeRecord::insert(row), self.in_txn);
            }
            affected += 1;
        }
        Ok(OltpResult {
            rows_affected: affected,
            ..Default::default()
        })
    }

    fn matching_rows(
        &self,
        name: &str,
        selection: &Option<Expr>,
    ) -> Result<Vec<(u64, Vec<Value>)>, OltpError> {
        let t = self.table(name)?;
        let scope = Self::scope(&t.schema, name);
        let predicate = match selection {
            Some(e) => Some(bind_expr(e, &scope)?),
            None => None,
        };
        let mut out = Vec::new();
        for (&id, row) in &t.rows {
            let keep = match &predicate {
                Some(p) => p.eval(row)?.as_bool() == Some(true),
                None => true,
            };
            if keep {
                out.push((id, row.clone()));
            }
        }
        Ok(out)
    }

    fn update(&mut self, u: ivm_sql::ast::Update) -> Result<OltpResult, OltpError> {
        let name = u.table.normalized().to_string();
        let victims = self.matching_rows(&name, &u.selection)?;
        let (schema, assignments) = {
            let t = self.table(&name)?;
            let scope = Self::scope(&t.schema, &name);
            let mut bound = Vec::new();
            for a in &u.assignments {
                let pos = t.schema.position(a.column.normalized()).ok_or_else(|| {
                    OltpError::new(format!("unknown column {}", a.column.normalized()))
                })?;
                bound.push((pos, bind_expr(&a.value, &scope)?));
            }
            (t.schema.clone(), bound)
        };
        let affected = victims.len();
        for (id, old_row) in victims {
            let mut new_row = old_row.clone();
            for (pos, expr) in &assignments {
                new_row[*pos] = coerce(expr.eval(&old_row)?, schema.columns[*pos].ty)?;
            }
            let t = self.tables.get_mut(&name).expect("checked");
            if let Some(old_key) = t.pk_key(&old_row) {
                let new_key = t.pk_key(&new_row).expect("same pk arity");
                if old_key != new_key {
                    if t.pk_index.contains_key(&new_key) {
                        return Err(OltpError::new(format!("duplicate key in {name}")));
                    }
                    t.pk_index.remove(&old_key);
                    t.pk_index.insert(new_key, id);
                }
            }
            t.rows.insert(id, new_row.clone());
            if self.in_txn {
                self.undo.push(Undo::Update {
                    table: name.clone(),
                    id,
                    old: old_row.clone(),
                });
            }
            if let Some(log) = self.triggers.get_mut(&name) {
                // DBSP update = deletion of the pre-image + insertion of
                // the post-image.
                log.record(ChangeRecord::delete(old_row), self.in_txn);
                log.record(ChangeRecord::insert(new_row), self.in_txn);
            }
        }
        Ok(OltpResult {
            rows_affected: affected,
            ..Default::default()
        })
    }

    fn delete(&mut self, d: ivm_sql::ast::Delete) -> Result<OltpResult, OltpError> {
        let name = d.table.normalized().to_string();
        let victims = self.matching_rows(&name, &d.selection)?;
        let affected = victims.len();
        for (id, row) in victims {
            let t = self.tables.get_mut(&name).expect("checked");
            if let Some(key) = t.pk_key(&row) {
                t.pk_index.remove(&key);
            }
            t.rows.remove(&id);
            if self.in_txn {
                self.undo.push(Undo::Delete {
                    table: name.clone(),
                    id,
                    row: row.clone(),
                });
            }
            if let Some(log) = self.triggers.get_mut(&name) {
                log.record(ChangeRecord::delete(row), self.in_txn);
            }
        }
        Ok(OltpResult {
            rows_affected: affected,
            ..Default::default()
        })
    }

    /// Minimal single-table SELECT: projection, WHERE, GROUP BY with
    /// SUM/COUNT/AVG/MIN/MAX, ORDER BY output columns, LIMIT. Analytics on
    /// the row store exist only for the E3 "pure OLTP" comparison — they
    /// are intentionally naive row-at-a-time loops.
    fn select(&mut self, q: ivm_sql::ast::Query) -> Result<OltpResult, OltpError> {
        if !q.ctes.is_empty() {
            return Err(OltpError::new("CTEs are not supported by the OLTP engine"));
        }
        let SetExpr::Select(select) = &q.body else {
            return Err(OltpError::new(
                "set operations are not supported by the OLTP engine",
            ));
        };
        if select.from.len() != 1 {
            return Err(OltpError::new("OLTP SELECT reads exactly one table"));
        }
        let TableRef::Table { name, alias } = &select.from[0] else {
            return Err(OltpError::new(
                "joins/subqueries are not supported by the OLTP engine",
            ));
        };
        let tname = name.normalized().to_string();
        let qualifier = alias
            .as_ref()
            .map(|a| a.normalized().to_string())
            .unwrap_or_else(|| tname.clone());
        let t = self.table(&tname)?;
        let scope = Self::scope(&t.schema, &qualifier);

        // Expand projection.
        let mut items: Vec<(Expr, String)> = Vec::new();
        for item in &select.projection {
            match item {
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                    for c in &t.schema.columns {
                        items.push((Expr::col(c.name.clone()), c.name.clone()));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let name = alias
                        .as_ref()
                        .map(|a| a.normalized().to_string())
                        .unwrap_or_else(|| default_name(expr));
                    items.push((expr.clone(), name));
                }
            }
        }

        let predicate = match &select.selection {
            Some(e) => Some(bind_expr(e, &scope)?),
            None => None,
        };
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for row in t.rows.values() {
            let keep = match &predicate {
                Some(p) => p.eval(row)?.as_bool() == Some(true),
                None => true,
            };
            if keep {
                rows.push(row.clone());
            }
        }

        let is_aggregate =
            !select.group_by.is_empty() || items.iter().any(|(e, _)| contains_aggregate(e));
        let columns: Vec<String> = items.iter().map(|(_, n)| n.clone()).collect();
        let mut out_rows = if is_aggregate {
            self.aggregate_select(&items, &select.group_by, rows, &scope)?
        } else {
            let exprs: Vec<BoundExpr> = items
                .iter()
                .map(|(e, _)| bind_expr(e, &scope))
                .collect::<Result<_, _>>()?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut projected = Vec::with_capacity(exprs.len());
                for e in &exprs {
                    projected.push(e.eval(&row)?);
                }
                out.push(projected);
            }
            out
        };

        if !q.order_by.is_empty() {
            let keys: Vec<(usize, bool)> = q
                .order_by
                .iter()
                .map(|OrderByExpr { expr, desc }| match expr {
                    Expr::Column(c) => columns
                        .iter()
                        .position(|n| n == c.column.normalized())
                        .map(|i| (i, *desc))
                        .ok_or_else(|| OltpError::new("ORDER BY must name an output column")),
                    _ => Err(OltpError::new("ORDER BY must name an output column")),
                })
                .collect::<Result<_, _>>()?;
            out_rows.sort_by(|a, b| {
                for &(i, desc) in &keys {
                    let ord = a[i].total_cmp(&b[i]);
                    let ord = if desc { ord.reverse() } else { ord };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        if let Some(Expr::Literal(ivm_sql::ast::Literal::Number(n))) = &q.limit {
            if let Ok(limit) = n.parse::<usize>() {
                out_rows.truncate(limit);
            }
        }
        Ok(OltpResult {
            columns,
            rows: out_rows,
            rows_affected: 0,
        })
    }

    fn aggregate_select(
        &self,
        items: &[(Expr, String)],
        group_by: &[Expr],
        rows: Vec<Vec<Value>>,
        scope: &Scope,
    ) -> Result<Vec<Vec<Value>>, OltpError> {
        use std::collections::hash_map::Entry;

        let group_exprs: Vec<BoundExpr> = group_by
            .iter()
            .map(|e| bind_expr(e, scope))
            .collect::<Result<_, _>>()?;
        // Each item must be either a group expression or an aggregate call.
        enum Item {
            Group(usize),
            Agg {
                func: String,
                arg: Option<BoundExpr>,
            },
        }
        let mut plan_items = Vec::new();
        for (e, _) in items {
            if let Some(i) = group_by.iter().position(|g| g == e) {
                plan_items.push(Item::Group(i));
            } else if let Expr::Function {
                name, args, star, ..
            } = e
            {
                let func = name.normalized().to_string();
                if !matches!(func.as_str(), "sum" | "count" | "avg" | "min" | "max") {
                    return Err(OltpError::new(format!("unknown aggregate {func}")));
                }
                let arg = if *star {
                    None
                } else {
                    Some(bind_expr(&args[0], scope)?)
                };
                plan_items.push(Item::Agg { func, arg });
            } else {
                return Err(OltpError::new(
                    "OLTP aggregate projection must be keys or aggregate calls",
                ));
            }
        }

        // (sum, count, min, max) accumulators per item per group.
        type Acc = (f64, i64, Option<Value>, Option<Value>);
        let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
        let mut order: Vec<Vec<Value>> = Vec::new();
        for row in &rows {
            let mut key = Vec::with_capacity(group_exprs.len());
            for g in &group_exprs {
                key.push(g.eval(row)?);
            }
            let accs = match groups.entry(key.clone()) {
                Entry::Occupied(o) => o.into_mut(),
                Entry::Vacant(v) => {
                    order.push(key);
                    v.insert(vec![(0.0, 0, None, None); plan_items.len()])
                }
            };
            for (acc, item) in accs.iter_mut().zip(&plan_items) {
                if let Item::Agg { arg, .. } = item {
                    let v = match arg {
                        Some(a) => a.eval(row)?,
                        None => Value::Boolean(true),
                    };
                    if v.is_null() {
                        continue;
                    }
                    acc.0 += v.as_f64().unwrap_or(0.0);
                    acc.1 += 1;
                    if acc.2.as_ref().is_none_or(|m| v.total_cmp(m).is_lt()) {
                        acc.2 = Some(v.clone());
                    }
                    if acc.3.as_ref().is_none_or(|m| v.total_cmp(m).is_gt()) {
                        acc.3 = Some(v);
                    }
                }
            }
        }
        // Global aggregates over empty input still produce one row.
        if group_exprs.is_empty() && order.is_empty() {
            order.push(Vec::new());
            groups.insert(Vec::new(), vec![(0.0, 0, None, None); plan_items.len()]);
        }
        let mut out = Vec::with_capacity(order.len());
        for key in order {
            let accs = groups.remove(&key).expect("recorded");
            let mut row = Vec::with_capacity(plan_items.len());
            for (item, acc) in plan_items.iter().zip(accs) {
                row.push(match item {
                    Item::Group(i) => key[*i].clone(),
                    Item::Agg { func, .. } => match func.as_str() {
                        "sum" => {
                            if acc.1 == 0 {
                                Value::Null
                            } else if acc.0.fract() == 0.0 {
                                Value::Integer(acc.0 as i64)
                            } else {
                                Value::Double(acc.0)
                            }
                        }
                        "count" => Value::Integer(acc.1),
                        "avg" => {
                            if acc.1 == 0 {
                                Value::Null
                            } else {
                                Value::Double(acc.0 / acc.1 as f64)
                            }
                        }
                        "min" => acc.2.clone().unwrap_or(Value::Null),
                        "max" => acc.3.clone().unwrap_or(Value::Null),
                        _ => unreachable!(),
                    },
                });
            }
            out.push(row);
        }
        Ok(out)
    }
}

fn coerce(v: Value, target: DataType) -> Result<Value, OltpError> {
    match v.data_type() {
        None => Ok(Value::Null),
        Some(t) if target.accepts(t) => {
            if t == DataType::Integer && target == DataType::Double {
                Ok(v.cast(DataType::Double)?)
            } else {
                Ok(v)
            }
        }
        Some(_) => Ok(v.cast(target)?),
    }
}

fn default_name(e: &Expr) -> String {
    match e {
        Expr::Column(c) => c.column.normalized().to_string(),
        Expr::Function { name, .. } => name.normalized().to_string(),
        other => ivm_sql::print_expr(other, ivm_sql::Dialect::DuckDb).to_lowercase(),
    }
}

fn contains_aggregate(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |node| {
        if let Expr::Function { name, .. } = node {
            if matches!(name.normalized(), "sum" | "count" | "avg" | "min" | "max") {
                found = true;
            }
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> OltpEngine {
        let mut e = OltpEngine::new();
        e.execute("CREATE TABLE accounts (id INTEGER PRIMARY KEY, owner VARCHAR, balance INTEGER)")
            .unwrap();
        e.execute("INSERT INTO accounts VALUES (1, 'ada', 100), (2, 'bob', 50)")
            .unwrap();
        e
    }

    #[test]
    fn crud_round_trip() {
        let mut e = engine();
        let r = e
            .execute("SELECT id, balance FROM accounts ORDER BY id")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        e.execute("UPDATE accounts SET balance = balance - 10 WHERE id = 1")
            .unwrap();
        let r = e
            .execute("SELECT balance FROM accounts WHERE id = 1")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Integer(90));
        e.execute("DELETE FROM accounts WHERE id = 2").unwrap();
        assert_eq!(e.row_count("accounts"), 1);
    }

    #[test]
    fn primary_key_enforced() {
        let mut e = engine();
        assert!(e
            .execute("INSERT INTO accounts VALUES (1, 'eve', 1)")
            .is_err());
        // PK change collisions rejected.
        assert!(e
            .execute("UPDATE accounts SET id = 2 WHERE id = 1")
            .is_err());
        // Legal PK change maintains the index.
        e.execute("UPDATE accounts SET id = 9 WHERE id = 1")
            .unwrap();
        let r = e
            .execute("SELECT owner FROM accounts WHERE id = 9")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::from("ada"));
    }

    #[test]
    fn transactions_commit_and_rollback() {
        let mut e = engine();
        e.execute("BEGIN").unwrap();
        e.execute("UPDATE accounts SET balance = 0 WHERE id = 1")
            .unwrap();
        e.execute("DELETE FROM accounts WHERE id = 2").unwrap();
        e.execute("INSERT INTO accounts VALUES (3, 'eve', 7)")
            .unwrap();
        e.execute("ROLLBACK").unwrap();
        let r = e
            .execute("SELECT id, balance FROM accounts ORDER BY id")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Integer(1), Value::Integer(100)],
                vec![Value::Integer(2), Value::Integer(50)],
            ]
        );
        e.execute("BEGIN").unwrap();
        e.execute("INSERT INTO accounts VALUES (3, 'eve', 7)")
            .unwrap();
        e.execute("COMMIT").unwrap();
        assert_eq!(e.row_count("accounts"), 3);
        assert!(e.execute("COMMIT").is_err(), "no open txn");
    }

    #[test]
    fn triggers_capture_committed_changes_only() {
        let mut e = engine();
        e.create_capture_trigger("accounts").unwrap();
        e.execute("BEGIN").unwrap();
        e.execute("INSERT INTO accounts VALUES (3, 'eve', 7)")
            .unwrap();
        assert_eq!(e.pending_changes("accounts"), 0, "uncommitted invisible");
        e.execute("ROLLBACK").unwrap();
        assert_eq!(e.pending_changes("accounts"), 0);
        assert_eq!(e.row_count("accounts"), 2);

        e.execute("INSERT INTO accounts VALUES (4, 'dan', 9)")
            .unwrap();
        assert_eq!(e.pending_changes("accounts"), 1, "autocommit captures");
        e.execute("UPDATE accounts SET balance = 10 WHERE id = 4")
            .unwrap();
        let changes = e.drain_changes("accounts");
        // insert + (delete + insert) from the update.
        assert_eq!(changes.len(), 3);
        assert!(changes[0].insertion);
        assert!(!changes[1].insertion);
        assert!(changes[2].insertion);
        assert!(e.drain_changes("accounts").is_empty(), "drained");
    }

    #[test]
    fn naive_aggregates_work() {
        let mut e = engine();
        e.execute("INSERT INTO accounts VALUES (3, 'ada', 10)")
            .unwrap();
        let r = e
            .execute(
                "SELECT owner, SUM(balance) AS total, COUNT(*) AS n FROM accounts \
                 GROUP BY owner ORDER BY owner",
            )
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::from("ada"), Value::Integer(110), Value::Integer(2)],
                vec![Value::from("bob"), Value::Integer(50), Value::Integer(1)],
            ]
        );
        let r = e
            .execute("SELECT MIN(balance), MAX(balance), AVG(balance) FROM accounts")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Integer(10));
        assert_eq!(r.rows[0][1], Value::Integer(100));
    }

    #[test]
    fn unsupported_features_error() {
        let mut e = engine();
        assert!(e
            .execute("SELECT * FROM accounts a JOIN accounts b ON a.id = b.id")
            .is_err());
        assert!(e
            .execute("INSERT OR REPLACE INTO accounts VALUES (1, 'x', 1)")
            .is_err());
        assert!(e.execute("SELECT 1 UNION SELECT 2").is_err());
    }

    #[test]
    fn not_null_and_arity() {
        let mut e = OltpEngine::new();
        e.execute("CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR)")
            .unwrap();
        assert!(e.execute("INSERT INTO t VALUES (NULL, 'x')").is_err());
        assert!(e.execute("INSERT INTO t VALUES (1)").is_err());
        e.execute("INSERT INTO t (a) VALUES (1)").unwrap();
        let r = e.execute("SELECT b FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Null);
    }
}
