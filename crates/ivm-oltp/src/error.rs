//! OLTP engine error type.

use std::fmt;

/// Errors raised by the OLTP row-store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OltpError {
    message: String,
}

impl OltpError {
    /// Construct an error.
    pub fn new(message: impl Into<String>) -> OltpError {
        OltpError {
            message: message.into(),
        }
    }

    /// The message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for OltpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oltp error: {}", self.message)
    }
}

impl std::error::Error for OltpError {}

impl From<ivm_sql::SqlError> for OltpError {
    fn from(e: ivm_sql::SqlError) -> Self {
        OltpError::new(e.to_string())
    }
}

impl From<ivm_engine::EngineError> for OltpError {
    fn from(e: ivm_engine::EngineError) -> Self {
        OltpError::new(e.to_string())
    }
}
