//! # ivm-oltp — a simulated OLTP row store with change-capture triggers
//!
//! Stands in for PostgreSQL in the paper's cross-system HTAP demonstration
//! (Figure 3). The engine is row-oriented with B-tree primary keys,
//! supports single-writer transactions (`BEGIN`/`COMMIT`/`ROLLBACK` with
//! undo-based rollback), and offers AFTER-statement change-capture
//! triggers: every committed INSERT/UPDATE/DELETE is recorded as
//! `(row, multiplicity)` pairs — the ΔT stream the OpenIVM propagation
//! scripts consume. UPDATEs appear as deletion + insertion, following the
//! DBSP Z-set treatment.
//!
//! Analytical queries run here too (for the E3 "pure OLTP" baseline), but
//! through deliberately naive row-at-a-time loops: the performance
//! asymmetry against the columnar OLAP engine is what motivates
//! cross-system IVM.
//!
//! ```
//! use ivm_oltp::OltpEngine;
//!
//! let mut pg = OltpEngine::new();
//! pg.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)").unwrap();
//! pg.create_capture_trigger("t").unwrap();
//! pg.execute("INSERT INTO t VALUES (1, 10)").unwrap();
//! let deltas = pg.drain_changes("t");
//! assert_eq!(deltas.len(), 1);
//! assert!(deltas[0].insertion);
//! ```

#![warn(missing_docs)]

mod engine;
mod error;
mod trigger;

pub use engine::{OltpEngine, OltpResult};
pub use error::OltpError;
pub use trigger::{ChangeLog, ChangeRecord};
