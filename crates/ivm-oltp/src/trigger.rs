//! Change capture: AFTER-statement triggers.
//!
//! The paper leaves delta capture on the OLTP side to "triggers …
//! configured independently" by the user (§2). This module provides those
//! triggers: once installed on a table, every committed row change is
//! recorded as a `(row, multiplicity)` pair — exactly the ΔT representation
//! OpenIVM consumes. UPDATEs surface as deletion + insertion, following
//! the DBSP Z-set view of updates.

use ivm_engine::Value;

/// One captured change.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeRecord {
    /// The full row image.
    pub row: Vec<Value>,
    /// `true` = insertion, `false` = deletion.
    pub insertion: bool,
}

impl ChangeRecord {
    /// Insertion record.
    pub fn insert(row: Vec<Value>) -> ChangeRecord {
        ChangeRecord {
            row,
            insertion: true,
        }
    }

    /// Deletion record.
    pub fn delete(row: Vec<Value>) -> ChangeRecord {
        ChangeRecord {
            row,
            insertion: false,
        }
    }
}

/// A per-table change buffer, drained by the HTAP bridge.
#[derive(Debug, Default)]
pub struct ChangeLog {
    committed: Vec<ChangeRecord>,
    /// Changes made inside the open transaction; promoted on COMMIT,
    /// discarded on ROLLBACK.
    pending: Vec<ChangeRecord>,
}

impl ChangeLog {
    /// Record a change in the current transaction scope.
    pub fn record(&mut self, change: ChangeRecord, in_txn: bool) {
        if in_txn {
            self.pending.push(change);
        } else {
            self.committed.push(change);
        }
    }

    /// Promote pending changes (COMMIT).
    pub fn commit(&mut self) {
        self.committed.append(&mut self.pending);
    }

    /// Discard pending changes (ROLLBACK).
    pub fn rollback(&mut self) {
        self.pending.clear();
    }

    /// Take all committed changes, leaving the log empty.
    pub fn drain(&mut self) -> Vec<ChangeRecord> {
        std::mem::take(&mut self.committed)
    }

    /// Committed changes waiting to be shipped.
    pub fn len(&self) -> usize {
        self.committed.len()
    }

    /// Whether no committed changes are waiting.
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: i64) -> Vec<Value> {
        vec![Value::Integer(v)]
    }

    #[test]
    fn autocommit_records_directly() {
        let mut log = ChangeLog::default();
        log.record(ChangeRecord::insert(row(1)), false);
        assert_eq!(log.len(), 1);
        let drained = log.drain();
        assert_eq!(drained, vec![ChangeRecord::insert(row(1))]);
        assert!(log.is_empty());
    }

    #[test]
    fn transactional_changes_wait_for_commit() {
        let mut log = ChangeLog::default();
        log.record(ChangeRecord::insert(row(1)), true);
        assert!(log.is_empty(), "uncommitted changes are invisible");
        log.commit();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn rollback_discards_pending() {
        let mut log = ChangeLog::default();
        log.record(ChangeRecord::delete(row(2)), true);
        log.rollback();
        log.commit();
        assert!(log.is_empty());
    }
}
