//! Scalar expression AST.

use std::fmt;

use crate::ident::Ident;

/// A scalar SQL expression.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // inline variant fields are self-describing
pub enum Expr {
    /// A literal constant.
    Literal(Literal),
    /// A (possibly qualified) column reference, e.g. `t.total_value`.
    Column(ColumnRef),
    /// Binary operation, e.g. `a + b`, `x AND y`.
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// Unary operation, e.g. `-x`, `NOT p`.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Function call: scalar (`COALESCE`, `ABS`, …) or aggregate
    /// (`SUM`, `COUNT`, …). `COUNT(*)` is a call with `star == true`.
    Function {
        name: Ident,
        args: Vec<Expr>,
        distinct: bool,
        star: bool,
    },
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_result: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`.
    Cast { expr: Box<Expr>, ty: TypeName },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr [NOT] IN (e1, e2, …)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT …)` — uncorrelated subquery membership.
    /// OpenIVM's MIN/MAX maintenance emits this to recompute dirty groups.
    InSubquery {
        expr: Box<Expr>,
        query: Box<crate::ast::Query>,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    ///
    /// Parentheses are not represented: the parser encodes grouping in the
    /// tree shape and the printer re-derives parentheses from operator
    /// precedence, so `parse(print(ast)) == ast` for every tree.
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
}

impl Expr {
    /// Convenience constructor for an unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef {
            table: None,
            column: Ident::new(name),
        })
    }

    /// Convenience constructor for a qualified column reference.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef {
            table: Some(Ident::new(table)),
            column: Ident::new(name),
        })
    }

    /// Convenience constructor for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Number(v.to_string()))
    }

    /// Convenience constructor for a string literal.
    pub fn string(v: impl Into<String>) -> Expr {
        Expr::Literal(Literal::String(v.into()))
    }

    /// Convenience constructor for a boolean literal.
    pub fn boolean(v: bool) -> Expr {
        Expr::Literal(Literal::Boolean(v))
    }

    /// Build `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op: BinaryOp::Eq,
            right: Box::new(other),
        }
    }

    /// Build `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op: BinaryOp::And,
            right: Box::new(other),
        }
    }

    /// Walk the expression tree, invoking `f` on every node (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Column(_) => {}
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Unary { expr, .. } => expr.visit(f),
            Expr::Function { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                if let Some(op) = operand {
                    op.visit(f);
                }
                for (w, t) in branches {
                    w.visit(f);
                    t.visit(f);
                }
                if let Some(e) = else_result {
                    e.visit(f);
                }
            }
            Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => expr.visit(f),
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.visit(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
        }
    }

    /// True when the expression contains a call to any of the given
    /// (upper-case) function names.
    pub fn contains_function(&self, names: &[&str]) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if let Expr::Function { name, .. } = e {
                if names.contains(&name.normalized().to_ascii_uppercase().as_str()) {
                    found = true;
                }
            }
        });
        found
    }
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Optional table or alias qualifier.
    pub table: Option<Ident>,
    /// Column name.
    pub column: Ident,
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Literal constants. Numbers keep their lexeme so the AST stays `Eq`/`Hash`;
/// the engine interprets them as `INTEGER` or `DOUBLE` at bind time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// SQL NULL.
    Null,
    /// TRUE or FALSE.
    Boolean(bool),
    /// Verbatim numeric lexeme, e.g. `"42"` or `"1.5e-2"`.
    Number(String),
    /// A string literal.
    String(String),
}

/// Binary operators, from lowest to highest precedence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `OR`.
    Or,
    /// `AND`.
    And,
    /// `=`.
    Eq,
    /// `<>` / `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    LtEq,
    /// `>`.
    Gt,
    /// `>=`.
    GtEq,
    /// `||` string concatenation.
    Concat,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Multiply,
    /// `/`.
    Divide,
    /// `%`.
    Modulo,
}

impl BinaryOp {
    /// SQL spelling of the operator.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Concat => "||",
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Modulo => "%",
        }
    }

    /// Parser precedence (higher binds tighter).
    pub fn precedence(&self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => 4,
            BinaryOp::Concat => 5,
            BinaryOp::Plus | BinaryOp::Minus => 6,
            BinaryOp::Multiply | BinaryOp::Divide | BinaryOp::Modulo => 7,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Logical NOT.
    Not,
    /// `-`.
    Minus,
    /// `+`.
    Plus,
}

impl UnaryOp {
    /// SQL spelling of the operator.
    pub fn as_str(&self) -> &'static str {
        match self {
            UnaryOp::Not => "NOT",
            UnaryOp::Minus => "-",
            UnaryOp::Plus => "+",
        }
    }
}

/// Type names appearing in DDL and `CAST`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeName {
    /// `BOOLEAN`.
    Boolean,
    /// `INTEGER` / `BIGINT`.
    Integer,
    /// `DOUBLE` / `FLOAT` / `REAL`.
    Double,
    /// `VARCHAR` / `TEXT`.
    Varchar,
    /// `DATE`.
    Date,
}

impl TypeName {
    /// Canonical SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            TypeName::Boolean => "BOOLEAN",
            TypeName::Integer => "INTEGER",
            TypeName::Double => "DOUBLE",
            TypeName::Varchar => "VARCHAR",
            TypeName::Date => "DATE",
        }
    }
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let e = Expr::col("a")
            .eq(Expr::int(1))
            .and(Expr::qcol("t", "b").eq(Expr::string("x")));
        match &e {
            Expr::Binary {
                op: BinaryOp::And, ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn visit_reaches_all_nodes() {
        let e = Expr::Case {
            operand: None,
            branches: vec![(Expr::col("m").eq(Expr::boolean(false)), Expr::col("v"))],
            else_result: Some(Box::new(Expr::Unary {
                op: UnaryOp::Minus,
                expr: Box::new(Expr::col("v")),
            })),
        };
        let mut count = 0;
        e.visit(&mut |_| count += 1);
        // case, (m = false), m, false, v, unary -, v
        assert_eq!(count, 7);
    }

    #[test]
    fn contains_function_detects_aggregates() {
        let e = Expr::Function {
            name: Ident::new("sum"),
            args: vec![Expr::col("x")],
            distinct: false,
            star: false,
        };
        assert!(e.contains_function(&["SUM", "COUNT"]));
        assert!(!e.contains_function(&["MIN"]));
    }

    #[test]
    fn precedence_ordering() {
        assert!(BinaryOp::Multiply.precedence() > BinaryOp::Plus.precedence());
        assert!(BinaryOp::Plus.precedence() > BinaryOp::Eq.precedence());
        assert!(BinaryOp::Eq.precedence() > BinaryOp::And.precedence());
        assert!(BinaryOp::And.precedence() > BinaryOp::Or.precedence());
    }
}
