//! Abstract syntax tree for the OpenIVM SQL subset.
//!
//! The AST is designed to round-trip: `parse(print(ast)) == ast` for every
//! tree the parser can produce (see the property tests in the crate root).
//! Numeric literals keep their lexeme so the whole tree derives `Eq`.

mod expr;
mod stmt;

pub use expr::{BinaryOp, ColumnRef, Expr, Literal, TypeName, UnaryOp};
pub use stmt::{
    Assignment, ColumnDef, ConflictAction, CreateIndex, CreateTable, CreateView, Cte, Delete, Drop,
    DropKind, Insert, InsertSource, JoinKind, OnConflict, OrderByExpr, Query, Select, SelectItem,
    SetExpr, SetOp, Statement, TableRef, Update,
};
