//! Statement-level AST: DDL, DML, and queries.

use crate::ast::expr::{Expr, TypeName};
use crate::ident::Ident;

/// Any SQL statement the parser understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// CREATE TABLE.
    CreateTable(CreateTable),
    /// CREATE [UNIQUE] INDEX.
    CreateIndex(CreateIndex),
    /// CREATE [MATERIALIZED] VIEW.
    CreateView(CreateView),
    /// DROP TABLE/VIEW/INDEX.
    Drop(Drop),
    /// INSERT.
    Insert(Insert),
    /// UPDATE.
    Update(Update),
    /// DELETE.
    Delete(Delete),
    /// A SELECT query.
    Query(Box<Query>),
    /// BEGIN [TRANSACTION].
    Begin,
    /// COMMIT.
    Commit,
    /// ROLLBACK.
    Rollback,
    /// EXPLAIN: render the plan of the wrapped statement instead of
    /// executing it.
    Explain(Box<Statement>),
}

/// `CREATE TABLE name (col TYPE [PRIMARY KEY], …, [PRIMARY KEY (…)])`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateTable {
    /// Object name.
    pub name: Ident,
    /// IF NOT EXISTS modifier.
    pub if_not_exists: bool,
    /// Column list.
    pub columns: Vec<ColumnDef>,
    /// Table-level primary key; single-column `PRIMARY KEY` modifiers are
    /// folded into this list by the parser.
    pub primary_key: Vec<Ident>,
}

/// One column definition inside `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Object name.
    pub name: Ident,
    /// Target type.
    pub ty: TypeName,
    /// NOT NULL constraint.
    pub not_null: bool,
}

/// `CREATE [UNIQUE] INDEX name ON table (columns…)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateIndex {
    /// Object name.
    pub name: Ident,
    /// Target table name.
    pub table: Ident,
    /// Column list.
    pub columns: Vec<Ident>,
    /// UNIQUE modifier.
    pub unique: bool,
}

/// `CREATE [MATERIALIZED] VIEW name AS query`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateView {
    /// Object name.
    pub name: Ident,
    /// MATERIALIZED keyword present.
    pub materialized: bool,
    /// The subquery.
    pub query: Box<Query>,
}

/// What a `DROP` statement targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropKind {
    /// DROP TABLE.
    Table,
    /// DROP VIEW.
    View,
    /// DROP INDEX.
    Index,
}

/// `DROP TABLE|VIEW|INDEX [IF EXISTS] name`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drop {
    /// Statement/join kind.
    pub kind: DropKind,
    /// Object name.
    pub name: Ident,
    /// IF EXISTS modifier.
    pub if_exists: bool,
}

/// `INSERT [OR REPLACE] INTO table [(cols)] VALUES …| SELECT …`
/// with optional `ON CONFLICT` clause (PostgreSQL-style upsert).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Insert {
    /// Target table name.
    pub table: Ident,
    /// Column list.
    pub columns: Vec<Ident>,
    /// Row source.
    pub source: InsertSource,
    /// DuckDB-style `INSERT OR REPLACE`.
    pub or_replace: bool,
    /// PostgreSQL-style `ON CONFLICT (cols) DO UPDATE SET …` / `DO NOTHING`.
    pub on_conflict: Option<OnConflict>,
}

/// The rows fed into an `INSERT`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertSource {
    /// Literal rows: `VALUES (…), (…)`.
    Values(Vec<Vec<Expr>>),
    /// A SELECT query.
    Query(Box<Query>),
}

/// `ON CONFLICT (target) DO …`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnConflict {
    /// Conflict target columns.
    pub target: Vec<Ident>,
    /// Conflict action.
    pub action: ConflictAction,
}

/// Action of an `ON CONFLICT` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConflictAction {
    /// `DO NOTHING`: skip conflicting rows.
    DoNothing,
    /// `DO UPDATE SET …`: update the existing row.
    DoUpdate(Vec<Assignment>),
}

/// `SET column = expr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Column name.
    pub column: Ident,
    /// Assigned expression.
    pub value: Expr,
}

/// `UPDATE table SET … [WHERE …]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Update {
    /// Target table name.
    pub table: Ident,
    /// SET assignments.
    pub assignments: Vec<Assignment>,
    /// WHERE predicate.
    pub selection: Option<Expr>,
}

/// `DELETE FROM table [WHERE …]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delete {
    /// Target table name.
    pub table: Ident,
    /// WHERE predicate.
    pub selection: Option<Expr>,
}

/// A full query: optional CTEs, a set-expression body, and trailing
/// ORDER BY / LIMIT / OFFSET.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Leading WITH common table expressions.
    pub ctes: Vec<Cte>,
    /// The set-expression body.
    pub body: SetExpr,
    /// ORDER BY keys.
    pub order_by: Vec<OrderByExpr>,
    /// LIMIT row count.
    pub limit: Option<Expr>,
    /// OFFSET row count.
    pub offset: Option<Expr>,
}

impl Query {
    /// Wrap a bare `SELECT` into a `Query` with no CTEs or ordering.
    pub fn from_select(select: Select) -> Query {
        Query {
            ctes: Vec::new(),
            body: SetExpr::Select(Box::new(select)),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }

    /// The names of every base table referenced anywhere in the query
    /// (excluding CTE names, which are local).
    pub fn referenced_tables(&self) -> Vec<Ident> {
        let mut out = Vec::new();
        let mut cte_names: Vec<Ident> = Vec::new();
        for cte in &self.ctes {
            collect_tables_set_expr(&cte.query.body, &cte_names, &mut out);
            cte_names.push(cte.name.clone());
        }
        collect_tables_set_expr(&self.body, &cte_names, &mut out);
        out.dedup();
        out
    }
}

fn collect_tables_set_expr(body: &SetExpr, ctes: &[Ident], out: &mut Vec<Ident>) {
    match body {
        SetExpr::Select(s) => {
            for t in &s.from {
                collect_tables_ref(t, ctes, out);
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            collect_tables_set_expr(left, ctes, out);
            collect_tables_set_expr(right, ctes, out);
        }
    }
}

fn collect_tables_ref(t: &TableRef, ctes: &[Ident], out: &mut Vec<Ident>) {
    match t {
        TableRef::Table { name, .. } => {
            if !ctes.contains(name) && !out.contains(name) {
                out.push(name.clone());
            }
        }
        TableRef::Subquery { query, .. } => collect_tables_set_expr(&query.body, ctes, out),
        TableRef::Join { left, right, .. } => {
            collect_tables_ref(left, ctes, out);
            collect_tables_ref(right, ctes, out);
        }
    }
}

/// One common table expression: `name AS (query)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cte {
    /// Object name.
    pub name: Ident,
    /// The subquery.
    pub query: Box<Query>,
}

/// The body of a query: a plain select or a set operation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // inline variant fields are self-describing
pub enum SetExpr {
    /// A plain SELECT block.
    Select(Box<Select>),
    /// A set operation over two bodies.
    SetOp {
        op: SetOp,
        all: bool,
        left: Box<SetExpr>,
        right: Box<SetExpr>,
    },
}

/// Set operations between selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// UNION [ALL].
    Union,
    /// EXCEPT [ALL].
    Except,
    /// INTERSECT [ALL].
    Intersect,
}

impl SetOp {
    /// SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            SetOp::Union => "UNION",
            SetOp::Except => "EXCEPT",
            SetOp::Intersect => "INTERSECT",
        }
    }
}

/// A `SELECT` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Select {
    /// DISTINCT qualifier.
    pub distinct: bool,
    /// SELECT list.
    pub projection: Vec<SelectItem>,
    /// FROM relations.
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub selection: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
}

impl Select {
    /// An empty select with the given projection (used by builders).
    pub fn new(projection: Vec<SelectItem>) -> Select {
        Select {
            distinct: false,
            projection,
            from: Vec::new(),
            selection: None,
            group_by: Vec::new(),
            having: None,
        }
    }
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // inline variant fields are self-describing
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(Ident),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<Ident> },
}

impl SelectItem {
    /// `expr` with no alias.
    pub fn expr(expr: Expr) -> SelectItem {
        SelectItem::Expr { expr, alias: None }
    }

    /// `expr AS alias`.
    pub fn aliased(expr: Expr, alias: impl Into<Ident>) -> SelectItem {
        SelectItem::Expr {
            expr,
            alias: Some(alias.into()),
        }
    }
}

/// A table reference in a FROM clause.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // inline variant fields are self-describing
pub enum TableRef {
    /// Base table or CTE reference, optionally aliased.
    Table { name: Ident, alias: Option<Ident> },
    /// Derived table: `(query) AS alias`.
    Subquery { query: Box<Query>, alias: Ident },
    /// A join tree node.
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        constraint: Option<Expr>,
    },
}

impl TableRef {
    /// Plain table reference without alias.
    pub fn table(name: impl Into<Ident>) -> TableRef {
        TableRef::Table {
            name: name.into(),
            alias: None,
        }
    }

    /// Table reference with alias.
    pub fn aliased(name: impl Into<Ident>, alias: impl Into<Ident>) -> TableRef {
        TableRef::Table {
            name: name.into(),
            alias: Some(alias.into()),
        }
    }
}

/// Join flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// INNER JOIN.
    Inner,
    /// LEFT [OUTER] JOIN.
    Left,
    /// RIGHT [OUTER] JOIN.
    Right,
    /// FULL [OUTER] JOIN.
    Full,
    /// CROSS JOIN.
    Cross,
}

impl JoinKind {
    /// SQL spelling (without the trailing `JOIN`).
    pub fn as_str(&self) -> &'static str {
        match self {
            JoinKind::Inner => "INNER",
            JoinKind::Left => "LEFT",
            JoinKind::Right => "RIGHT",
            JoinKind::Full => "FULL",
            JoinKind::Cross => "CROSS",
        }
    }
}

/// `expr [ASC|DESC]` in ORDER BY.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderByExpr {
    /// The operand expression.
    pub expr: Expr,
    /// Descending order.
    pub desc: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_tables_skips_ctes() {
        let inner = Query::from_select(Select {
            distinct: false,
            projection: vec![SelectItem::Wildcard],
            from: vec![TableRef::table("base")],
            selection: None,
            group_by: vec![],
            having: None,
        });
        let outer = Query {
            ctes: vec![Cte {
                name: Ident::new("c"),
                query: Box::new(inner),
            }],
            body: SetExpr::Select(Box::new(Select {
                distinct: false,
                projection: vec![SelectItem::Wildcard],
                from: vec![TableRef::Join {
                    left: Box::new(TableRef::table("c")),
                    right: Box::new(TableRef::table("other")),
                    kind: JoinKind::Inner,
                    constraint: Some(Expr::col("x").eq(Expr::col("y"))),
                }],
                selection: None,
                group_by: vec![],
                having: None,
            })),
            order_by: vec![],
            limit: None,
            offset: None,
        };
        let tables = outer.referenced_tables();
        assert_eq!(tables, vec![Ident::new("base"), Ident::new("other")]);
    }
}
