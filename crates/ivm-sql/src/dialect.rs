//! SQL dialects.
//!
//! Following the Coral-inspired design in the paper (§1, footnote 5), the
//! compiler lowers its rewritten plan into an abstract tree and prints it in
//! "the desired SQL dialect, chosen through a flag". The [`Dialect`] trait
//! captures the differences our generated SQL relies on; the printer and the
//! OpenIVM emitter consult it.

/// A target SQL dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dialect {
    /// DuckDB-flavoured SQL: `INSERT OR REPLACE` upserts.
    #[default]
    DuckDb,
    /// PostgreSQL-flavoured SQL: `INSERT … ON CONFLICT (…) DO UPDATE` upserts.
    Postgres,
}

impl Dialect {
    /// Human-readable dialect name.
    pub fn name(&self) -> &'static str {
        match self {
            Dialect::DuckDb => "duckdb",
            Dialect::Postgres => "postgres",
        }
    }

    /// Whether the dialect accepts DuckDB's `INSERT OR REPLACE` shorthand.
    /// PostgreSQL requires the explicit `ON CONFLICT` clause instead, so the
    /// OpenIVM emitter rewrites upserts before printing for Postgres.
    pub fn supports_insert_or_replace(&self) -> bool {
        matches!(self, Dialect::DuckDb)
    }

    /// Whether the dialect accepts `ON CONFLICT` clauses.
    pub fn supports_on_conflict(&self) -> bool {
        // DuckDB supports both spellings; Postgres only ON CONFLICT.
        true
    }

    /// Parse a dialect name (as used by compiler flags / CLI).
    pub fn parse(name: &str) -> Option<Dialect> {
        match name.to_ascii_lowercase().as_str() {
            "duckdb" | "duck" => Some(Dialect::DuckDb),
            "postgres" | "postgresql" | "pg" => Some(Dialect::Postgres),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_names() {
        assert_eq!(Dialect::parse("duckdb"), Some(Dialect::DuckDb));
        assert_eq!(Dialect::parse("PostgreSQL"), Some(Dialect::Postgres));
        assert_eq!(Dialect::parse("pg"), Some(Dialect::Postgres));
        assert_eq!(Dialect::parse("oracle"), None);
    }

    #[test]
    fn upsert_capabilities() {
        assert!(Dialect::DuckDb.supports_insert_or_replace());
        assert!(!Dialect::Postgres.supports_insert_or_replace());
        assert!(Dialect::Postgres.supports_on_conflict());
    }
}
