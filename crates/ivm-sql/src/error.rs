//! Error type shared by the lexer and parser.

use std::fmt;

/// An error produced while lexing or parsing SQL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    kind: SqlErrorKind,
    message: String,
    /// Byte offset into the original SQL where the problem was detected.
    offset: Option<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SqlErrorKind {
    Lex,
    Parse,
}

impl SqlError {
    pub(crate) fn lex(message: impl Into<String>, offset: usize) -> Self {
        SqlError {
            kind: SqlErrorKind::Lex,
            message: message.into(),
            offset: Some(offset),
        }
    }

    pub(crate) fn parse(message: impl Into<String>, offset: usize) -> Self {
        SqlError {
            kind: SqlErrorKind::Parse,
            message: message.into(),
            offset: Some(offset),
        }
    }

    /// Byte offset of the error in the input, when known.
    pub fn offset(&self) -> Option<usize> {
        self.offset
    }

    /// True when the error was raised by the tokenizer rather than the parser.
    pub fn is_lex_error(&self) -> bool {
        self.kind == SqlErrorKind::Lex
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.kind {
            SqlErrorKind::Lex => "lex error",
            SqlErrorKind::Parse => "parse error",
        };
        match self.offset {
            Some(off) => write!(f, "{phase} at byte {off}: {}", self.message),
            None => write!(f, "{phase}: {}", self.message),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_phase() {
        let e = SqlError::parse("expected FROM", 12);
        assert_eq!(e.to_string(), "parse error at byte 12: expected FROM");
        assert_eq!(e.offset(), Some(12));
        assert!(!e.is_lex_error());
    }
}
