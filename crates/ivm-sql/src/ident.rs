//! SQL identifiers with case-folding semantics.

use std::fmt;

/// A SQL identifier.
///
/// Unquoted identifiers compare case-insensitively (they are normalized to
/// lower case, mirroring PostgreSQL/DuckDB); quoted identifiers preserve
/// their exact spelling. Equality and hashing use the normalized form so
/// `FOO`, `foo`, and `"foo"` are the same identifier while `"Foo"` is not.
#[derive(Debug, Clone)]
pub struct Ident {
    value: String,
    quoted: bool,
}

impl Ident {
    /// An unquoted identifier; normalized to lower case.
    pub fn new(value: impl Into<String>) -> Self {
        let v: String = value.into();
        Ident {
            value: v.to_lowercase(),
            quoted: false,
        }
    }

    /// A quoted identifier; spelling preserved verbatim.
    pub fn quoted(value: impl Into<String>) -> Self {
        Ident {
            value: value.into(),
            quoted: true,
        }
    }

    /// The normalized name used for catalog lookups.
    pub fn normalized(&self) -> &str {
        &self.value
    }

    /// Whether the identifier was written with double quotes.
    pub fn is_quoted(&self) -> bool {
        self.quoted
    }

    /// True when the identifier can be printed without quoting: it is a
    /// lower-case word that does not collide with a keyword.
    pub fn needs_quoting(&self) -> bool {
        if self.value.is_empty() {
            return true;
        }
        let mut chars = self.value.chars();
        let first = chars.next().expect("non-empty");
        if !(first == '_' || first.is_ascii_lowercase()) {
            return true;
        }
        if !chars.all(|c| c == '_' || c.is_ascii_lowercase() || c.is_ascii_digit()) {
            return true;
        }
        match crate::token::Keyword::lookup(&self.value) {
            Some(kw) => !kw.is_soft(),
            None => false,
        }
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Self) -> bool {
        self.value == other.value
    }
}

impl Eq for Ident {}

impl std::hash::Hash for Ident {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.value.hash(state);
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.needs_quoting() {
            write!(f, "\"{}\"", self.value.replace('"', "\"\""))
        } else {
            f.write_str(&self.value)
        }
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

impl From<String> for Ident {
    fn from(s: String) -> Self {
        Ident::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unquoted_idents_fold_case() {
        assert_eq!(Ident::new("FOO"), Ident::new("foo"));
        assert_eq!(Ident::new("FOO").normalized(), "foo");
    }

    #[test]
    fn quoted_idents_preserve_case() {
        assert_ne!(Ident::quoted("Foo"), Ident::new("foo"));
        assert_eq!(Ident::quoted("foo"), Ident::new("foo"));
    }

    #[test]
    fn display_quotes_when_needed() {
        assert_eq!(Ident::new("simple_name").to_string(), "simple_name");
        assert_eq!(Ident::quoted("Mixed Case").to_string(), "\"Mixed Case\"");
        // Keywords must be quoted to survive a round trip.
        assert_eq!(Ident::new("select").to_string(), "\"select\"");
        // Embedded quotes double up.
        assert_eq!(Ident::quoted("a\"b").to_string(), "\"a\"\"b\"");
    }
}
