//! A hand-written SQL tokenizer.
//!
//! The lexer is deliberately simple: it produces the full token vector up
//! front (SQL statements are short relative to the data they touch), keeps
//! byte offsets for error reporting, and resolves `''` / `""` escapes.

use crate::error::SqlError;
use crate::token::{Keyword, Token, TokenKind};

/// Tokenize `sql` into a vector of tokens terminated by [`TokenKind::Eof`].
pub fn tokenize(sql: &str) -> Result<Vec<Token>, SqlError> {
    Lexer::new(sql).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            out: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, SqlError> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'-' if self.peek(1) == Some(b'-') => self.skip_line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.skip_block_comment(start)?,
                b'\'' => self.lex_string(start)?,
                b'"' => self.lex_quoted_ident(start)?,
                b'0'..=b'9' => self.lex_number(start),
                b'.' if self.peek(1).is_some_and(|c| c.is_ascii_digit()) => self.lex_number(start),
                _ if b == b'_' || (b as char).is_ascii_alphabetic() => self.lex_word(start),
                _ => self.lex_operator(start)?,
            }
        }
        self.out.push(Token {
            kind: TokenKind::Eof,
            offset: self.src.len(),
        });
        Ok(self.out)
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, offset: usize) {
        self.out.push(Token { kind, offset });
    }

    fn skip_line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn skip_block_comment(&mut self, start: usize) -> Result<(), SqlError> {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                self.pos += 2;
                depth -= 1;
                if depth == 0 {
                    return Ok(());
                }
            } else if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                self.pos += 2;
                depth += 1;
            } else {
                self.pos += 1;
            }
        }
        Err(SqlError::lex("unterminated block comment", start))
    }

    fn lex_string(&mut self, start: usize) -> Result<(), SqlError> {
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(SqlError::lex("unterminated string literal", start)),
                Some(b'\'') => {
                    if self.peek(1) == Some(b'\'') {
                        value.push('\'');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        break;
                    }
                }
                Some(_) => {
                    // Advance one full UTF-8 character.
                    let ch = self.src[self.pos..].chars().next().expect("in-bounds char");
                    value.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        self.push(TokenKind::String(value), start);
        Ok(())
    }

    fn lex_quoted_ident(&mut self, start: usize) -> Result<(), SqlError> {
        self.pos += 1;
        let mut value = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(SqlError::lex("unterminated quoted identifier", start)),
                Some(b'"') => {
                    if self.peek(1) == Some(b'"') {
                        value.push('"');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        break;
                    }
                }
                Some(_) => {
                    let ch = self.src[self.pos..].chars().next().expect("in-bounds char");
                    value.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        self.push(TokenKind::QuotedIdent(value), start);
        Ok(())
    }

    fn lex_number(&mut self, start: usize) {
        let mut seen_dot = false;
        let mut seen_exp = false;
        while let Some(b) = self.bytes.get(self.pos).copied() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !seen_dot && !seen_exp => {
                    seen_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !seen_exp => {
                    // Only treat as exponent when followed by digit or sign+digit.
                    let next = self.peek(1);
                    let next2 = self.peek(2);
                    let is_exp = match next {
                        Some(b'+') | Some(b'-') => next2.is_some_and(|c| c.is_ascii_digit()),
                        Some(c) => c.is_ascii_digit(),
                        None => false,
                    };
                    if !is_exp {
                        break;
                    }
                    seen_exp = true;
                    self.pos += 1;
                    if matches!(self.bytes.get(self.pos), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let lexeme = &self.src[start..self.pos];
        self.push(TokenKind::Number(lexeme.to_string()), start);
    }

    fn lex_word(&mut self, start: usize) {
        while let Some(b) = self.bytes.get(self.pos).copied() {
            if b == b'_' || (b as char).is_ascii_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let word = &self.src[start..self.pos];
        match Keyword::lookup(word) {
            Some(kw) => self.push(TokenKind::Keyword(kw), start),
            None => self.push(TokenKind::Ident(word.to_string()), start),
        }
    }

    fn lex_operator(&mut self, start: usize) -> Result<(), SqlError> {
        let b = self.bytes[self.pos];
        let (kind, len) = match b {
            b'=' => (TokenKind::Eq, 1),
            b'<' => match self.peek(1) {
                Some(b'=') => (TokenKind::LtEq, 2),
                Some(b'>') => (TokenKind::NotEq, 2),
                _ => (TokenKind::Lt, 1),
            },
            b'>' => match self.peek(1) {
                Some(b'=') => (TokenKind::GtEq, 2),
                _ => (TokenKind::Gt, 1),
            },
            b'!' if self.peek(1) == Some(b'=') => (TokenKind::NotEq, 2),
            b'+' => (TokenKind::Plus, 1),
            b'-' => (TokenKind::Minus, 1),
            b'*' => (TokenKind::Star, 1),
            b'/' => (TokenKind::Slash, 1),
            b'%' => (TokenKind::Percent, 1),
            b'|' if self.peek(1) == Some(b'|') => (TokenKind::StringConcat, 2),
            b'(' => (TokenKind::LParen, 1),
            b')' => (TokenKind::RParen, 1),
            b',' => (TokenKind::Comma, 1),
            b'.' => (TokenKind::Dot, 1),
            b';' => (TokenKind::Semicolon, 1),
            _ => {
                return Err(SqlError::lex(
                    format!(
                        "unexpected character {:?}",
                        self.src[start..].chars().next().unwrap()
                    ),
                    start,
                ))
            }
        };
        self.pos += len;
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Keyword as K;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_simple_select() {
        assert_eq!(
            kinds("SELECT a FROM t;"),
            vec![
                TokenKind::Keyword(K::Select),
                TokenKind::Ident("a".into()),
                TokenKind::Keyword(K::From),
                TokenKind::Ident("t".into()),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("1 2.5 .5 1e3 1.5e-2 2E+10"),
            vec![
                TokenKind::Number("1".into()),
                TokenKind::Number("2.5".into()),
                TokenKind::Number(".5".into()),
                TokenKind::Number("1e3".into()),
                TokenKind::Number("1.5e-2".into()),
                TokenKind::Number("2E+10".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn number_followed_by_ident_is_two_tokens() {
        // `1e` is not an exponent; it lexes as number then identifier.
        assert_eq!(
            kinds("1e"),
            vec![
                TokenKind::Number("1".into()),
                TokenKind::Ident("e".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_strings_with_escapes() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::String("it's".into()), TokenKind::Eof]
        );
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn lex_quoted_identifiers() {
        assert_eq!(
            kinds(r#""My ""Table""""#),
            vec![
                TokenKind::QuotedIdent("My \"Table\"".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            kinds("a <> b != c <= >= || . ,"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::NotEq,
                TokenKind::Ident("b".into()),
                TokenKind::NotEq,
                TokenKind::Ident("c".into()),
                TokenKind::LtEq,
                TokenKind::GtEq,
                TokenKind::StringConcat,
                TokenKind::Dot,
                TokenKind::Comma,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("SELECT -- a comment\n 1 /* block /* nested */ */ + 2"),
            vec![
                TokenKind::Keyword(K::Select),
                TokenKind::Number("1".into()),
                TokenKind::Plus,
                TokenKind::Number("2".into()),
                TokenKind::Eof,
            ]
        );
        assert!(tokenize("/* unterminated").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(
            kinds("'héllo ☃'"),
            vec![TokenKind::String("héllo ☃".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unexpected_character_errors() {
        let err = tokenize("SELECT @").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn offsets_point_at_token_starts() {
        let toks = tokenize("SELECT foo").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }
}
