//! # ivm-sql — SQL frontend for OpenIVM
//!
//! A self-contained SQL lexer, parser, AST, and dialect-aware printer for
//! the SQL subset that the OpenIVM compiler consumes (view definitions and
//! base-table DDL/DML) and produces (delta-table DDL and the incremental
//! propagation scripts of the paper's Listing 2).
//!
//! The crate plays the role DuckDB's parser plays in the paper, plus the
//! Coral-style dialect emission of footnote 5: the same AST prints as
//! DuckDB-flavoured or PostgreSQL-flavoured SQL.
//!
//! ## Quick example
//!
//! ```
//! use ivm_sql::{parse_statement, print_statement, Dialect};
//!
//! let ast = parse_statement(
//!     "CREATE MATERIALIZED VIEW query_groups AS \
//!      SELECT group_index, SUM(group_value) AS total_value \
//!      FROM groups GROUP BY group_index",
//! ).unwrap();
//! let sql = print_statement(&ast, Dialect::DuckDb);
//! assert!(sql.starts_with("CREATE MATERIALIZED VIEW query_groups"));
//! ```

#![warn(missing_docs)]

pub mod ast;
mod dialect;
mod error;
mod ident;
mod lexer;
mod parser;
mod printer;
pub mod token;

pub use dialect::Dialect;
pub use error::SqlError;
pub use ident::Ident;
pub use lexer::tokenize;
pub use parser::{parse_statement, parse_statements};
pub use printer::{print_expr, print_query, print_statement};
