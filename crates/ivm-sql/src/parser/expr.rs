//! Expression parsing with precedence climbing.

use crate::ast::{BinaryOp, ColumnRef, Expr, Literal, TypeName, UnaryOp};
use crate::error::SqlError;
use crate::ident::Ident;
use crate::parser::Parser;
use crate::token::{Keyword, TokenKind};

/// Precedence of prefix NOT: between OR/AND and the comparison operators.
const NOT_PREC: u8 = 3;

impl Parser {
    /// Parse a full scalar expression.
    pub(crate) fn parse_expr(&mut self) -> Result<Expr, SqlError> {
        self.parse_subexpr(0)
    }

    fn parse_subexpr(&mut self, min_prec: u8) -> Result<Expr, SqlError> {
        let mut lhs = self.parse_prefix()?;
        while let Some(prec) = self.infix_precedence() {
            if prec <= min_prec {
                break;
            }
            lhs = self.parse_infix(lhs, prec)?;
        }
        Ok(lhs)
    }

    /// Precedence of the operator at the cursor, if it can continue an
    /// expression.
    fn infix_precedence(&self) -> Option<u8> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Or) => Some(BinaryOp::Or.precedence()),
            TokenKind::Keyword(Keyword::And) => Some(BinaryOp::And.precedence()),
            TokenKind::Keyword(Keyword::Is) => Some(4),
            TokenKind::Keyword(Keyword::In)
            | TokenKind::Keyword(Keyword::Between)
            | TokenKind::Keyword(Keyword::Like) => Some(4),
            // `NOT IN`, `NOT BETWEEN`, `NOT LIKE`
            TokenKind::Keyword(Keyword::Not)
                if matches!(
                    self.peek_ahead(1),
                    TokenKind::Keyword(Keyword::In)
                        | TokenKind::Keyword(Keyword::Between)
                        | TokenKind::Keyword(Keyword::Like)
                ) =>
            {
                Some(4)
            }
            TokenKind::Eq
            | TokenKind::NotEq
            | TokenKind::Lt
            | TokenKind::LtEq
            | TokenKind::Gt
            | TokenKind::GtEq => Some(4),
            TokenKind::StringConcat => Some(BinaryOp::Concat.precedence()),
            TokenKind::Plus | TokenKind::Minus => Some(BinaryOp::Plus.precedence()),
            TokenKind::Star | TokenKind::Slash | TokenKind::Percent => {
                Some(BinaryOp::Multiply.precedence())
            }
            _ => None,
        }
    }

    fn parse_infix(&mut self, lhs: Expr, prec: u8) -> Result<Expr, SqlError> {
        // Handle the keyword-flavoured postfix/infix forms first.
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let negated = if self.check_kw(Keyword::Not)
            && matches!(
                self.peek_ahead(1),
                TokenKind::Keyword(Keyword::In)
                    | TokenKind::Keyword(Keyword::Between)
                    | TokenKind::Keyword(Keyword::Like)
            ) {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw(Keyword::In) {
            self.expect_token(&TokenKind::LParen)?;
            if self.check_kw(Keyword::Select) || self.check_kw(Keyword::With) {
                let query = self.parse_query()?;
                self.expect_token(&TokenKind::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(lhs),
                    query: Box::new(query),
                    negated,
                });
            }
            let list = self.parse_comma_separated(|p| p.parse_expr())?;
            self.expect_token(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw(Keyword::Between) {
            // BETWEEN bounds bind tighter than comparisons (and AND): a
            // bound containing `=`/`<`/… must be parenthesised.
            let low = self.parse_subexpr(4)?;
            self.expect_kw(Keyword::And)?;
            let high = self.parse_subexpr(4)?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw(Keyword::Like) {
            let pattern = self.parse_subexpr(4)?;
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                negated,
            });
        }

        let op = match self.advance() {
            TokenKind::Keyword(Keyword::Or) => BinaryOp::Or,
            TokenKind::Keyword(Keyword::And) => BinaryOp::And,
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::NotEq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::LtEq => BinaryOp::LtEq,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::GtEq => BinaryOp::GtEq,
            TokenKind::StringConcat => BinaryOp::Concat,
            TokenKind::Plus => BinaryOp::Plus,
            TokenKind::Minus => BinaryOp::Minus,
            TokenKind::Star => BinaryOp::Multiply,
            TokenKind::Slash => BinaryOp::Divide,
            TokenKind::Percent => BinaryOp::Modulo,
            other => {
                return Err(SqlError::parse(
                    format!("`{other}` is not an infix operator"),
                    self.offset(),
                ))
            }
        };
        let rhs = self.parse_subexpr(prec)?;
        Ok(Expr::Binary {
            left: Box::new(lhs),
            op,
            right: Box::new(rhs),
        })
    }

    fn parse_prefix(&mut self) -> Result<Expr, SqlError> {
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::Not) => {
                self.advance();
                let expr = self.parse_subexpr(NOT_PREC)?;
                Ok(Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(expr),
                })
            }
            TokenKind::Minus => {
                self.advance();
                let expr = self.parse_subexpr(8)?;
                Ok(Expr::Unary {
                    op: UnaryOp::Minus,
                    expr: Box::new(expr),
                })
            }
            TokenKind::Plus => {
                self.advance();
                let expr = self.parse_subexpr(8)?;
                Ok(Expr::Unary {
                    op: UnaryOp::Plus,
                    expr: Box::new(expr),
                })
            }
            TokenKind::Number(n) => {
                self.advance();
                Ok(Expr::Literal(Literal::Number(n)))
            }
            TokenKind::String(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::String(s)))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::Literal(Literal::Boolean(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::Literal(Literal::Boolean(false)))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.advance();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::Keyword(Keyword::Case) => self.parse_case(),
            TokenKind::Keyword(Keyword::Cast) => self.parse_cast(),
            TokenKind::LParen => {
                // Grouping parens are dropped: the tree shape preserves them.
                self.advance();
                let inner = self.parse_expr()?;
                self.expect_token(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(_)
            | TokenKind::QuotedIdent(_)
            | TokenKind::Keyword(
                Keyword::Key
                | Keyword::Date
                | Keyword::Text
                | Keyword::Index
                | Keyword::Replace
                | Keyword::Excluded
                | Keyword::Conflict
                | Keyword::Left
                | Keyword::Right,
            ) => self.parse_ident_led(),
            _ => Err(self.unexpected("expression")),
        }
    }

    /// Parse something starting with an identifier: a function call, or a
    /// (possibly qualified) column reference.
    fn parse_ident_led(&mut self) -> Result<Expr, SqlError> {
        // LEFT/RIGHT are reserved join keywords but also scalar functions;
        // allow them only in call position.
        let first = match self.peek().clone() {
            TokenKind::Keyword(kw @ (Keyword::Left | Keyword::Right))
                if matches!(self.peek_ahead(1), TokenKind::LParen) =>
            {
                self.advance();
                Ident::new(kw.as_str().to_lowercase())
            }
            _ => self.parse_ident()?,
        };
        if self.check_token(&TokenKind::LParen) {
            self.advance();
            let distinct = self.eat_kw(Keyword::Distinct);
            if self.eat_token(&TokenKind::Star) {
                self.expect_token(&TokenKind::RParen)?;
                return Ok(Expr::Function {
                    name: first,
                    args: vec![],
                    distinct,
                    star: true,
                });
            }
            let args = if self.check_token(&TokenKind::RParen) {
                vec![]
            } else {
                self.parse_comma_separated(|p| p.parse_expr())?
            };
            self.expect_token(&TokenKind::RParen)?;
            return Ok(Expr::Function {
                name: first,
                args,
                distinct,
                star: false,
            });
        }
        if self.check_token(&TokenKind::Dot) && !matches!(self.peek_ahead(1), TokenKind::Star) {
            self.advance();
            let column = self.parse_ident()?;
            return Ok(Expr::Column(ColumnRef {
                table: Some(first),
                column,
            }));
        }
        Ok(Expr::Column(ColumnRef {
            table: None,
            column: first,
        }))
    }

    fn parse_case(&mut self) -> Result<Expr, SqlError> {
        self.expect_kw(Keyword::Case)?;
        let operand = if self.check_kw(Keyword::When) {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_kw(Keyword::When) {
            let when = self.parse_expr()?;
            self.expect_kw(Keyword::Then)?;
            let then = self.parse_expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(self.unexpected("WHEN"));
        }
        let else_result = if self.eat_kw(Keyword::Else) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw(Keyword::End)?;
        Ok(Expr::Case {
            operand,
            branches,
            else_result,
        })
    }

    fn parse_cast(&mut self) -> Result<Expr, SqlError> {
        self.expect_kw(Keyword::Cast)?;
        self.expect_token(&TokenKind::LParen)?;
        let expr = self.parse_expr()?;
        self.expect_kw(Keyword::As)?;
        let ty = self.parse_type_name()?;
        self.expect_token(&TokenKind::RParen)?;
        Ok(Expr::Cast {
            expr: Box::new(expr),
            ty,
        })
    }

    /// Parse a type name in DDL or CAST position.
    pub(crate) fn parse_type_name(&mut self) -> Result<TypeName, SqlError> {
        let ty = match self.peek() {
            TokenKind::Keyword(Keyword::Boolean) => TypeName::Boolean,
            TokenKind::Keyword(Keyword::Int)
            | TokenKind::Keyword(Keyword::Integer)
            | TokenKind::Keyword(Keyword::Bigint) => TypeName::Integer,
            TokenKind::Keyword(Keyword::Double) => {
                self.advance();
                // Optional `PRECISION`.
                self.eat_kw(Keyword::Precision);
                return Ok(TypeName::Double);
            }
            TokenKind::Keyword(Keyword::Float) | TokenKind::Keyword(Keyword::Real) => {
                TypeName::Double
            }
            TokenKind::Keyword(Keyword::Varchar) | TokenKind::Keyword(Keyword::Text) => {
                self.advance();
                // Optional length, e.g. VARCHAR(20) — accepted and ignored.
                if self.eat_token(&TokenKind::LParen) {
                    match self.advance() {
                        TokenKind::Number(_) => {}
                        _ => return Err(self.unexpected("length")),
                    }
                    self.expect_token(&TokenKind::RParen)?;
                }
                return Ok(TypeName::Varchar);
            }
            TokenKind::Keyword(Keyword::Date) => TypeName::Date,
            _ => return Err(self.unexpected("type name")),
        };
        self.advance();
        Ok(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse_statement;

    fn expr(sql: &str) -> Expr {
        let stmt = parse_statement(&format!("SELECT {sql}")).unwrap();
        match stmt {
            Statement::Query(q) => match q.body {
                crate::ast::SetExpr::Select(s) => match s.projection.into_iter().next().unwrap() {
                    crate::ast::SelectItem::Expr { expr, .. } => expr,
                    other => panic!("unexpected projection {other:?}"),
                },
                other => panic!("unexpected body {other:?}"),
            },
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        assert_eq!(
            expr("1 + 2 * 3"),
            Expr::Binary {
                left: Box::new(Expr::int(1)),
                op: BinaryOp::Plus,
                right: Box::new(Expr::Binary {
                    left: Box::new(Expr::int(2)),
                    op: BinaryOp::Multiply,
                    right: Box::new(Expr::int(3)),
                }),
            }
        );
    }

    #[test]
    fn and_or_precedence() {
        // a OR b AND c  ==  a OR (b AND c)
        let e = expr("a OR b AND c");
        match e {
            Expr::Binary {
                op: BinaryOp::Or,
                right,
                ..
            } => {
                assert!(matches!(
                    *right,
                    Expr::Binary {
                        op: BinaryOp::And,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn not_precedence() {
        // NOT a = b  ==  NOT (a = b)
        let e = expr("NOT a = b");
        match e {
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => {
                assert!(matches!(
                    *expr,
                    Expr::Binary {
                        op: BinaryOp::Eq,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn case_with_operand_and_else() {
        let e = expr("CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' ELSE 'c' END");
        match e {
            Expr::Case {
                operand: Some(_),
                branches,
                else_result: Some(_),
            } => {
                assert_eq!(branches.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn searched_case_without_else() {
        let e = expr("CASE WHEN m = FALSE THEN -v ELSE v END");
        match e {
            Expr::Case {
                operand: None,
                branches,
                else_result: Some(_),
            } => {
                assert_eq!(branches.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn function_calls() {
        assert_eq!(
            expr("SUM(x)"),
            Expr::Function {
                name: Ident::new("sum"),
                args: vec![Expr::col("x")],
                distinct: false,
                star: false
            }
        );
        assert_eq!(
            expr("COUNT(*)"),
            Expr::Function {
                name: Ident::new("count"),
                args: vec![],
                distinct: false,
                star: true
            }
        );
        assert_eq!(
            expr("COUNT(DISTINCT x)"),
            Expr::Function {
                name: Ident::new("count"),
                args: vec![Expr::col("x")],
                distinct: true,
                star: false
            }
        );
        assert_eq!(
            expr("COALESCE(a, 0)"),
            Expr::Function {
                name: Ident::new("coalesce"),
                args: vec![Expr::col("a"), Expr::int(0)],
                distinct: false,
                star: false
            }
        );
    }

    #[test]
    fn qualified_columns() {
        assert_eq!(expr("t.c"), Expr::qcol("t", "c"));
        assert_eq!(
            expr("\"T\".\"C\""),
            Expr::Column(ColumnRef {
                table: Some(Ident::quoted("T")),
                column: Ident::quoted("C"),
            })
        );
    }

    #[test]
    fn is_null_and_in_and_between_and_like() {
        assert!(matches!(
            expr("x IS NULL"),
            Expr::IsNull { negated: false, .. }
        ));
        assert!(matches!(
            expr("x IS NOT NULL"),
            Expr::IsNull { negated: true, .. }
        ));
        assert!(matches!(
            expr("x IN (1, 2)"),
            Expr::InList { negated: false, .. }
        ));
        assert!(matches!(
            expr("x NOT IN (1)"),
            Expr::InList { negated: true, .. }
        ));
        assert!(matches!(
            expr("x BETWEEN 1 AND 2"),
            Expr::Between { negated: false, .. }
        ));
        assert!(matches!(
            expr("x NOT BETWEEN 1 AND 2"),
            Expr::Between { negated: true, .. }
        ));
        assert!(matches!(
            expr("x LIKE 'a%'"),
            Expr::Like { negated: false, .. }
        ));
        assert!(matches!(
            expr("x NOT LIKE 'a%'"),
            Expr::Like { negated: true, .. }
        ));
    }

    #[test]
    fn between_and_binds_to_between() {
        // The AND after BETWEEN belongs to BETWEEN, outer AND still works.
        let e = expr("x BETWEEN 1 AND 2 AND y");
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn cast_parses() {
        assert_eq!(
            expr("CAST(x AS DOUBLE PRECISION)"),
            Expr::Cast {
                expr: Box::new(Expr::col("x")),
                ty: TypeName::Double
            }
        );
        assert_eq!(
            expr("CAST(x AS VARCHAR(10))"),
            Expr::Cast {
                expr: Box::new(Expr::col("x")),
                ty: TypeName::Varchar
            }
        );
    }

    #[test]
    fn parens_shape_the_tree() {
        assert_eq!(
            expr("(1 + 2) * 3"),
            Expr::Binary {
                left: Box::new(Expr::Binary {
                    left: Box::new(Expr::int(1)),
                    op: BinaryOp::Plus,
                    right: Box::new(Expr::int(2)),
                }),
                op: BinaryOp::Multiply,
                right: Box::new(Expr::int(3)),
            }
        );
    }

    #[test]
    fn unary_minus_tighter_than_mul() {
        // -x * y parses as (-x) * y
        let e = expr("-x * y");
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinaryOp::Multiply,
                ..
            }
        ));
    }

    #[test]
    fn concat_operator() {
        let e = expr("a || b || c");
        // Left-associative chain.
        match e {
            Expr::Binary {
                op: BinaryOp::Concat,
                left,
                ..
            } => {
                assert!(matches!(
                    *left,
                    Expr::Binary {
                        op: BinaryOp::Concat,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
