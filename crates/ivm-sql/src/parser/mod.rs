//! Recursive-descent parser for the OpenIVM SQL subset.

mod expr;
mod select;
mod stmt;

use crate::ast::Statement;
use crate::error::SqlError;
use crate::ident::Ident;
use crate::lexer::tokenize;
use crate::token::{Keyword, Token, TokenKind};

/// Parse a string containing exactly one statement (a trailing `;` is
/// allowed).
pub fn parse_statement(sql: &str) -> Result<Statement, SqlError> {
    let mut stmts = parse_statements(sql)?;
    match stmts.len() {
        1 => Ok(stmts.pop().expect("checked length")),
        0 => Err(SqlError::parse("empty statement", 0)),
        n => Err(SqlError::parse(
            format!("expected one statement, found {n}"),
            0,
        )),
    }
}

/// Parse a `;`-separated script into statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>, SqlError> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser::new(tokens);
    let mut out = Vec::new();
    loop {
        while parser.eat_token(&TokenKind::Semicolon) {}
        if parser.at_eof() {
            break;
        }
        out.push(parser.parse_statement()?);
        if !parser.at_eof() && !parser.check_token(&TokenKind::Semicolon) {
            return Err(parser.unexpected("`;` or end of input"));
        }
    }
    Ok(out)
}

pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub(crate) fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    pub(crate) fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    pub(crate) fn peek_ahead(&self, n: usize) -> &TokenKind {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    pub(crate) fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    pub(crate) fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    pub(crate) fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    pub(crate) fn check_token(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    pub(crate) fn eat_token(&mut self, kind: &TokenKind) -> bool {
        if self.check_token(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_token(&mut self, kind: &TokenKind) -> Result<(), SqlError> {
        if self.eat_token(kind) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("`{kind}`")))
        }
    }

    pub(crate) fn check_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if *k == kw)
    }

    pub(crate) fn check_kw_ahead(&self, n: usize, kw: Keyword) -> bool {
        matches!(self.peek_ahead(n), TokenKind::Keyword(k) if *k == kw)
    }

    pub(crate) fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.check_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_kw(&mut self, kw: Keyword) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(kw.as_str()))
        }
    }

    /// Consume an identifier. Non-reserved keywords double as identifiers in
    /// a few places (e.g. a column named `key`), but we keep it strict and
    /// only allow a small allowlist used by our own generated SQL.
    pub(crate) fn parse_ident(&mut self) -> Result<Ident, SqlError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(Ident::new(name))
            }
            TokenKind::QuotedIdent(name) => {
                self.advance();
                Ok(Ident::quoted(name))
            }
            // Soft keywords usable as identifiers.
            TokenKind::Keyword(kw)
                if matches!(
                    kw,
                    Keyword::Key
                        | Keyword::Date
                        | Keyword::Text
                        | Keyword::Index
                        | Keyword::Replace
                        | Keyword::Excluded
                        | Keyword::Conflict
                ) =>
            {
                self.advance();
                Ok(Ident::new(kw.as_str().to_lowercase()))
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    /// Parse a comma-separated list using `f` for each element.
    pub(crate) fn parse_comma_separated<T>(
        &mut self,
        mut f: impl FnMut(&mut Parser) -> Result<T, SqlError>,
    ) -> Result<Vec<T>, SqlError> {
        let mut items = vec![f(self)?];
        while self.eat_token(&TokenKind::Comma) {
            items.push(f(self)?);
        }
        Ok(items)
    }

    pub(crate) fn unexpected(&self, expected: &str) -> SqlError {
        SqlError::parse(
            format!("expected {expected}, found `{}`", self.peek()),
            self.offset(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_statement_rejects_trailing_garbage() {
        assert!(parse_statement("SELECT 1 SELECT 2").is_err());
        assert!(parse_statement("SELECT 1; SELECT 2;").is_err());
        assert!(parse_statement("").is_err());
    }

    #[test]
    fn parse_statements_handles_script() {
        let stmts = parse_statements("SELECT 1; ; SELECT 2;").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_statement("SELECT 1;").is_ok());
        assert!(parse_statement("SELECT 1").is_ok());
    }
}
