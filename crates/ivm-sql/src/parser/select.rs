//! Query / SELECT parsing.

use crate::ast::{Cte, JoinKind, OrderByExpr, Query, Select, SelectItem, SetExpr, SetOp, TableRef};
use crate::error::SqlError;
use crate::parser::Parser;
use crate::token::{Keyword, TokenKind};

impl Parser {
    /// Parse a query: `[WITH …] select-body [ORDER BY …] [LIMIT …] [OFFSET …]`.
    pub(crate) fn parse_query(&mut self) -> Result<Query, SqlError> {
        let mut ctes = Vec::new();
        if self.eat_kw(Keyword::With) {
            ctes = self.parse_comma_separated(|p| {
                let name = p.parse_ident()?;
                p.expect_kw(Keyword::As)?;
                p.expect_token(&TokenKind::LParen)?;
                let query = p.parse_query()?;
                p.expect_token(&TokenKind::RParen)?;
                Ok(Cte {
                    name,
                    query: Box::new(query),
                })
            })?;
        }
        let body = self.parse_set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            order_by = self.parse_comma_separated(|p| {
                let expr = p.parse_expr()?;
                let desc = if p.eat_kw(Keyword::Desc) {
                    true
                } else {
                    p.eat_kw(Keyword::Asc);
                    false
                };
                Ok(OrderByExpr { expr, desc })
            })?;
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_kw(Keyword::Limit) {
            limit = Some(self.parse_expr()?);
        }
        if self.eat_kw(Keyword::Offset) {
            offset = Some(self.parse_expr()?);
        }
        Ok(Query {
            ctes,
            body,
            order_by,
            limit,
            offset,
        })
    }

    /// Parse a set expression with left-associative UNION/EXCEPT/INTERSECT.
    /// INTERSECT binds tighter than UNION/EXCEPT, per the SQL standard.
    fn parse_set_expr(&mut self) -> Result<SetExpr, SqlError> {
        let mut left = self.parse_intersect_operand()?;
        loop {
            let op = if self.check_kw(Keyword::Union) {
                SetOp::Union
            } else if self.check_kw(Keyword::Except) {
                SetOp::Except
            } else {
                break;
            };
            self.advance();
            let all = self.eat_kw(Keyword::All);
            let right = self.parse_intersect_operand()?;
            left = SetExpr::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_intersect_operand(&mut self) -> Result<SetExpr, SqlError> {
        let mut left = self.parse_set_primary()?;
        while self.check_kw(Keyword::Intersect) {
            self.advance();
            let all = self.eat_kw(Keyword::All);
            let right = self.parse_set_primary()?;
            left = SetExpr::SetOp {
                op: SetOp::Intersect,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_set_primary(&mut self) -> Result<SetExpr, SqlError> {
        if self.check_token(&TokenKind::LParen) {
            // Parenthesised set expression: `(SELECT …) UNION …`.
            self.advance();
            let inner = self.parse_set_expr()?;
            self.expect_token(&TokenKind::RParen)?;
            return Ok(inner);
        }
        Ok(SetExpr::Select(Box::new(self.parse_select()?)))
    }

    /// Parse one `SELECT` block (without trailing ORDER BY etc.).
    pub(crate) fn parse_select(&mut self) -> Result<Select, SqlError> {
        self.expect_kw(Keyword::Select)?;
        let distinct = self.eat_kw(Keyword::Distinct);
        let projection = self.parse_comma_separated(|p| p.parse_select_item())?;
        let mut from = Vec::new();
        if self.eat_kw(Keyword::From) {
            from = self.parse_comma_separated(|p| p.parse_table_ref())?;
        }
        let selection = if self.eat_kw(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            group_by = self.parse_comma_separated(|p| p.parse_expr())?;
        }
        let having = if self.eat_kw(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.eat_token(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if matches!(self.peek(), TokenKind::Ident(_) | TokenKind::QuotedIdent(_))
            && matches!(self.peek_ahead(1), TokenKind::Dot)
            && matches!(self.peek_ahead(2), TokenKind::Star)
        {
            let qualifier = self.parse_ident()?;
            self.expect_token(&TokenKind::Dot)?;
            self.expect_token(&TokenKind::Star)?;
            return Ok(SelectItem::QualifiedWildcard(qualifier));
        }
        let expr = self.parse_expr()?;
        // `AS alias` or a bare alias: `SELECT x total FROM t`.
        let has_alias = self.eat_kw(Keyword::As)
            || matches!(self.peek(), TokenKind::Ident(_) | TokenKind::QuotedIdent(_));
        let alias = if has_alias {
            Some(self.parse_ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    /// Parse a table reference including any chained joins.
    pub(crate) fn parse_table_ref(&mut self) -> Result<TableRef, SqlError> {
        let mut rel = self.parse_table_factor()?;
        loop {
            let kind = if self.eat_kw(Keyword::Cross) {
                self.expect_kw(Keyword::Join)?;
                JoinKind::Cross
            } else if self.eat_kw(Keyword::Inner) {
                self.expect_kw(Keyword::Join)?;
                JoinKind::Inner
            } else if self.check_kw(Keyword::Join) {
                self.advance();
                JoinKind::Inner
            } else if self.check_kw(Keyword::Left) {
                self.advance();
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Left
            } else if self.check_kw(Keyword::Right) {
                self.advance();
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Right
            } else if self.check_kw(Keyword::Full) {
                self.advance();
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Full
            } else {
                break;
            };
            let right = self.parse_table_factor()?;
            let constraint = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_kw(Keyword::On)?;
                Some(self.parse_expr()?)
            };
            rel = TableRef::Join {
                left: Box::new(rel),
                right: Box::new(right),
                kind,
                constraint,
            };
        }
        Ok(rel)
    }

    fn parse_table_factor(&mut self) -> Result<TableRef, SqlError> {
        if self.check_token(&TokenKind::LParen) {
            // Look through consecutive parens: a SELECT/WITH makes this a
            // derived table, anything else a parenthesised join tree.
            let mut depth = 0usize;
            while matches!(self.peek_ahead(depth), TokenKind::LParen) {
                depth += 1;
            }
            let is_query = matches!(
                self.peek_ahead(depth),
                TokenKind::Keyword(Keyword::Select) | TokenKind::Keyword(Keyword::With)
            );
            if is_query && depth == 1 {
                // `(query) AS alias` — the query may carry ORDER BY/LIMIT.
                self.advance();
                let query = self.parse_query()?;
                self.expect_token(&TokenKind::RParen)?;
                self.eat_kw(Keyword::As);
                let alias = self.parse_ident()?;
                return Ok(TableRef::Subquery {
                    query: Box::new(query),
                    alias,
                });
            }
            if is_query {
                // Deeper nesting: a parenthesised set expression, e.g.
                // `((SELECT … UNION ALL SELECT …) UNION ALL SELECT …) AS x`.
                // parse_query's set-operand parser consumes the balanced
                // parens itself.
                let query = self.parse_query()?;
                self.eat_kw(Keyword::As);
                let alias = self.parse_ident()?;
                return Ok(TableRef::Subquery {
                    query: Box::new(query),
                    alias,
                });
            }
            self.advance();
            let inner = self.parse_table_ref()?;
            self.expect_token(&TokenKind::RParen)?;
            return Ok(inner);
        }
        let name = self.parse_ident()?;
        // `AS alias` or a bare alias.
        let has_alias = self.eat_kw(Keyword::As)
            || matches!(self.peek(), TokenKind::Ident(_) | TokenKind::QuotedIdent(_));
        let alias = if has_alias {
            Some(self.parse_ident()?)
        } else {
            None
        };
        Ok(TableRef::Table { name, alias })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;
    use crate::ast::Statement;
    use crate::ident::Ident;
    use crate::parser::parse_statement;

    fn query(sql: &str) -> Query {
        match parse_statement(sql).unwrap() {
            Statement::Query(q) => *q,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_listing_1_view_query() {
        let q = query(
            "SELECT group_index, SUM(group_value) AS total_value \
             FROM groups GROUP BY group_index",
        );
        match q.body {
            SetExpr::Select(s) => {
                assert_eq!(s.projection.len(), 2);
                assert_eq!(s.group_by.len(), 1);
                assert_eq!(s.from, vec![TableRef::table("groups")]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_listing_2_cte_left_join() {
        let q = query(
            "WITH ivm_cte AS (
               SELECT group_index,
                 SUM(CASE WHEN _duckdb_ivm_multiplicity = FALSE
                     THEN -total_value ELSE total_value END) AS total_value
               FROM delta_query_groups
               GROUP BY group_index)
             SELECT query_groups.group_index,
               SUM(COALESCE(query_groups.total_value, 0) + delta_query_groups.total_value)
             FROM ivm_cte AS delta_query_groups
             LEFT JOIN query_groups
               ON query_groups.group_index = delta_query_groups.group_index
             GROUP BY query_groups.group_index",
        );
        assert_eq!(q.ctes.len(), 1);
        assert_eq!(q.ctes[0].name, Ident::new("ivm_cte"));
        match q.body {
            SetExpr::Select(s) => match &s.from[0] {
                TableRef::Join { kind, .. } => assert_eq!(*kind, JoinKind::Left),
                other => panic!("unexpected from {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn union_all_and_except() {
        let q = query("SELECT a FROM t UNION ALL SELECT a FROM u EXCEPT SELECT a FROM v");
        // Left-associative: (t UNION ALL u) EXCEPT v
        match q.body {
            SetExpr::SetOp {
                op: SetOp::Except,
                all: false,
                left,
                ..
            } => {
                assert!(matches!(
                    *left,
                    SetExpr::SetOp {
                        op: SetOp::Union,
                        all: true,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn intersect_binds_tighter() {
        let q = query("SELECT 1 UNION SELECT 2 INTERSECT SELECT 3");
        match q.body {
            SetExpr::SetOp {
                op: SetOp::Union,
                right,
                ..
            } => {
                assert!(matches!(
                    *right,
                    SetExpr::SetOp {
                        op: SetOp::Intersect,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn order_by_limit_offset() {
        let q = query("SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5");
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert!(!q.order_by[1].desc);
        assert!(q.limit.is_some());
        assert!(q.offset.is_some());
    }

    #[test]
    fn bare_aliases() {
        let q = query("SELECT x total FROM t tab");
        match q.body {
            SetExpr::Select(s) => {
                assert_eq!(
                    s.projection[0],
                    SelectItem::aliased(Expr::col("x"), "total")
                );
                assert_eq!(s.from[0], TableRef::aliased("t", "tab"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn qualified_wildcard() {
        let q = query("SELECT t.*, u.a FROM t, u");
        match q.body {
            SetExpr::Select(s) => {
                assert_eq!(
                    s.projection[0],
                    SelectItem::QualifiedWildcard(Ident::new("t"))
                );
                assert_eq!(s.from.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn derived_table() {
        let q = query("SELECT * FROM (SELECT a FROM t) AS sub WHERE sub.a > 1");
        match q.body {
            SetExpr::Select(s) => {
                assert!(
                    matches!(&s.from[0], TableRef::Subquery { alias, .. } if *alias == Ident::new("sub"))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn join_chain_kinds() {
        let q = query(
            "SELECT * FROM a JOIN b ON a.x = b.x \
             LEFT OUTER JOIN c ON b.y = c.y \
             FULL JOIN d ON c.z = d.z \
             CROSS JOIN e",
        );
        match q.body {
            SetExpr::Select(s) => {
                // Outermost join is the CROSS JOIN.
                match &s.from[0] {
                    TableRef::Join {
                        kind: JoinKind::Cross,
                        constraint: None,
                        left,
                        ..
                    } => {
                        assert!(matches!(
                            **left,
                            TableRef::Join {
                                kind: JoinKind::Full,
                                ..
                            }
                        ));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn having_clause() {
        let q = query("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1");
        match q.body {
            SetExpr::Select(s) => assert!(s.having.is_some()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_on_is_error() {
        assert!(parse_statement("SELECT * FROM a JOIN b").is_err());
    }
}
