//! Top-level statement parsing: DDL, DML, transactions.

use crate::ast::{
    Assignment, ColumnDef, ConflictAction, CreateIndex, CreateTable, CreateView, Delete, Drop,
    DropKind, Insert, InsertSource, OnConflict, Statement, Update,
};
use crate::error::SqlError;
use crate::ident::Ident;
use crate::parser::Parser;
use crate::token::{Keyword, TokenKind};

impl Parser {
    /// Parse one statement starting at the cursor.
    pub(crate) fn parse_statement(&mut self) -> Result<Statement, SqlError> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Select) | TokenKind::Keyword(Keyword::With) => {
                Ok(Statement::Query(Box::new(self.parse_query()?)))
            }
            TokenKind::LParen => Ok(Statement::Query(Box::new(self.parse_query()?))),
            TokenKind::Keyword(Keyword::Create) => self.parse_create(),
            TokenKind::Keyword(Keyword::Drop) => self.parse_drop(),
            TokenKind::Keyword(Keyword::Insert) => self.parse_insert(),
            TokenKind::Keyword(Keyword::Update) => self.parse_update(),
            TokenKind::Keyword(Keyword::Delete) => self.parse_delete(),
            TokenKind::Keyword(Keyword::Begin) => {
                self.advance();
                self.eat_kw(Keyword::Transaction);
                Ok(Statement::Begin)
            }
            TokenKind::Keyword(Keyword::Commit) => {
                self.advance();
                Ok(Statement::Commit)
            }
            TokenKind::Keyword(Keyword::Rollback) => {
                self.advance();
                Ok(Statement::Rollback)
            }
            TokenKind::Keyword(Keyword::Explain) => {
                self.advance();
                Ok(Statement::Explain(Box::new(self.parse_statement()?)))
            }
            _ => Err(self.unexpected("statement")),
        }
    }

    fn parse_create(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw(Keyword::Create)?;
        if self.eat_kw(Keyword::Table) {
            return self.parse_create_table();
        }
        if self.eat_kw(Keyword::Materialized) {
            self.expect_kw(Keyword::View)?;
            return self.parse_create_view(true);
        }
        if self.eat_kw(Keyword::View) {
            return self.parse_create_view(false);
        }
        let unique = self.eat_kw(Keyword::Unique);
        if self.eat_kw(Keyword::Index) {
            return self.parse_create_index(unique);
        }
        Err(self.unexpected("TABLE, VIEW, MATERIALIZED VIEW, or INDEX"))
    }

    fn parse_create_table(&mut self) -> Result<Statement, SqlError> {
        let if_not_exists = if self.eat_kw(Keyword::If) {
            self.expect_kw(Keyword::Not)?;
            self.expect_kw(Keyword::Exists)?;
            true
        } else {
            false
        };
        let name = self.parse_ident()?;
        self.expect_token(&TokenKind::LParen)?;
        let mut columns: Vec<ColumnDef> = Vec::new();
        let mut primary_key: Vec<Ident> = Vec::new();
        loop {
            if self.eat_kw(Keyword::Primary) {
                self.expect_kw(Keyword::Key)?;
                self.expect_token(&TokenKind::LParen)?;
                let cols = self.parse_comma_separated(|p| p.parse_ident())?;
                self.expect_token(&TokenKind::RParen)?;
                if !primary_key.is_empty() {
                    return Err(SqlError::parse("duplicate PRIMARY KEY", self.offset()));
                }
                primary_key = cols;
            } else {
                let col_name = self.parse_ident()?;
                let ty = self.parse_type_name()?;
                let mut not_null = false;
                loop {
                    if self.eat_kw(Keyword::Primary) {
                        self.expect_kw(Keyword::Key)?;
                        if !primary_key.is_empty() {
                            return Err(SqlError::parse("duplicate PRIMARY KEY", self.offset()));
                        }
                        primary_key = vec![col_name.clone()];
                        not_null = true;
                    } else if self.eat_kw(Keyword::Not) {
                        self.expect_kw(Keyword::Null)?;
                        not_null = true;
                    } else if self.eat_kw(Keyword::Unique) {
                        // Accepted and treated as informational.
                    } else {
                        break;
                    }
                }
                columns.push(ColumnDef {
                    name: col_name,
                    ty,
                    not_null,
                });
            }
            if !self.eat_token(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_token(&TokenKind::RParen)?;
        Ok(Statement::CreateTable(CreateTable {
            name,
            if_not_exists,
            columns,
            primary_key,
        }))
    }

    fn parse_create_view(&mut self, materialized: bool) -> Result<Statement, SqlError> {
        let name = self.parse_ident()?;
        self.expect_kw(Keyword::As)?;
        let query = self.parse_query()?;
        Ok(Statement::CreateView(CreateView {
            name,
            materialized,
            query: Box::new(query),
        }))
    }

    fn parse_create_index(&mut self, unique: bool) -> Result<Statement, SqlError> {
        let name = self.parse_ident()?;
        self.expect_kw(Keyword::On)?;
        let table = self.parse_ident()?;
        self.expect_token(&TokenKind::LParen)?;
        let columns = self.parse_comma_separated(|p| p.parse_ident())?;
        self.expect_token(&TokenKind::RParen)?;
        Ok(Statement::CreateIndex(CreateIndex {
            name,
            table,
            columns,
            unique,
        }))
    }

    fn parse_drop(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw(Keyword::Drop)?;
        let kind = if self.eat_kw(Keyword::Table) {
            DropKind::Table
        } else if self.eat_kw(Keyword::View) {
            DropKind::View
        } else if self.eat_kw(Keyword::Index) {
            DropKind::Index
        } else {
            return Err(self.unexpected("TABLE, VIEW, or INDEX"));
        };
        let if_exists = if self.eat_kw(Keyword::If) {
            self.expect_kw(Keyword::Exists)?;
            true
        } else {
            false
        };
        let name = self.parse_ident()?;
        Ok(Statement::Drop(Drop {
            kind,
            name,
            if_exists,
        }))
    }

    fn parse_insert(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw(Keyword::Insert)?;
        let or_replace = if self.eat_kw(Keyword::Or) {
            self.expect_kw(Keyword::Replace)?;
            true
        } else {
            false
        };
        self.expect_kw(Keyword::Into)?;
        let table = self.parse_ident()?;
        // Optional column list: disambiguate from `VALUES`/`SELECT` by
        // looking one token past the parenthesis.
        let mut columns = Vec::new();
        if self.check_token(&TokenKind::LParen)
            && !self.check_kw_ahead(1, Keyword::Select)
            && !self.check_kw_ahead(1, Keyword::With)
            && !self.check_kw_ahead(1, Keyword::Values)
        {
            self.advance();
            columns = self.parse_comma_separated(|p| p.parse_ident())?;
            self.expect_token(&TokenKind::RParen)?;
        }
        let source = if self.eat_kw(Keyword::Values) {
            let rows = self.parse_comma_separated(|p| {
                p.expect_token(&TokenKind::LParen)?;
                let row = p.parse_comma_separated(|p| p.parse_expr())?;
                p.expect_token(&TokenKind::RParen)?;
                Ok(row)
            })?;
            InsertSource::Values(rows)
        } else {
            InsertSource::Query(Box::new(self.parse_query()?))
        };
        let on_conflict = if self.eat_kw(Keyword::On) {
            self.expect_kw(Keyword::Conflict)?;
            let mut target = Vec::new();
            if self.eat_token(&TokenKind::LParen) {
                target = self.parse_comma_separated(|p| p.parse_ident())?;
                self.expect_token(&TokenKind::RParen)?;
            }
            self.expect_kw(Keyword::Do)?;
            let action = if self.eat_kw(Keyword::Nothing) {
                ConflictAction::DoNothing
            } else {
                self.expect_kw(Keyword::Update)?;
                self.expect_kw(Keyword::Set)?;
                let assignments = self.parse_comma_separated(|p| p.parse_assignment())?;
                ConflictAction::DoUpdate(assignments)
            };
            Some(OnConflict { target, action })
        } else {
            None
        };
        Ok(Statement::Insert(Insert {
            table,
            columns,
            source,
            or_replace,
            on_conflict,
        }))
    }

    fn parse_assignment(&mut self) -> Result<Assignment, SqlError> {
        let column = self.parse_ident()?;
        self.expect_token(&TokenKind::Eq)?;
        let value = self.parse_expr()?;
        Ok(Assignment { column, value })
    }

    fn parse_update(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw(Keyword::Update)?;
        let table = self.parse_ident()?;
        self.expect_kw(Keyword::Set)?;
        let assignments = self.parse_comma_separated(|p| p.parse_assignment())?;
        let selection = if self.eat_kw(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            assignments,
            selection,
        }))
    }

    fn parse_delete(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw(Keyword::Delete)?;
        self.expect_kw(Keyword::From)?;
        let table = self.parse_ident()?;
        let selection = if self.eat_kw(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete { table, selection }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, TypeName};
    use crate::parser::parse_statement;

    #[test]
    fn paper_listing_1_ddl() {
        let stmt =
            parse_statement("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
                .unwrap();
        match stmt {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.name, Ident::new("groups"));
                assert_eq!(ct.columns.len(), 2);
                assert_eq!(ct.columns[0].ty, TypeName::Varchar);
                assert_eq!(ct.columns[1].ty, TypeName::Integer);
                assert!(ct.primary_key.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_listing_1_materialized_view() {
        let stmt = parse_statement(
            "CREATE MATERIALIZED VIEW query_groups AS SELECT group_index, \
             SUM(group_value) AS total_value FROM groups GROUP BY group_index",
        )
        .unwrap();
        match stmt {
            Statement::CreateView(cv) => {
                assert!(cv.materialized);
                assert_eq!(cv.name, Ident::new("query_groups"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn primary_key_column_modifier() {
        let stmt =
            parse_statement("CREATE TABLE t (id INTEGER PRIMARY KEY, v DOUBLE NOT NULL)").unwrap();
        match stmt {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.primary_key, vec![Ident::new("id")]);
                assert!(ct.columns[0].not_null);
                assert!(ct.columns[1].not_null);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn table_level_primary_key() {
        let stmt =
            parse_statement("CREATE TABLE t (a INTEGER, b VARCHAR, PRIMARY KEY (a, b))").unwrap();
        match stmt {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.primary_key, vec![Ident::new("a"), Ident::new("b")]);
                assert_eq!(ct.columns.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_primary_key_rejected() {
        assert!(
            parse_statement("CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER PRIMARY KEY)")
                .is_err()
        );
    }

    #[test]
    fn insert_or_replace_with_query() {
        let stmt =
            parse_statement("INSERT OR REPLACE INTO v SELECT a, SUM(b) FROM d GROUP BY a").unwrap();
        match stmt {
            Statement::Insert(ins) => {
                assert!(ins.or_replace);
                assert!(matches!(ins.source, InsertSource::Query(_)));
                assert!(ins.columns.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn insert_values_with_columns() {
        let stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match stmt {
            Statement::Insert(ins) => {
                assert_eq!(ins.columns.len(), 2);
                match ins.source {
                    InsertSource::Values(rows) => assert_eq!(rows.len(), 2),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn insert_on_conflict_do_update() {
        let stmt = parse_statement(
            "INSERT INTO v (k, total) VALUES (1, 2) \
             ON CONFLICT (k) DO UPDATE SET total = excluded.total",
        )
        .unwrap();
        match stmt {
            Statement::Insert(ins) => {
                let oc = ins.on_conflict.unwrap();
                assert_eq!(oc.target, vec![Ident::new("k")]);
                match oc.action {
                    ConflictAction::DoUpdate(assignments) => {
                        assert_eq!(assignments.len(), 1);
                        assert_eq!(assignments[0].value, Expr::qcol("excluded", "total"));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn insert_on_conflict_do_nothing() {
        let stmt = parse_statement("INSERT INTO t VALUES (1) ON CONFLICT DO NOTHING").unwrap();
        match stmt {
            Statement::Insert(ins) => {
                assert_eq!(
                    ins.on_conflict,
                    Some(OnConflict {
                        target: vec![],
                        action: ConflictAction::DoNothing
                    })
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn update_and_delete() {
        let stmt = parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").unwrap();
        match stmt {
            Statement::Update(u) => {
                assert_eq!(u.assignments.len(), 2);
                assert!(u.selection.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        let stmt = parse_statement("DELETE FROM query_groups WHERE total_value = 0").unwrap();
        match stmt {
            Statement::Delete(d) => {
                assert_eq!(d.table, Ident::new("query_groups"));
                assert!(d.selection.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        let stmt = parse_statement("DELETE FROM delta_query_groups").unwrap();
        assert!(matches!(
            stmt,
            Statement::Delete(Delete {
                selection: None,
                ..
            })
        ));
    }

    #[test]
    fn transactions() {
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(
            parse_statement("BEGIN TRANSACTION").unwrap(),
            Statement::Begin
        );
        assert_eq!(parse_statement("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("ROLLBACK").unwrap(), Statement::Rollback);
    }

    #[test]
    fn drops() {
        let stmt = parse_statement("DROP TABLE IF EXISTS t").unwrap();
        assert_eq!(
            stmt,
            Statement::Drop(Drop {
                kind: DropKind::Table,
                name: Ident::new("t"),
                if_exists: true
            })
        );
        assert!(parse_statement("DROP VIEW v").is_ok());
        assert!(parse_statement("DROP INDEX i").is_ok());
        assert!(parse_statement("DROP SEQUENCE s").is_err());
    }

    #[test]
    fn create_index() {
        let stmt = parse_statement("CREATE UNIQUE INDEX idx ON v (k1, k2)").unwrap();
        match stmt {
            Statement::CreateIndex(ci) => {
                assert!(ci.unique);
                assert_eq!(ci.columns.len(), 2);
                assert_eq!(ci.table, Ident::new("v"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn create_table_if_not_exists() {
        let stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (a INTEGER)").unwrap();
        match stmt {
            Statement::CreateTable(ct) => assert!(ct.if_not_exists),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn plain_view() {
        let stmt = parse_statement("CREATE VIEW v AS SELECT 1").unwrap();
        match stmt {
            Statement::CreateView(cv) => assert!(!cv.materialized),
            other => panic!("unexpected {other:?}"),
        }
    }
}
