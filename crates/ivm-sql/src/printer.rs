//! AST → SQL string printing.
//!
//! The printer is the final stage of the Coral-style lowering: the OpenIVM
//! compiler builds dialect-appropriate ASTs and this module turns them into
//! strings. Parentheses around sub-expressions are re-derived from operator
//! precedence, which gives the round-trip property `parse(print(ast)) == ast`
//! (checked by property tests).

use std::fmt::Write as _;

use crate::ast::{
    Assignment, ConflictAction, Expr, InsertSource, Literal, OrderByExpr, Query, Select,
    SelectItem, SetExpr, Statement, TableRef, UnaryOp,
};
use crate::dialect::Dialect;

/// Print a statement in the given dialect. The output has no trailing `;`.
pub fn print_statement(stmt: &Statement, dialect: Dialect) -> String {
    let mut p = Printer {
        out: String::new(),
        _dialect: dialect,
    };
    p.statement(stmt);
    p.out
}

/// Print an expression in the given dialect.
pub fn print_expr(expr: &Expr, dialect: Dialect) -> String {
    let mut p = Printer {
        out: String::new(),
        _dialect: dialect,
    };
    p.expr(expr, 0);
    p.out
}

/// Print a query in the given dialect.
pub fn print_query(query: &Query, dialect: Dialect) -> String {
    let mut p = Printer {
        out: String::new(),
        _dialect: dialect,
    };
    p.query(query);
    p.out
}

struct Printer {
    out: String,
    // The two dialects currently print identically at the syntax level;
    // dialect-specific upsert *structure* is chosen upstream by the emitter.
    // Kept so new dialect-specific spellings have a single insertion point.
    _dialect: Dialect,
}

impl Printer {
    fn statement(&mut self, stmt: &Statement) {
        match stmt {
            Statement::CreateTable(ct) => {
                self.push("CREATE TABLE ");
                if ct.if_not_exists {
                    self.push("IF NOT EXISTS ");
                }
                let _ = write!(self.out, "{} (", ct.name);
                for (i, col) in ct.columns.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    let _ = write!(self.out, "{} {}", col.name, col.ty);
                    if col.not_null {
                        self.push(" NOT NULL");
                    }
                }
                if !ct.primary_key.is_empty() {
                    self.push(", PRIMARY KEY (");
                    self.ident_list(&ct.primary_key);
                    self.push(")");
                }
                self.push(")");
            }
            Statement::CreateIndex(ci) => {
                self.push("CREATE ");
                if ci.unique {
                    self.push("UNIQUE ");
                }
                let _ = write!(self.out, "INDEX {} ON {} (", ci.name, ci.table);
                self.ident_list(&ci.columns);
                self.push(")");
            }
            Statement::CreateView(cv) => {
                self.push("CREATE ");
                if cv.materialized {
                    self.push("MATERIALIZED ");
                }
                let _ = write!(self.out, "VIEW {} AS ", cv.name);
                self.query(&cv.query);
            }
            Statement::Drop(d) => {
                self.push("DROP ");
                self.push(match d.kind {
                    crate::ast::DropKind::Table => "TABLE ",
                    crate::ast::DropKind::View => "VIEW ",
                    crate::ast::DropKind::Index => "INDEX ",
                });
                if d.if_exists {
                    self.push("IF EXISTS ");
                }
                let _ = write!(self.out, "{}", d.name);
            }
            Statement::Insert(ins) => {
                self.push("INSERT ");
                if ins.or_replace {
                    self.push("OR REPLACE ");
                }
                let _ = write!(self.out, "INTO {}", ins.table);
                if !ins.columns.is_empty() {
                    self.push(" (");
                    self.ident_list(&ins.columns);
                    self.push(")");
                }
                self.push(" ");
                match &ins.source {
                    InsertSource::Values(rows) => {
                        self.push("VALUES ");
                        for (i, row) in rows.iter().enumerate() {
                            if i > 0 {
                                self.push(", ");
                            }
                            self.push("(");
                            self.expr_list(row);
                            self.push(")");
                        }
                    }
                    InsertSource::Query(q) => self.query(q),
                }
                if let Some(oc) = &ins.on_conflict {
                    self.push(" ON CONFLICT");
                    if !oc.target.is_empty() {
                        self.push(" (");
                        self.ident_list(&oc.target);
                        self.push(")");
                    }
                    match &oc.action {
                        ConflictAction::DoNothing => self.push(" DO NOTHING"),
                        ConflictAction::DoUpdate(assignments) => {
                            self.push(" DO UPDATE SET ");
                            self.assignments(assignments);
                        }
                    }
                }
            }
            Statement::Update(u) => {
                let _ = write!(self.out, "UPDATE {} SET ", u.table);
                self.assignments(&u.assignments);
                if let Some(sel) = &u.selection {
                    self.push(" WHERE ");
                    self.expr(sel, 0);
                }
            }
            Statement::Delete(d) => {
                let _ = write!(self.out, "DELETE FROM {}", d.table);
                if let Some(sel) = &d.selection {
                    self.push(" WHERE ");
                    self.expr(sel, 0);
                }
            }
            Statement::Query(q) => self.query(q),
            Statement::Explain(inner) => {
                self.push("EXPLAIN ");
                self.statement(inner);
            }
            Statement::Begin => self.push("BEGIN"),
            Statement::Commit => self.push("COMMIT"),
            Statement::Rollback => self.push("ROLLBACK"),
        }
    }

    fn query(&mut self, q: &Query) {
        if !q.ctes.is_empty() {
            self.push("WITH ");
            for (i, cte) in q.ctes.iter().enumerate() {
                if i > 0 {
                    self.push(", ");
                }
                let _ = write!(self.out, "{} AS (", cte.name);
                self.query(&cte.query);
                self.push(")");
            }
            self.push(" ");
        }
        self.set_expr(&q.body);
        if !q.order_by.is_empty() {
            self.push(" ORDER BY ");
            for (i, OrderByExpr { expr, desc }) in q.order_by.iter().enumerate() {
                if i > 0 {
                    self.push(", ");
                }
                self.expr(expr, 0);
                if *desc {
                    self.push(" DESC");
                }
            }
        }
        if let Some(limit) = &q.limit {
            self.push(" LIMIT ");
            self.expr(limit, 0);
        }
        if let Some(offset) = &q.offset {
            self.push(" OFFSET ");
            self.expr(offset, 0);
        }
    }

    fn set_expr(&mut self, body: &SetExpr) {
        match body {
            SetExpr::Select(s) => self.select(s),
            SetExpr::SetOp {
                op,
                all,
                left,
                right,
            } => {
                // Parenthesise operands that are themselves set ops, so the
                // association survives the round trip.
                self.set_operand(left, *op);
                let _ = write!(self.out, " {} ", op.as_str());
                if *all {
                    self.push("ALL ");
                }
                self.set_operand_right(right, *op);
            }
        }
    }

    fn set_operand(&mut self, body: &SetExpr, _parent: crate::ast::SetOp) {
        match body {
            SetExpr::Select(s) => self.select(s),
            SetExpr::SetOp { .. } => {
                self.push("(");
                self.set_expr(body);
                self.push(")");
            }
        }
    }

    fn set_operand_right(&mut self, body: &SetExpr, parent: crate::ast::SetOp) {
        self.set_operand(body, parent);
    }

    fn select(&mut self, s: &Select) {
        self.push("SELECT ");
        if s.distinct {
            self.push("DISTINCT ");
        }
        for (i, item) in s.projection.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            match item {
                SelectItem::Wildcard => self.push("*"),
                SelectItem::QualifiedWildcard(q) => {
                    let _ = write!(self.out, "{q}.*");
                }
                SelectItem::Expr { expr, alias } => {
                    self.expr(expr, 0);
                    if let Some(a) = alias {
                        let _ = write!(self.out, " AS {a}");
                    }
                }
            }
        }
        if !s.from.is_empty() {
            self.push(" FROM ");
            for (i, t) in s.from.iter().enumerate() {
                if i > 0 {
                    self.push(", ");
                }
                self.table_ref(t);
            }
        }
        if let Some(sel) = &s.selection {
            self.push(" WHERE ");
            self.expr(sel, 0);
        }
        if !s.group_by.is_empty() {
            self.push(" GROUP BY ");
            self.expr_list(&s.group_by);
        }
        if let Some(h) = &s.having {
            self.push(" HAVING ");
            self.expr(h, 0);
        }
    }

    fn table_ref(&mut self, t: &TableRef) {
        match t {
            TableRef::Table { name, alias } => {
                let _ = write!(self.out, "{name}");
                if let Some(a) = alias {
                    let _ = write!(self.out, " AS {a}");
                }
            }
            TableRef::Subquery { query, alias } => {
                self.push("(");
                self.query(query);
                let _ = write!(self.out, ") AS {alias}");
            }
            TableRef::Join {
                left,
                right,
                kind,
                constraint,
            } => {
                self.table_ref(left);
                let _ = write!(self.out, " {} JOIN ", kind.as_str());
                // Right side of a join must not itself be a bare join chain
                // (the parser builds left-deep trees); parenthesise if so.
                if matches!(**right, TableRef::Join { .. }) {
                    self.push("(");
                    self.table_ref(right);
                    self.push(")");
                } else {
                    self.table_ref(right);
                }
                if let Some(c) = constraint {
                    self.push(" ON ");
                    self.expr(c, 0);
                }
            }
        }
    }

    fn assignments(&mut self, assignments: &[Assignment]) {
        for (i, a) in assignments.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            let _ = write!(self.out, "{} = ", a.column);
            self.expr(&a.value, 0);
        }
    }

    /// Print `expr`, parenthesising when its precedence is at or below
    /// `min_prec` (the binding strength required by the parent context).
    fn expr(&mut self, e: &Expr, min_prec: u8) {
        let prec = expr_precedence(e);
        let needs_parens = prec < min_prec;
        if needs_parens {
            self.push("(");
        }
        self.expr_inner(e);
        if needs_parens {
            self.push(")");
        }
    }

    fn expr_inner(&mut self, e: &Expr) {
        match e {
            Expr::Literal(lit) => self.literal(lit),
            Expr::Column(c) => {
                let _ = write!(self.out, "{c}");
            }
            Expr::Binary { left, op, right } => {
                let prec = op.precedence();
                // Left-associative: left child may be equal precedence,
                // right child must bind strictly tighter.
                self.expr(left, prec);
                let _ = write!(self.out, " {} ", op.as_str());
                self.expr(right, prec + 1);
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => {
                    self.push("NOT ");
                    self.expr(expr, 4);
                }
                UnaryOp::Minus | UnaryOp::Plus => {
                    self.push(op.as_str());
                    // 9 forces parens around a nested unary so `-(-x)` never
                    // prints as the line comment `--x`.
                    self.expr(expr, 9);
                }
            },
            Expr::Function {
                name,
                args,
                distinct,
                star,
            } => {
                let _ = write!(self.out, "{name}(");
                if *star {
                    self.push("*");
                } else {
                    if *distinct {
                        self.push("DISTINCT ");
                    }
                    self.expr_list(args);
                }
                self.push(")");
            }
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                self.push("CASE");
                if let Some(op) = operand {
                    self.push(" ");
                    self.expr(op, 0);
                }
                for (when, then) in branches {
                    self.push(" WHEN ");
                    self.expr(when, 0);
                    self.push(" THEN ");
                    self.expr(then, 0);
                }
                if let Some(els) = else_result {
                    self.push(" ELSE ");
                    self.expr(els, 0);
                }
                self.push(" END");
            }
            Expr::Cast { expr, ty } => {
                self.push("CAST(");
                self.expr(expr, 0);
                let _ = write!(self.out, " AS {ty})");
            }
            Expr::IsNull { expr, negated } => {
                self.expr(expr, 5);
                self.push(if *negated { " IS NOT NULL" } else { " IS NULL" });
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                self.expr(expr, 5);
                self.push(if *negated { " NOT IN (" } else { " IN (" });
                self.expr_list(list);
                self.push(")");
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                self.expr(expr, 5);
                self.push(if *negated { " NOT IN (" } else { " IN (" });
                self.query(query);
                self.push(")");
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                self.expr(expr, 5);
                self.push(if *negated {
                    " NOT BETWEEN "
                } else {
                    " BETWEEN "
                });
                // Bounds parse at comparison precedence: anything at or
                // below it needs parens to survive the round trip.
                self.expr(low, 5);
                self.push(" AND ");
                self.expr(high, 5);
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                self.expr(expr, 5);
                self.push(if *negated { " NOT LIKE " } else { " LIKE " });
                self.expr(pattern, 5);
            }
        }
    }

    fn literal(&mut self, lit: &Literal) {
        match lit {
            Literal::Null => self.push("NULL"),
            Literal::Boolean(true) => self.push("TRUE"),
            Literal::Boolean(false) => self.push("FALSE"),
            Literal::Number(n) => self.push(n),
            Literal::String(s) => {
                let _ = write!(self.out, "'{}'", s.replace('\'', "''"));
            }
        }
    }

    fn expr_list(&mut self, exprs: &[Expr]) {
        for (i, e) in exprs.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            self.expr(e, 0);
        }
    }

    fn ident_list(&mut self, idents: &[crate::ident::Ident]) {
        for (i, id) in idents.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            let _ = write!(self.out, "{id}");
        }
    }

    fn push(&mut self, s: &str) {
        self.out.push_str(s);
    }
}

/// Precedence of an expression node as the *parent* sees it. Postfix
/// predicates (IS NULL, IN, BETWEEN, LIKE) share the comparison level; all
/// atoms (literals, columns, calls, CASE, CAST) are maximal.
fn expr_precedence(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => op.precedence(),
        Expr::Unary {
            op: UnaryOp::Not, ..
        } => 3,
        Expr::Unary { .. } => 8,
        Expr::IsNull { .. } | Expr::InList { .. } | Expr::Between { .. } | Expr::Like { .. } => 4,
        _ => u8::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    /// Round-trip helper: parse, print, parse again, compare trees.
    fn roundtrip(sql: &str) -> String {
        let ast = parse_statement(sql).unwrap();
        let printed = print_statement(&ast, Dialect::DuckDb);
        let ast2 = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(ast, ast2, "round-trip mismatch for {printed:?}");
        printed
    }

    #[test]
    fn print_simple_select() {
        assert_eq!(
            roundtrip("select a, sum(b) as total from t where x = 1 group by a having total > 0"),
            "SELECT a, sum(b) AS total FROM t WHERE x = 1 GROUP BY a HAVING total > 0"
        );
    }

    #[test]
    fn parens_rederived_for_precedence() {
        assert_eq!(roundtrip("SELECT (1 + 2) * 3"), "SELECT (1 + 2) * 3");
        assert_eq!(roundtrip("SELECT 1 + 2 * 3"), "SELECT 1 + 2 * 3");
        assert_eq!(roundtrip("SELECT NOT (a OR b)"), "SELECT NOT (a OR b)");
        assert_eq!(roundtrip("SELECT -(a + b)"), "SELECT -(a + b)");
        assert_eq!(roundtrip("SELECT a - (b - c)"), "SELECT a - (b - c)");
        // `=` chains left-associatively, so the left parens are redundant.
        assert_eq!(roundtrip("SELECT (a = b) = c"), "SELECT a = b = c");
    }

    #[test]
    fn double_negation_does_not_make_comments() {
        let printed = roundtrip("SELECT -(-x)");
        assert!(
            !printed.contains("--"),
            "printed {printed:?} contains a comment"
        );
    }

    #[test]
    fn print_paper_listing_2_shapes() {
        let printed = roundtrip(
            "INSERT INTO delta_query_groups \
             SELECT group_index, SUM(group_value) AS total_value, _duckdb_ivm_multiplicity \
             FROM delta_groups GROUP BY group_index, _duckdb_ivm_multiplicity",
        );
        assert!(printed.starts_with("INSERT INTO delta_query_groups SELECT"));
        roundtrip(
            "INSERT OR REPLACE INTO query_groups WITH ivm_cte AS (\
             SELECT group_index, SUM(CASE WHEN _duckdb_ivm_multiplicity = FALSE \
             THEN -total_value ELSE total_value END) AS total_value \
             FROM delta_query_groups GROUP BY group_index) \
             SELECT query_groups.group_index, \
             SUM(COALESCE(query_groups.total_value, 0) + delta_query_groups.total_value) \
             FROM ivm_cte AS delta_query_groups \
             LEFT JOIN query_groups ON query_groups.group_index = delta_query_groups.group_index \
             GROUP BY query_groups.group_index",
        );
        roundtrip("DELETE FROM query_groups WHERE total_value = 0");
        roundtrip("DELETE FROM delta_query_groups");
    }

    #[test]
    fn print_ddl() {
        assert_eq!(
            roundtrip("create table t (a integer primary key, b varchar not null)"),
            "CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR NOT NULL, PRIMARY KEY (a))"
        );
        assert_eq!(
            roundtrip("create unique index i on t (a, b)"),
            "CREATE UNIQUE INDEX i ON t (a, b)"
        );
        assert_eq!(
            roundtrip("create materialized view v as select 1"),
            "CREATE MATERIALIZED VIEW v AS SELECT 1"
        );
    }

    #[test]
    fn print_on_conflict() {
        assert_eq!(
            roundtrip(
                "insert into v (k, total) values (1, 2) \
                 on conflict (k) do update set total = excluded.total"
            ),
            "INSERT INTO v (k, total) VALUES (1, 2) \
             ON CONFLICT (k) DO UPDATE SET total = excluded.total"
        );
        roundtrip("insert into t values (1) on conflict do nothing");
    }

    #[test]
    fn print_set_ops_preserve_association() {
        // Right-nested set op must keep parens.
        let q = roundtrip("SELECT 1 UNION (SELECT 2 EXCEPT SELECT 3)");
        assert_eq!(q, "SELECT 1 UNION (SELECT 2 EXCEPT SELECT 3)");
        let q = roundtrip("SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3");
        assert_eq!(q, "(SELECT 1 UNION ALL SELECT 2) UNION ALL SELECT 3");
    }

    #[test]
    fn print_string_escapes() {
        assert_eq!(roundtrip("SELECT 'it''s'"), "SELECT 'it''s'");
    }

    #[test]
    fn print_order_limit() {
        assert_eq!(
            roundtrip("select a from t order by a desc, b limit 3 offset 1"),
            "SELECT a FROM t ORDER BY a DESC, b LIMIT 3 OFFSET 1"
        );
    }

    #[test]
    fn print_between_like_in() {
        roundtrip("SELECT x BETWEEN 1 AND 2 AND y");
        roundtrip("SELECT a NOT IN (1, 2, 3)");
        roundtrip("SELECT name LIKE 'a%' OR name NOT LIKE '%b'");
        roundtrip("SELECT x IS NOT NULL");
    }

    #[test]
    fn print_transactions_and_drop() {
        assert_eq!(roundtrip("begin transaction"), "BEGIN");
        assert_eq!(
            roundtrip("drop table if exists t"),
            "DROP TABLE IF EXISTS t"
        );
    }

    #[test]
    fn print_update() {
        assert_eq!(
            roundtrip("update t set a = a + 1 where id = 2"),
            "UPDATE t SET a = a + 1 WHERE id = 2"
        );
    }

    #[test]
    fn print_join_tree() {
        assert_eq!(
            roundtrip("select * from a join b on a.x = b.x left join c on b.y = c.y"),
            "SELECT * FROM a INNER JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        );
    }

    #[test]
    fn print_qualified_wildcard_and_distinct() {
        assert_eq!(
            roundtrip("select distinct t.* from t"),
            "SELECT DISTINCT t.* FROM t"
        );
        assert_eq!(
            roundtrip("select count(distinct x) from t"),
            "SELECT count(DISTINCT x) FROM t"
        );
    }
}
