//! Token definitions for the SQL lexer.

use std::fmt;

/// A single lexical token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// Byte offset of the token start in the original SQL text.
    pub offset: usize,
}

/// The kind of a lexical token.
///
/// Keywords are lexed as [`TokenKind::Keyword`] holding the canonical
/// upper-case spelling; identifiers keep their original spelling (quoted
/// identifiers preserve case, unquoted ones are case-folded at parse time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// A recognised SQL keyword, canonicalised to upper case.
    Keyword(Keyword),
    /// An unquoted identifier (original spelling preserved).
    Ident(String),
    /// A `"double quoted"` identifier.
    QuotedIdent(String),
    /// A numeric literal; the lexeme is kept verbatim so the AST stays `Eq`.
    Number(String),
    /// A `'single quoted'` string literal with `''` escapes resolved.
    String(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `||`
    StringConcat,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// End of input sentinel.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{}", k.as_str()),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::QuotedIdent(s) => write!(f, "\"{s}\""),
            TokenKind::Number(s) => write!(f, "{s}"),
            TokenKind::String(s) => write!(f, "'{s}'"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::NotEq => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::LtEq => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::GtEq => write!(f, ">="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::StringConcat => write!(f, "||"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

macro_rules! keywords {
    ($($variant:ident => $text:literal),+ $(,)?) => {
        /// Every keyword recognised by the lexer.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[allow(missing_docs)]
        pub enum Keyword {
            $($variant),+
        }

        impl Keyword {
            /// Canonical upper-case spelling.
            pub fn as_str(&self) -> &'static str {
                match self {
                    $(Keyword::$variant => $text),+
                }
            }

            /// Soft keywords may appear as plain identifiers (the parser
            /// accepts them in identifier position), so the printer never
            /// needs to quote them.
            pub fn is_soft(&self) -> bool {
                matches!(
                    self,
                    Keyword::Key
                        | Keyword::Date
                        | Keyword::Text
                        | Keyword::Index
                        | Keyword::Replace
                        | Keyword::Excluded
                        | Keyword::Conflict
                )
            }

            /// Look up an identifier-like lexeme; returns `None` when the
            /// word is not a keyword.
            pub fn lookup(word: &str) -> Option<Keyword> {
                // Keyword sets are small; an upper-cased linear probe through
                // a match is fast and keeps the list in one place.
                let upper = word.to_ascii_uppercase();
                match upper.as_str() {
                    $($text => Some(Keyword::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

keywords! {
    All => "ALL",
    And => "AND",
    As => "AS",
    Asc => "ASC",
    Begin => "BEGIN",
    Between => "BETWEEN",
    Bigint => "BIGINT",
    Boolean => "BOOLEAN",
    By => "BY",
    Case => "CASE",
    Cast => "CAST",
    Commit => "COMMIT",
    Conflict => "CONFLICT",
    Create => "CREATE",
    Cross => "CROSS",
    Date => "DATE",
    Delete => "DELETE",
    Desc => "DESC",
    Distinct => "DISTINCT",
    Do => "DO",
    Double => "DOUBLE",
    Drop => "DROP",
    Else => "ELSE",
    End => "END",
    Except => "EXCEPT",
    Excluded => "EXCLUDED",
    Exists => "EXISTS",
    Explain => "EXPLAIN",
    False => "FALSE",
    Float => "FLOAT",
    From => "FROM",
    Full => "FULL",
    Group => "GROUP",
    Having => "HAVING",
    If => "IF",
    In => "IN",
    Index => "INDEX",
    Inner => "INNER",
    Insert => "INSERT",
    Int => "INT",
    Integer => "INTEGER",
    Intersect => "INTERSECT",
    Into => "INTO",
    Is => "IS",
    Join => "JOIN",
    Key => "KEY",
    Left => "LEFT",
    Like => "LIKE",
    Limit => "LIMIT",
    Materialized => "MATERIALIZED",
    Not => "NOT",
    Nothing => "NOTHING",
    Null => "NULL",
    Offset => "OFFSET",
    On => "ON",
    Or => "OR",
    Order => "ORDER",
    Outer => "OUTER",
    Precision => "PRECISION",
    Primary => "PRIMARY",
    Real => "REAL",
    Replace => "REPLACE",
    Right => "RIGHT",
    Rollback => "ROLLBACK",
    Select => "SELECT",
    Set => "SET",
    Table => "TABLE",
    Text => "TEXT",
    Then => "THEN",
    Transaction => "TRANSACTION",
    True => "TRUE",
    Union => "UNION",
    Unique => "UNIQUE",
    Update => "UPDATE",
    Values => "VALUES",
    Varchar => "VARCHAR",
    View => "VIEW",
    When => "WHEN",
    Where => "WHERE",
    With => "WITH",
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::lookup("select"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("SELECT"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("selects"), None);
    }

    #[test]
    fn keyword_as_str_round_trips() {
        for kw in [Keyword::Materialized, Keyword::Union, Keyword::Replace] {
            assert_eq!(Keyword::lookup(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn token_display() {
        assert_eq!(TokenKind::NotEq.to_string(), "<>");
        assert_eq!(TokenKind::Keyword(Keyword::Select).to_string(), "SELECT");
        assert_eq!(TokenKind::String("a'b".into()).to_string(), "'a'b'");
    }
}
