//! Compiler explorer: inspect the SQL OpenIVM emits for every view class,
//! dialect, and upsert strategy — the demo's "examine the compiled output"
//! station.
//!
//! Run with `cargo run --example compiler_explorer`.

use openivm::ivm_core::{Dialect, IndexCreation, IvmCompiler, IvmFlags, UpsertStrategy};
use openivm::ivm_engine::Database;

fn main() {
    let mut db = Database::new();
    db.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE orders (id INTEGER, cust INTEGER, amount INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE customers (id INTEGER, name VARCHAR)")
        .unwrap();
    let compiler = IvmCompiler::new();

    let views = [
        (
            "Listing 1 (GROUP BY SUM)",
            "CREATE MATERIALIZED VIEW query_groups AS \
             SELECT group_index, SUM(group_value) AS total_value \
             FROM groups GROUP BY group_index",
        ),
        (
            "filtered projection",
            "CREATE MATERIALIZED VIEW big_groups AS \
             SELECT group_index, group_value FROM groups WHERE group_value > 10",
        ),
        (
            "MIN/MAX (recompute path)",
            "CREATE MATERIALIZED VIEW extrema AS \
             SELECT group_index, MIN(group_value) AS lo FROM groups GROUP BY group_index",
        ),
        (
            "join aggregate (3-term DBSP expansion)",
            "CREATE MATERIALIZED VIEW revenue AS \
             SELECT customers.name, SUM(orders.amount) AS total \
             FROM orders JOIN customers ON orders.cust = customers.id \
             GROUP BY customers.name",
        ),
    ];

    // Dialect fork: the same view compiled for DuckDB and for PostgreSQL.
    for dialect in [Dialect::DuckDb, Dialect::Postgres] {
        let flags = IvmFlags {
            dialect,
            ..IvmFlags::paper_defaults()
        };
        println!(
            "================ dialect: {} ================\n",
            dialect.name()
        );
        for (label, sql) in &views {
            let artifacts = compiler.compile_sql(sql, db.catalog(), &flags).unwrap();
            println!("---- {label} ({}) ----", artifacts.analysis.class.name());
            println!("{}", artifacts.to_script());
        }
    }

    // Strategy fork: the three Step-2 emission strategies side by side.
    println!("================ Step-2 strategies for Listing 1 ================\n");
    for strategy in [
        UpsertStrategy::LeftJoinUpsert,
        UpsertStrategy::UnionRegroup,
        UpsertStrategy::FullOuterJoin,
    ] {
        let flags = IvmFlags {
            upsert_strategy: strategy,
            index_creation: if strategy.needs_index() {
                IndexCreation::AfterPopulate
            } else {
                IndexCreation::None
            },
            ..IvmFlags::paper_defaults()
        };
        let artifacts = compiler
            .compile_sql(views[0].1, db.catalog(), &flags)
            .unwrap();
        println!("---- strategy: {} ----", strategy.name());
        for step in &artifacts.propagation.steps {
            if step.step == 2 {
                println!("{};", step.sql);
            }
        }
        println!();
    }
}
