//! Cross-system IVM: the paper's Figure 3 demonstration.
//!
//! A transactional workload runs on the OLTP engine (the PostgreSQL
//! stand-in); triggers capture deltas; the bridge ships them into the
//! analytical engine (the DuckDB stand-in), where OpenIVM-generated SQL
//! maintains a materialized revenue view.
//!
//! Run with `cargo run --example htap_pipeline`.

use openivm::ivm_htap::HtapPipeline;

fn main() {
    let mut htap = HtapPipeline::with_defaults();

    // Base tables mirrored across both systems, triggers installed.
    htap.mirror_table("CREATE TABLE orders (id INTEGER PRIMARY KEY, cust INTEGER, amount INTEGER)")
        .unwrap();
    htap.mirror_table("CREATE TABLE customers (id INTEGER PRIMARY KEY, name VARCHAR)")
        .unwrap();

    // The analytical view lives on the OLAP side only.
    htap.create_materialized_view(
        "CREATE MATERIALIZED VIEW revenue AS \
         SELECT cust, SUM(amount) AS total, COUNT(*) AS orders \
         FROM orders GROUP BY cust",
    )
    .unwrap();

    // --- OLTP workload: committed transactions, one rollback.
    htap.execute_oltp("INSERT INTO customers VALUES (1, 'ada'), (2, 'bob')")
        .unwrap();
    htap.execute_oltp("BEGIN").unwrap();
    htap.execute_oltp("INSERT INTO orders VALUES (100, 1, 250)")
        .unwrap();
    htap.execute_oltp("INSERT INTO orders VALUES (101, 2, 40)")
        .unwrap();
    htap.execute_oltp("COMMIT").unwrap();

    htap.execute_oltp("BEGIN").unwrap();
    htap.execute_oltp("INSERT INTO orders VALUES (102, 2, 9999)")
        .unwrap();
    htap.execute_oltp("ROLLBACK").unwrap(); // never reaches the OLAP side

    htap.execute_oltp("INSERT INTO orders VALUES (103, 1, 70)")
        .unwrap();
    htap.execute_oltp("UPDATE orders SET amount = 60 WHERE id = 101")
        .unwrap();

    // --- Ship deltas and query analytics on the OLAP side.
    let shipped = htap.sync().unwrap();
    println!("shipped {shipped} delta rows across systems");

    let result = htap.query_view("revenue").unwrap();
    println!("revenue per customer (maintained by the generated SQL):");
    for row in &result.rows {
        println!(
            "   cust {} -> total {} over {} orders",
            row[0], row[1], row[2]
        );
    }

    let report = htap.check_consistency().unwrap();
    println!(
        "pipeline consistency: {}",
        if report.is_consistent() {
            "OK"
        } else {
            "MISMATCH"
        }
    );
    let stats = htap.ship_stats();
    println!(
        "bridge stats: {} batches, {} rows",
        stats.batches, stats.rows
    );
}
