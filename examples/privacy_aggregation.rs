//! Decentralized privacy-preserving aggregation — the paper's RDDA
//! motivation (§1): "information from personal data stores flows into
//! centralized views, while preserving privacy constraints by guaranteeing
//! coarse-grained aggregation of sensitive attributes."
//!
//! Several personal OLTP stores hold raw activity records. Only deltas
//! flow to the central analytical store, where OpenIVM maintains a
//! materialized aggregate; the publisher then releases only groups with
//! enough contributors (k-anonymity-style coarsening). Raw rows never
//! leave the spokes except as the delta stream feeding the aggregate.
//!
//! Run with `cargo run --example privacy_aggregation`.

use openivm::ivm_core::{IvmFlags, IvmSession};
use openivm::ivm_oltp::OltpEngine;

const K_ANONYMITY: i64 = 3;

fn main() {
    // --- Spokes: one personal data store per user.
    let mut spokes: Vec<(String, OltpEngine)> = Vec::new();
    for user in ["ada", "bob", "cara", "dan", "eve"] {
        let mut store = OltpEngine::new();
        store
            .execute("CREATE TABLE activity (category VARCHAR, minutes INTEGER)")
            .unwrap();
        store.create_capture_trigger("activity").unwrap();
        spokes.push((user.to_string(), store));
    }

    // --- Hub: the central analytical store with the aggregate view.
    let mut hub = IvmSession::new(IvmFlags::paper_defaults());
    hub.execute("CREATE TABLE activity (category VARCHAR, minutes INTEGER)")
        .unwrap();
    hub.execute(
        "CREATE MATERIALIZED VIEW category_stats AS \
         SELECT category, SUM(minutes) AS total_minutes, COUNT(*) AS contributions \
         FROM activity GROUP BY category",
    )
    .unwrap();

    // --- Users record activity locally; one user revokes some data.
    let workload: &[(&str, &str)] = &[
        (
            "ada",
            "INSERT INTO activity VALUES ('running', 30), ('reading', 60)",
        ),
        ("bob", "INSERT INTO activity VALUES ('running', 45)"),
        (
            "cara",
            "INSERT INTO activity VALUES ('running', 20), ('chess', 90)",
        ),
        (
            "dan",
            "INSERT INTO activity VALUES ('running', 25), ('reading', 15)",
        ),
        (
            "eve",
            "INSERT INTO activity VALUES ('reading', 40), ('chess', 10)",
        ),
        // Right to erasure: bob deletes his record afterwards.
        ("bob", "DELETE FROM activity WHERE category = 'running'"),
    ];
    for (user, stmt) in workload {
        let store = &mut spokes.iter_mut().find(|(u, _)| u == user).unwrap().1;
        store.execute(stmt).unwrap();
    }

    // --- Ship deltas from every spoke into the hub (the cross-system hop).
    let mut shipped = 0usize;
    for (_, store) in &mut spokes {
        let changes = store.drain_changes("activity");
        let pairs: Vec<(Vec<openivm::ivm_engine::Value>, bool)> =
            changes.into_iter().map(|c| (c.row, c.insertion)).collect();
        shipped += pairs.len();
        if !pairs.is_empty() {
            hub.ingest_deltas("activity", &pairs).unwrap();
        }
    }
    println!(
        "shipped {shipped} delta rows from {} personal stores",
        spokes.len()
    );

    // --- Publish only coarse groups (k-anonymity threshold on the
    // maintained contribution count).
    let published = hub
        .execute(&format!(
            "SELECT category, total_minutes, contributions FROM category_stats \
             WHERE contributions >= {K_ANONYMITY} ORDER BY category"
        ))
        .unwrap();
    println!("published aggregates (groups with >= {K_ANONYMITY} contributions):");
    for row in &published.rows {
        println!(
            "   {}: {} minutes over {} contributions",
            row[0], row[1], row[2]
        );
    }
    let suppressed = hub
        .execute(&format!(
            "SELECT COUNT(*) FROM category_stats WHERE contributions < {K_ANONYMITY}"
        ))
        .unwrap();
    println!(
        "suppressed {} under-threshold groups (raw rows never left the spokes)",
        suppressed.scalar().unwrap()
    );

    assert!(hub.check_consistency("category_stats").unwrap());
    println!("hub view consistency: OK");
}
