//! Quickstart: the paper's Listing 1 & 2 end to end.
//!
//! Compiles the `query_groups` materialized view, prints the generated DDL
//! and the 4-step propagation script (compare with Listing 2 of the
//! paper), then replays §2's apple/banana example and shows the
//! incrementally-maintained view.
//!
//! Run with `cargo run --example quickstart`.

use openivm::ivm_core::{IvmCompiler, IvmFlags, IvmSession};

fn main() {
    // --- Listing 1: the schema and the materialized view definition.
    let ddl = "CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)";
    let view = "CREATE MATERIALIZED VIEW query_groups AS \
                SELECT group_index, SUM(group_value) AS total_value \
                FROM groups GROUP BY group_index";
    println!("-- Listing 1 input:\n{ddl};\n{view};\n");

    // --- Compile and show the emitted SQL (the demo lets visitors
    // "examine the compiled output").
    let mut session = IvmSession::new(IvmFlags::paper_defaults());
    session.execute(ddl).unwrap();

    let compiler = IvmCompiler::new();
    let artifacts = compiler
        .compile_sql(view, session.database().catalog(), session.flags())
        .unwrap();
    println!(
        "-- Compiled output ({} dialect):",
        artifacts.flags.dialect.name()
    );
    println!("{}", artifacts.to_script());

    // --- Install the view through the extension path (fall-back parser).
    session.execute(view).unwrap();

    // --- §2's worked example: V = {apple → 5, banana → 2}.
    session
        .execute("INSERT INTO groups VALUES ('apple', 2), ('apple', 3), ('banana', 2)")
        .unwrap();
    println!("-- Initial view:");
    print_view(&mut session);

    // ΔV = {apple → (false, 3), banana → (true, 1)}: remove 3 units of
    // apple, add 1 banana.
    session
        .execute("DELETE FROM groups WHERE group_index = 'apple' AND group_value = 3")
        .unwrap();
    session
        .execute("INSERT INTO groups VALUES ('banana', 1)")
        .unwrap();

    println!("-- After removing 3 units of apple and adding 1 banana:");
    print_view(&mut session);
    println!(
        "-- (paper §2 expects apple → 2, banana → 3; consistency check: {})",
        session.check_consistency("query_groups").unwrap()
    );
}

fn print_view(session: &mut IvmSession) {
    let result = session
        .execute("SELECT group_index, total_value FROM query_groups ORDER BY group_index")
        .unwrap();
    for row in &result.rows {
        println!("   {} -> {}", row[0], row[1]);
    }
    println!();
}
