//! A realistic multi-view analytics scenario: several materialized views
//! over a sales schema, maintained eagerly while a random workload runs.
//!
//! Exercises every supported view class at once — SUM/COUNT dashboards,
//! AVG, MIN/MAX price trackers, and a join view — all sharing delta
//! tables, with a final consistency audit.
//!
//! Run with `cargo run --example sales_analytics`.

use openivm::ivm_core::{IvmFlags, IvmSession, PropagationMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut ivm = IvmSession::new(IvmFlags {
        propagation: PropagationMode::Batch(16),
        ..IvmFlags::paper_defaults()
    });

    ivm.execute("CREATE TABLE products (id INTEGER PRIMARY KEY, category VARCHAR, price INTEGER)")
        .unwrap();
    ivm.execute("CREATE TABLE sales (product INTEGER, quantity INTEGER, region VARCHAR)")
        .unwrap();

    for (id, cat, price) in [
        (1, "coffee", 12),
        (2, "coffee", 15),
        (3, "tea", 8),
        (4, "tea", 9),
        (5, "cocoa", 20),
    ] {
        ivm.execute(&format!(
            "INSERT INTO products VALUES ({id}, '{cat}', {price})"
        ))
        .unwrap();
    }

    // Four dashboards over the same base tables.
    let views = [
        (
            "qty_by_region",
            "CREATE MATERIALIZED VIEW qty_by_region AS \
          SELECT region, SUM(quantity) AS units, COUNT(*) AS rows_in \
          FROM sales GROUP BY region",
        ),
        (
            "avg_price",
            "CREATE MATERIALIZED VIEW avg_price AS \
          SELECT category, AVG(price) AS mean_price FROM products GROUP BY category",
        ),
        (
            "price_extrema",
            "CREATE MATERIALIZED VIEW price_extrema AS \
          SELECT category, MIN(price) AS cheapest, MAX(price) AS priciest \
          FROM products GROUP BY category",
        ),
        (
            "revenue_by_category",
            "CREATE MATERIALIZED VIEW revenue_by_category AS \
          SELECT products.category, SUM(sales.quantity) AS units \
          FROM sales JOIN products ON sales.product = products.id \
          GROUP BY products.category",
        ),
    ];
    for (_, sql) in &views {
        ivm.execute(sql).unwrap();
    }

    // Random workload: sales stream + occasional price changes.
    let mut rng = StdRng::seed_from_u64(2024);
    let regions = ["emea", "apac", "amer"];
    for step in 0..300 {
        match rng.gen_range(0..10) {
            0 => {
                // Reprice a product (update on the dimension table).
                let id = rng.gen_range(1..=5);
                let delta = rng.gen_range(-2..=3);
                ivm.execute(&format!(
                    "UPDATE products SET price = price + {delta} WHERE id = {id}"
                ))
                .unwrap();
            }
            1 => {
                // Void a sale.
                let region = regions[rng.gen_range(0..regions.len())];
                ivm.execute(&format!(
                    "DELETE FROM sales WHERE region = '{region}' AND quantity = 1"
                ))
                .unwrap();
            }
            _ => {
                let product = rng.gen_range(1..=5);
                let qty = rng.gen_range(1..=4);
                let region = regions[rng.gen_range(0..regions.len())];
                ivm.execute(&format!(
                    "INSERT INTO sales VALUES ({product}, {qty}, '{region}')"
                ))
                .unwrap();
            }
        }
        if step % 100 == 99 {
            let r = ivm.query_view("qty_by_region").unwrap();
            println!(
                "after {} events, qty_by_region has {} regions",
                step + 1,
                r.rows.len()
            );
        }
    }

    println!("\nfinal dashboards:");
    for (name, _) in &views {
        let r = ivm.query_view(name).unwrap();
        println!("  {name}:");
        for row in &r.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("    {}", cells.join(" | "));
        }
    }

    println!("\nconsistency audit:");
    for (name, _) in &views {
        let ok = ivm.check_consistency(name).unwrap();
        println!("  {name}: {}", if ok { "OK" } else { "MISMATCH" });
        assert!(ok);
    }
    let stats = ivm.stats();
    println!(
        "\nsession stats: {} intercepted DML, {} maintenance runs ({} statements)",
        stats.intercepted_dml, stats.maintenance_runs, stats.maintenance_statements
    );
}
