//! The standalone OpenIVM command-line compiler.
//!
//! §2: "the OpenIVM SQL-to-SQL compiler can be used as a standalone
//! command-line tool". Give it a schema and a view definition; it prints
//! the compiled DDL + propagation script without touching any database.
//!
//! ```text
//! openivm --schema schema.sql --view view.sql [--dialect duckdb|postgres]
//!         [--strategy left_join_upsert|union_regroup|full_outer_join]
//!         [--index inline|after_populate|none] [--no-comments]
//! ```
//!
//! `--schema`/`--view` also accept inline SQL instead of a file path.
//! `--data-dir <dir>` compiles against the recovered catalog of a durable
//! database directory instead of a `--schema` script.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

use openivm::ivm_core::{
    Dialect, IndexCreation, IvmCompiler, IvmFlags, IvmSession, PropagationMode, UpsertStrategy,
};
use openivm::ivm_engine::{Database, SnapshotHub};

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(script) => {
            println!("{script}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("openivm: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: openivm (--schema <file|sql> | --data-dir <dir>) --view <file|sql>
       [--dialect duckdb|postgres]
       [--strategy left_join_upsert|union_regroup|full_outer_join]
       [--index inline|after_populate|none]
       [--no-comments]
       openivm --data-dir <dir> --wal-stats
       openivm --serve <addr> [--schema <file|sql>] [--data-dir <dir>]";

fn run(args: Vec<String>) -> Result<String, String> {
    let mut schema: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut view: Option<String> = None;
    let mut serve_addr: Option<String> = None;
    let mut wal_stats = false;
    let mut flags = IvmFlags::paper_defaults();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--schema" => schema = Some(value("--schema")?),
            "--data-dir" => data_dir = Some(value("--data-dir")?),
            "--view" => view = Some(value("--view")?),
            "--serve" => serve_addr = Some(value("--serve")?),
            "--dialect" => {
                let v = value("--dialect")?;
                flags.dialect = Dialect::parse(&v).ok_or_else(|| format!("unknown dialect {v}"))?;
            }
            "--strategy" => {
                let v = value("--strategy")?;
                flags.upsert_strategy =
                    UpsertStrategy::parse(&v).ok_or_else(|| format!("unknown strategy {v}"))?;
                if !flags.upsert_strategy.needs_index() {
                    flags.index_creation = IndexCreation::None;
                }
            }
            "--index" => {
                flags.index_creation = match value("--index")?.as_str() {
                    "inline" => IndexCreation::Inline,
                    "after_populate" | "after" => IndexCreation::AfterPopulate,
                    "none" => IndexCreation::None,
                    other => return Err(format!("unknown index mode {other}")),
                };
            }
            "--no-comments" => flags.comments = false,
            "--wal-stats" => wal_stats = true,
            "--help" | "-h" => return Err("help requested".to_string()),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    // `--serve`: become a line-protocol SQL server instead of compiling.
    if let Some(addr) = serve_addr {
        return serve(&addr, schema.as_deref(), data_dir.as_deref(), flags);
    }

    // `--wal-stats`: report the durable log's health (segment count,
    // rotations, transient-retry tally, poisoned flag) and exit.
    if wal_stats {
        let dir = data_dir.ok_or("--wal-stats requires --data-dir")?;
        let db = Database::open(&dir).map_err(|e| format!("cannot open {dir}: {e}"))?;
        let s = db.wal_stats().ok_or("database has no write-ahead log")?;
        return Ok(format!(
            "wal records={} commits={} syncs={} bytes_written={} \
             retries={} rotations={} segments={} poisoned={}",
            s.records,
            s.commits,
            s.syncs,
            s.bytes_written,
            s.retries,
            s.rotations,
            s.segments,
            s.poisoned
        ));
    }

    let view = view.ok_or("missing --view")?;
    let view_sql = read_arg(&view)?;

    // Obtain a catalog: either load a schema script into a scratch engine
    // or reopen a durable database and compile against its recovered state.
    let db = match (schema, data_dir) {
        (Some(_), Some(_)) => {
            return Err("--schema and --data-dir are mutually exclusive".to_string())
        }
        (None, None) => return Err("missing --schema or --data-dir".to_string()),
        (Some(schema), None) => {
            let schema_sql = read_arg(&schema)?;
            let mut db = Database::new();
            db.execute_script(&schema_sql)
                .map_err(|e| format!("schema error: {e}"))?;
            db
        }
        (None, Some(dir)) => Database::open(&dir).map_err(|e| format!("cannot open {dir}: {e}"))?,
    };
    let artifacts = IvmCompiler::new()
        .compile_sql(view_sql.trim().trim_end_matches(';'), db.catalog(), &flags)
        .map_err(|e| format!("compile error: {e}"))?;
    Ok(artifacts.to_script())
}

/// Line-protocol SQL server. One statement per line; the reply is zero or
/// more `ROW\t<v1>\t<v2>…` lines followed by `OK <count>`, or one
/// `ERR <message>` line. `SELECT`s run on a per-connection
/// [`ivm_engine::ReadSession`] pinned to the latest committed snapshot;
/// everything else serializes through the single writer session, which
/// republishes the snapshot when the statement completes.
fn serve(
    addr: &str,
    schema: Option<&str>,
    data_dir: Option<&str>,
    mut flags: IvmFlags,
) -> Result<String, String> {
    // Hub readers bypass the session's lazy-refresh interception (they
    // only ever see published snapshots), so serve mode propagates
    // eagerly: every committed write leaves the views fresh.
    flags.propagation = PropagationMode::Eager;
    let mut session = match data_dir {
        Some(dir) => IvmSession::open(dir, flags).map_err(|e| format!("cannot open {dir}: {e}"))?,
        None => IvmSession::new(flags),
    };
    if let Some(schema) = schema {
        let sql = read_arg(schema)?;
        session
            .execute_script(&sql)
            .map_err(|e| format!("schema error: {e}"))?;
    }
    let hub = session.share();
    let writer = Arc::new(Mutex::new(Some(session)));
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    // Tests bind port 0 and parse the resolved address off this line.
    println!("openivm: serving on {local}");
    std::io::stdout().flush().ok();
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let hub = hub.clone();
        let writer = Arc::clone(&writer);
        std::thread::spawn(move || {
            let _ = handle_client(stream, hub, writer);
        });
    }
    Ok(String::new())
}

fn handle_client(
    stream: TcpStream,
    hub: SnapshotHub,
    writer: Arc<Mutex<Option<IvmSession>>>,
) -> std::io::Result<()> {
    let mut reader = hub.reader();
    let mut out = BufWriter::new(stream.try_clone()?);
    for line in BufReader::new(stream).lines() {
        let line = line?;
        let sql = line.trim();
        if sql.is_empty() {
            continue;
        }
        if sql.eq_ignore_ascii_case("quit") || sql.eq_ignore_ascii_case("exit") {
            break;
        }
        // Clean server stop: checkpoint + drop the session (releasing
        // the durable directory and its ephemeral-mode guard), ack,
        // then exit the process.
        if sql.eq_ignore_ascii_case("shutdown") {
            let session = writer.lock().ok().and_then(|mut guard| guard.take());
            let result = match session {
                Some(session) => session.close().map_err(|e| e.to_string()),
                None => Ok(()),
            };
            match result {
                Ok(()) => writeln!(out, "OK 0")?,
                Err(msg) => writeln!(out, "ERR {}", msg.replace(['\n', '\r'], " "))?,
            }
            out.flush()?;
            std::process::exit(0);
        }
        let is_select = sql
            .split_whitespace()
            .next()
            .is_some_and(|w| w.eq_ignore_ascii_case("select"));
        let result = if is_select {
            reader.query(sql).map_err(|e| e.to_string())
        } else {
            match writer.lock() {
                Ok(mut guard) => match guard.as_mut() {
                    Some(session) => session.execute(sql).map_err(|e| e.to_string()),
                    None => Err("server is shutting down".to_string()),
                },
                Err(_) => Err("writer session poisoned".to_string()),
            }
        };
        match result {
            Ok(res) => {
                let count = if res.columns.is_empty() {
                    res.rows_affected
                } else {
                    res.rows.len()
                };
                for row in &res.rows {
                    out.write_all(b"ROW")?;
                    for value in row {
                        write!(out, "\t{value}")?;
                    }
                    out.write_all(b"\n")?;
                }
                writeln!(out, "OK {count}")?;
            }
            Err(msg) => writeln!(out, "ERR {}", msg.replace(['\n', '\r'], " "))?,
        }
        out.flush()?;
    }
    Ok(())
}

/// Interpret an argument as a file path when one exists, else inline SQL.
fn read_arg(arg: &str) -> Result<String, String> {
    if std::path::Path::new(arg).exists() {
        std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))
    } else if arg.to_ascii_uppercase().contains("CREATE") {
        Ok(arg.to_string())
    } else {
        Err(format!("{arg} is neither a file nor SQL"))
    }
}
