//! The standalone OpenIVM command-line compiler.
//!
//! §2: "the OpenIVM SQL-to-SQL compiler can be used as a standalone
//! command-line tool". Give it a schema and a view definition; it prints
//! the compiled DDL + propagation script without touching any database.
//!
//! ```text
//! openivm --schema schema.sql --view view.sql [--dialect duckdb|postgres]
//!         [--strategy left_join_upsert|union_regroup|full_outer_join]
//!         [--index inline|after_populate|none] [--no-comments]
//! ```
//!
//! `--schema`/`--view` also accept inline SQL instead of a file path.
//! `--data-dir <dir>` compiles against the recovered catalog of a durable
//! database directory instead of a `--schema` script.

use std::process::ExitCode;

use openivm::ivm_core::{Dialect, IndexCreation, IvmCompiler, IvmFlags, UpsertStrategy};
use openivm::ivm_engine::Database;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(script) => {
            println!("{script}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("openivm: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: openivm (--schema <file|sql> | --data-dir <dir>) --view <file|sql>
       [--dialect duckdb|postgres]
       [--strategy left_join_upsert|union_regroup|full_outer_join]
       [--index inline|after_populate|none]
       [--no-comments]
       openivm --data-dir <dir> --wal-stats";

fn run(args: Vec<String>) -> Result<String, String> {
    let mut schema: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut view: Option<String> = None;
    let mut wal_stats = false;
    let mut flags = IvmFlags::paper_defaults();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--schema" => schema = Some(value("--schema")?),
            "--data-dir" => data_dir = Some(value("--data-dir")?),
            "--view" => view = Some(value("--view")?),
            "--dialect" => {
                let v = value("--dialect")?;
                flags.dialect = Dialect::parse(&v).ok_or_else(|| format!("unknown dialect {v}"))?;
            }
            "--strategy" => {
                let v = value("--strategy")?;
                flags.upsert_strategy =
                    UpsertStrategy::parse(&v).ok_or_else(|| format!("unknown strategy {v}"))?;
                if !flags.upsert_strategy.needs_index() {
                    flags.index_creation = IndexCreation::None;
                }
            }
            "--index" => {
                flags.index_creation = match value("--index")?.as_str() {
                    "inline" => IndexCreation::Inline,
                    "after_populate" | "after" => IndexCreation::AfterPopulate,
                    "none" => IndexCreation::None,
                    other => return Err(format!("unknown index mode {other}")),
                };
            }
            "--no-comments" => flags.comments = false,
            "--wal-stats" => wal_stats = true,
            "--help" | "-h" => return Err("help requested".to_string()),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    // `--wal-stats`: report the durable log's health (segment count,
    // rotations, transient-retry tally, poisoned flag) and exit.
    if wal_stats {
        let dir = data_dir.ok_or("--wal-stats requires --data-dir")?;
        let db = Database::open(&dir).map_err(|e| format!("cannot open {dir}: {e}"))?;
        let s = db.wal_stats().ok_or("database has no write-ahead log")?;
        return Ok(format!(
            "wal records={} commits={} syncs={} bytes_written={} \
             retries={} rotations={} segments={} poisoned={}",
            s.records,
            s.commits,
            s.syncs,
            s.bytes_written,
            s.retries,
            s.rotations,
            s.segments,
            s.poisoned
        ));
    }

    let view = view.ok_or("missing --view")?;
    let view_sql = read_arg(&view)?;

    // Obtain a catalog: either load a schema script into a scratch engine
    // or reopen a durable database and compile against its recovered state.
    let db = match (schema, data_dir) {
        (Some(_), Some(_)) => {
            return Err("--schema and --data-dir are mutually exclusive".to_string())
        }
        (None, None) => return Err("missing --schema or --data-dir".to_string()),
        (Some(schema), None) => {
            let schema_sql = read_arg(&schema)?;
            let mut db = Database::new();
            db.execute_script(&schema_sql)
                .map_err(|e| format!("schema error: {e}"))?;
            db
        }
        (None, Some(dir)) => Database::open(&dir).map_err(|e| format!("cannot open {dir}: {e}"))?,
    };
    let artifacts = IvmCompiler::new()
        .compile_sql(view_sql.trim().trim_end_matches(';'), db.catalog(), &flags)
        .map_err(|e| format!("compile error: {e}"))?;
    Ok(artifacts.to_script())
}

/// Interpret an argument as a file path when one exists, else inline SQL.
fn read_arg(arg: &str) -> Result<String, String> {
    if std::path::Path::new(arg).exists() {
        std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))
    } else if arg.to_ascii_uppercase().contains("CREATE") {
        Ok(arg.to_string())
    } else {
        Err(format!("{arg} is neither a file nor SQL"))
    }
}
