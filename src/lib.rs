//! # OpenIVM — a SQL-to-SQL compiler for incremental computations
//!
//! Rust reproduction of *"OpenIVM: a SQL-to-SQL Compiler for Incremental
//! Computations"* (Battiston, Kathuria, Boncz — SIGMOD-Companion 2024).
//!
//! This facade crate re-exports the workspace:
//!
//! - [`ivm_sql`] — SQL frontend (lexer, parser, AST, dialect printer)
//! - [`ivm_engine`] — embedded analytical engine (the DuckDB stand-in),
//!   including the ART index
//! - [`ivm_core`] — the OpenIVM compiler and extension session
//! - [`ivm_oltp`] — simulated OLTP row store with triggers (the
//!   PostgreSQL stand-in)
//! - [`ivm_htap`] — the cross-system HTAP pipeline of Figure 3
//!
//! ```
//! use openivm::ivm_core::IvmSession;
//!
//! let mut ivm = IvmSession::with_defaults();
//! ivm.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)").unwrap();
//! ivm.execute(
//!     "CREATE MATERIALIZED VIEW query_groups AS \
//!      SELECT group_index, SUM(group_value) AS total_value \
//!      FROM groups GROUP BY group_index",
//! ).unwrap();
//! ivm.execute("INSERT INTO groups VALUES ('apple', 5)").unwrap();
//! assert!(ivm.check_consistency("query_groups").unwrap());
//! ```

#![warn(missing_docs)]

pub use ivm_core;
pub use ivm_engine;
pub use ivm_htap;
pub use ivm_oltp;
pub use ivm_sql;
