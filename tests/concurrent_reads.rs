//! Concurrency stress suite: N reader threads query a base table and its
//! materialized view through the snapshot hub while a single writer loops
//! ingest → refresh → checkpoint.
//!
//! The oracle is closed-form: batch `b` ingests exactly `PER` rows with
//! `g = 'b<b>'` and `v = b*1000 + i` (i in 0..PER), and the hub publishes
//! only at completed operations — so every read must decompose as "the
//! first k batches, each complete". A group with the wrong COUNT or SUM,
//! or a gap in the batch prefix, is a torn read.
//!
//! Runs unchanged under `OPENIVM_DATA_DIR` (durable legs: every ingest
//! hits the WAL, checkpoints flush pages) and a transient
//! `OPENIVM_FAULT_PLAN` (internal retries must stay invisible to
//! readers).

use std::sync::atomic::{AtomicBool, Ordering};

use openivm::ivm_core::{IvmFlags, IvmSession};
use openivm::ivm_engine::{QueryResult, ReadSession, Value};

const BATCHES: usize = 30;
const PER: usize = 50;

/// Expected SUM(v) of batch `b`: v = b*1000 + i for i in 0..PER.
fn batch_sum(b: usize) -> i64 {
    (PER * b * 1000 + PER * (PER - 1) / 2) as i64
}

/// Decode a `g, <count>, <sum>` result and assert it is a complete batch
/// prefix; returns the prefix length k. `what` labels failures.
fn assert_prefix(result: &QueryResult, what: &str) -> usize {
    let gi = result.columns.iter().position(|c| c == "g");
    let ci = result.columns.iter().position(|c| c == "c");
    let si = result.columns.iter().position(|c| c == "s");
    let (gi, ci, si) = (
        gi.unwrap_or_else(|| panic!("{what}: no g column in {:?}", result.columns)),
        ci.unwrap_or_else(|| panic!("{what}: no c column in {:?}", result.columns)),
        si.unwrap_or_else(|| panic!("{what}: no s column in {:?}", result.columns)),
    );
    let k = result.rows.len();
    assert!(k <= BATCHES, "{what}: more groups than batches ({k})");
    let mut seen = vec![false; k];
    for row in &result.rows {
        let g = match &row[gi] {
            Value::Varchar(s) => s.clone(),
            other => panic!("{what}: group key {other:?}"),
        };
        let b: usize = g
            .strip_prefix('b')
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("{what}: unexpected group {g}"));
        assert!(
            b < k,
            "{what}: group {g} present but prefix has only {k} groups — gap in batch sequence"
        );
        assert!(!seen[b], "{what}: duplicate group {g}");
        seen[b] = true;
        let c = row[ci]
            .as_integer()
            .unwrap_or_else(|| panic!("{what}: count {:?}", row[ci]));
        let s = row[si]
            .as_integer()
            .unwrap_or_else(|| panic!("{what}: sum {:?}", row[si]));
        assert_eq!(
            c as usize, PER,
            "{what}: batch {b} torn — {c} of {PER} rows visible"
        );
        assert_eq!(s, batch_sum(b), "{what}: batch {b} sum mismatch");
    }
    k
}

/// One reader's loop: keep querying until the writer is done, asserting
/// the committed-prefix oracle and epoch monotonicity on every read.
fn read_loop(mut reader: ReadSession, done: &AtomicBool, label: &str) -> usize {
    let mut iterations = 0usize;
    let mut max_epoch = 0u64;
    let mut max_prefix = 0usize;
    loop {
        let finished = done.load(Ordering::Acquire);
        let base = reader
            .query("SELECT g, COUNT(*) AS c, SUM(v) AS s FROM base GROUP BY g")
            .unwrap();
        let k = assert_prefix(&base, label);
        assert!(
            k >= max_prefix,
            "{label}: snapshot went backwards ({k} < {max_prefix})"
        );
        max_prefix = k;
        assert!(reader.last_epoch() >= max_epoch, "{label}: epoch regressed");
        max_epoch = reader.last_epoch();
        // The materialized view may lag the base table by unrefreshed
        // batches, but must itself be a complete committed prefix.
        let view = reader.query("SELECT g, c, s FROM v").unwrap();
        assert_prefix(&view, label);
        iterations += 1;
        if finished {
            // One full pass after the writer finished: final state.
            assert_eq!(k, BATCHES, "{label}: final read missed batches");
            return iterations;
        }
    }
}

#[test]
fn concurrent_readers_see_only_committed_snapshots() {
    let mut session = IvmSession::new(IvmFlags::paper_defaults());
    session
        .execute("CREATE TABLE base (g VARCHAR, v INTEGER)")
        .unwrap();
    session
        .execute(
            "CREATE MATERIALIZED VIEW v AS \
             SELECT g, COUNT(*) AS c, SUM(v) AS s FROM base GROUP BY g",
        )
        .unwrap();
    let hub = session.share();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // A frozen pin taken before any batch: must keep reading the
        // empty table no matter how far the writer advances.
        let frozen = hub.pin();
        let mut frozen_reader = hub.reader();

        let writer = scope.spawn(|| {
            let mut session = session; // move the single writer in
            for b in 0..BATCHES {
                let rows: Vec<(Vec<Value>, bool)> = (0..PER)
                    .map(|i| {
                        (
                            vec![
                                Value::Varchar(format!("b{b}")),
                                Value::Integer((b * 1000 + i) as i64),
                            ],
                            true,
                        )
                    })
                    .collect();
                session.ingest_deltas("base", &rows).unwrap();
                session.refresh("v").unwrap();
                if b % 5 == 4 {
                    session.checkpoint().unwrap();
                }
            }
            session
        });

        // Four concurrent readers with mixed execution configurations:
        // serial, parallel, budgeted (spill-capable), parallel+budgeted.
        let mut handles = Vec::new();
        for (i, (workers, budget)) in [
            (1, None),
            (4, None),
            (1, Some(64 << 10)),
            (2, Some(64 << 10)),
        ]
        .into_iter()
        .enumerate()
        {
            let mut reader = hub.reader();
            reader.set_parallelism(workers);
            reader.set_memory_budget(budget);
            let done = &done;
            handles.push(scope.spawn(move || read_loop(reader, done, &format!("reader{i}"))));
        }

        let mut session = writer.join().expect("writer panicked");
        done.store(true, Ordering::Release);
        for h in handles {
            let iterations = h.join().expect("reader panicked");
            assert!(iterations > 0);
        }

        // The pre-ingest pin stayed frozen throughout.
        let empty = frozen_reader
            .query_pinned("SELECT COUNT(*) AS c FROM base", &frozen)
            .unwrap();
        assert_eq!(
            empty.rows[0][0].as_integer(),
            Some(0),
            "pinned snapshot moved"
        );

        // Writer-side sanity: all batches landed and the view agrees.
        assert!(session.check_consistency("v").unwrap());
        let total = session
            .database()
            .query("SELECT COUNT(*) AS c FROM base")
            .unwrap();
        assert_eq!(total.rows[0][0].as_integer(), Some((BATCHES * PER) as i64));
    });
}

#[test]
fn readers_reject_writes_and_share_plans() {
    let mut session = IvmSession::new(IvmFlags::paper_defaults());
    session
        .execute("CREATE TABLE base (g VARCHAR, v INTEGER)")
        .unwrap();
    session
        .execute("INSERT INTO base VALUES ('b0', 1), ('b0', 2)")
        .unwrap();
    let hub = session.share();
    session
        .execute("INSERT INTO base VALUES ('b1', 3)")
        .unwrap();

    let mut r1 = hub.reader();
    let mut r2 = hub.reader();
    assert!(r1.query("INSERT INTO base VALUES ('x', 9)").is_err());
    let a = r1.query("SELECT SUM(v) AS s FROM base").unwrap();
    let b = r2.query("SELECT SUM(v) AS s FROM base").unwrap();
    assert_eq!(a.rows[0][0].as_integer(), Some(6));
    assert_eq!(b.rows[0][0].as_integer(), Some(6));
    let (entries, hits, _misses) = hub.plan_cache_stats();
    assert!(entries >= 1);
    assert!(hits >= 1, "second reader should hit the shared plan cache");
}
