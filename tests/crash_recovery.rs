//! Crash-recovery fault injection.
//!
//! Three failure modes against a durable database, each checked against a
//! shadow in-memory oracle (or an arithmetic prefix invariant):
//!
//! 1. **WAL truncation sweep** — run a mixed ingest/refresh/checkpoint
//!    workload, snapshot the oracle after every statement, then cut the
//!    surviving WAL at randomized byte offsets. Every cut must recover to
//!    *some committed prefix* of the workload, and the recovered prefix
//!    must be monotone in the cut position.
//! 2. **Torn write** — append garbage to the WAL tail; recovery must
//!    ignore it and yield the full committed state.
//! 3. **SIGKILL** (unix only) — a child process ingests rows and records
//!    its committed progress; the parent kills it mid-ingest, reopens the
//!    directory, and asserts the recovered rows are exactly a committed
//!    prefix at least as long as the last progress the child reported.
//!
//! No failure mode may panic: torn tails and truncated logs decode to
//! clean `EngineError`s or silently stop at the last commit marker.

use openivm::ivm_core::{IvmFlags, IvmSession};
use openivm::ivm_engine::{Database, Value};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("openivm-crash-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic xorshift so the "randomized" cut points are reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// The observable state: the base table (rows AND order — replay must
/// reproduce the slot layout) plus the materialized view. The view is
/// compared *sorted*: its physical row order depends on how many refresh
/// rounds produced it, and a recovered session legitimately catches up in
/// one round where the oracle took many.
fn observe_session(s: &mut IvmSession) -> Vec<Vec<Vec<Value>>> {
    let base = s.database().query("SELECT * FROM groups").unwrap().rows;
    let mut view = s.query_view("qg").unwrap().rows;
    view.sort_by(|a, b| {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| !o.is_eq())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    vec![base, view]
}

/// The workload statements: ingest interleaved with view refreshes. Each
/// entry is applied to both the durable session and the oracle.
fn workload() -> Vec<String> {
    let mut stmts = Vec::new();
    for i in 0..30i64 {
        stmts.push(format!(
            "INSERT INTO groups VALUES ('g{}', {})",
            i % 5,
            i * 7 % 23
        ));
        if i % 7 == 3 {
            stmts.push(format!("DELETE FROM groups WHERE group_value = {}", i % 11));
        }
        if i % 5 == 2 {
            stmts.push(format!(
                "UPDATE groups SET group_value = group_value + 1 WHERE group_index = 'g{}'",
                i % 5
            ));
        }
    }
    stmts
}

fn setup_session(s: &mut IvmSession) {
    s.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
        .unwrap();
    s.execute(
        "CREATE MATERIALIZED VIEW qg AS SELECT group_index, SUM(group_value) AS total \
         FROM groups GROUP BY group_index",
    )
    .unwrap();
}

#[test]
fn wal_cut_sweep_recovers_a_monotone_committed_prefix() {
    let dir = TempDir::new("sweep");
    // Shadow oracle: the same workload in memory, snapshotted after every
    // statement. Snapshot 0 is the post-setup state.
    let mut oracle = IvmSession::new(IvmFlags::paper_defaults());
    setup_session(&mut oracle);
    let mut snapshots = vec![observe_session(&mut oracle)];

    {
        let mut s = IvmSession::open(dir.path(), IvmFlags::paper_defaults()).unwrap();
        setup_session(&mut s);
        // Checkpoint after setup so the sweep only cuts ingest records —
        // every cut point then lands between (or inside) DML statements.
        s.checkpoint().unwrap();
        for stmt in workload() {
            s.execute(&stmt).unwrap();
            oracle.execute(&stmt).unwrap();
            snapshots.push(observe_session(&mut oracle));
        }
        drop(s); // crash: no close(), the WAL carries everything
    }

    let wal_path = dir.path().join("wal.0001.log");
    let full = std::fs::read(&wal_path).unwrap();
    let scratch = TempDir::new("sweep-scratch");

    let mut rng = Rng(0x5eed_cafe);
    let mut cuts: Vec<usize> = (0..40).map(|_| rng.next() as usize % full.len()).collect();
    cuts.push(0);
    cuts.push(full.len());
    cuts.sort_unstable();

    let mut last_prefix = 0usize;
    for cut in cuts {
        // Rebuild the crashed directory with the WAL cut at `cut` bytes.
        for f in ["pages.db", "catalog.meta"] {
            std::fs::copy(dir.path().join(f), scratch.path().join(f)).unwrap();
        }
        std::fs::write(scratch.path().join("wal.0001.log"), &full[..cut]).unwrap();

        let mut s = IvmSession::open(scratch.path(), IvmFlags::paper_defaults()).unwrap();
        let got = observe_session(&mut s);
        let prefix = snapshots
            .iter()
            .position(|snap| *snap == got)
            .unwrap_or_else(|| panic!("cut {cut}: recovered state matches no committed prefix"));
        assert!(
            prefix >= last_prefix,
            "cut {cut}: prefix {prefix} regressed below {last_prefix}"
        );
        last_prefix = prefix;
    }
    assert_eq!(
        last_prefix,
        snapshots.len() - 1,
        "an uncut WAL must recover the full workload"
    );
}

#[test]
fn torn_write_garbage_tail_is_ignored() {
    let dir = TempDir::new("torn");
    {
        let mut s = IvmSession::open(dir.path(), IvmFlags::paper_defaults()).unwrap();
        setup_session(&mut s);
        for stmt in workload() {
            s.execute(&stmt).unwrap();
        }
        drop(s);
    }
    let mut oracle = IvmSession::new(IvmFlags::paper_defaults());
    setup_session(&mut oracle);
    for stmt in workload() {
        oracle.execute(&stmt).unwrap();
    }
    let mut expected = observe_session(&mut oracle);

    // A torn write leaves a partial record, possibly preceded by a partial
    // length header of plausible-looking bytes.
    let wal_path = dir.path().join("wal.0001.log");
    let mut rng = Rng(0xdead_beef);
    for garbage_len in [1usize, 7, 64, 4096] {
        let mut bytes = std::fs::read(&wal_path).unwrap();
        bytes.extend((0..garbage_len).map(|_| rng.next() as u8));
        std::fs::write(&wal_path, &bytes).unwrap();
        let mut s = IvmSession::open(dir.path(), IvmFlags::paper_defaults()).unwrap();
        assert_eq!(
            observe_session(&mut s),
            expected,
            "garbage tail of {garbage_len} bytes must not change recovery"
        );
        // Recovery checkpoints, so restore the crashed layout for the
        // next iteration by re-crashing one no-op ingest.
        s.execute("INSERT INTO groups VALUES ('g0', 0)").unwrap();
        s.execute("DELETE FROM groups WHERE group_value = 0 AND group_index = 'g0'")
            .unwrap();
        drop(s);
        oracle
            .execute("INSERT INTO groups VALUES ('g0', 0)")
            .unwrap();
        oracle
            .execute("DELETE FROM groups WHERE group_value = 0 AND group_index = 'g0'")
            .unwrap();
        expected.clone_from(&observe_session(&mut oracle));
    }
}

/// Child-process entry point for the SIGKILL test: gated on an env var so
/// the function is inert when the harness runs it as a normal test.
#[test]
fn sigkill_child_entry() {
    let Ok(dir) = std::env::var("OPENIVM_CRASH_CHILD_DIR") else {
        return;
    };
    let progress = std::path::Path::new(&dir).join("progress");
    let mut db = Database::open(&dir).unwrap();
    db.execute("CREATE TABLE seq (n INTEGER)").unwrap();
    for i in 0..100_000i64 {
        db.execute(&format!("INSERT INTO seq VALUES ({i})"))
            .unwrap();
        // The statement is committed (fsync'd) once execute returns; only
        // then may the progress marker advance.
        std::fs::write(&progress, format!("{}", i + 1)).unwrap();
        if i % 50 == 0 {
            db.checkpoint().unwrap();
        }
    }
    std::process::exit(0);
}

#[cfg(unix)]
#[test]
fn sigkill_mid_ingest_recovers_a_committed_prefix() {
    let dir = TempDir::new("sigkill");
    let progress_path = dir.path().join("progress");
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(&exe)
        .args(["sigkill_child_entry", "--exact", "--nocapture"])
        .env("OPENIVM_CRASH_CHILD_DIR", dir.path())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    // Wait until the child has committed a meaningful amount of work.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let committed = loop {
        if let Ok(s) = std::fs::read_to_string(&progress_path) {
            if let Ok(n) = s.trim().parse::<i64>() {
                if n >= 200 {
                    break n;
                }
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "child made no progress within 60s"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    child.kill().unwrap(); // SIGKILL: no destructors, no flush
    child.wait().unwrap();

    // The progress file may itself be torn; re-read what it said last.
    let last_reported: i64 = std::fs::read_to_string(&progress_path)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(committed);
    // A marker is written only after its statement committed, but the
    // child may have committed more statements than it got to report.
    let floor = committed.max(last_reported.saturating_sub(1));

    let db = Database::open(dir.path()).unwrap();
    let rows = db.query("SELECT n FROM seq ORDER BY n").unwrap().rows;
    assert!(
        rows.len() as i64 >= floor,
        "recovered {} rows, child reported {floor} committed",
        rows.len()
    );
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row[0], Value::Integer(i as i64), "committed prefix");
    }
}
