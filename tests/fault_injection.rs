//! Exhaustive disk-fault sweep.
//!
//! A probe pass runs a canonical ingest → refresh → checkpoint → reopen
//! workload under an observing [`FaultPlan`] to count every storage I/O
//! operation it issues, per operation class. The sweep then re-runs the
//! workload once per (fault kind × operation index), injecting exactly
//! one fault at that index, and asserts the degradation contract:
//!
//! - **zero panics** — every injected fault surfaces as a clean
//!   `EngineError` (or is absorbed by the transient-retry layer);
//! - **no acknowledged-commit loss** — reopening the directory with the
//!   fault cleared recovers a contiguous committed prefix containing
//!   every statement that was acknowledged before the fault;
//! - **usable aftermath** — after a mid-workload error the session still
//!   answers queries; if the WAL was poisoned the database is read-only
//!   degraded (DML refused with a clean error, `close()` still returns)
//!   rather than wedged.
//!
//! Transient (EINTR-class) faults are special-cased: the retry layer
//! must absorb every single one, so those runs must finish with the full
//! workload acknowledged.
//!
//! The fault plan is process-global, so every test here serializes on
//! one mutex and scopes its rules to its own unique directory name.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use openivm::ivm_engine::{
    set_fault_plan, Database, FaultKind, FaultPlan, OpClass, Trigger, Value,
};

/// Serializes tests that install a global fault plan.
fn plan_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("openivm-fault-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }

    /// The unique path substring fault rules scope themselves to.
    fn pattern(&self) -> String {
        self.0.file_name().unwrap().to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const INSERTS: i64 = 12;

/// What one faulted workload run acknowledged and how it ended.
struct Outcome {
    /// Insert values whose statements returned `Ok` (acknowledged).
    acked: Vec<i64>,
    /// `Some(step, error)` if a step failed; `None` for a clean run.
    error: Option<(String, String)>,
}

/// The canonical workload: create, ingest, refresh the aggregate view of
/// the ingest (a query — refresh is query-shaped here), checkpoint,
/// ingest more, close, reopen (recovery reads), verify, close.
///
/// On the first error the run stops, but first asserts the session is
/// still *usable*: queries answer, and in degraded mode DML is refused
/// cleanly while `close()` still returns.
fn run_workload(dir: &Path) -> Outcome {
    let mut acked = Vec::new();
    let fail = |step: &str, e: String| Some((step.to_string(), e));

    let mut db = match Database::open(dir) {
        Ok(db) => db,
        Err(e) => {
            return Outcome {
                acked,
                error: fail("open", e.to_string()),
            }
        }
    };
    let mut table_exists = false;
    let error;
    'workload: {
        if let Err(e) = db.execute("CREATE TABLE t (a INTEGER)") {
            error = fail("create", e.to_string());
            break 'workload;
        }
        table_exists = true;
        for i in 0..INSERTS {
            match db.execute(&format!("INSERT INTO t VALUES ({i})")) {
                Ok(_) => acked.push(i),
                Err(e) => {
                    error = fail("insert", e.to_string());
                    break 'workload;
                }
            }
            if i == INSERTS / 2 {
                // Refresh: re-derive the running aggregate mid-ingest.
                if let Err(e) = db.query("SELECT COUNT(*), SUM(a) FROM t") {
                    error = fail("refresh", e.to_string());
                    break 'workload;
                }
                if let Err(e) = db.checkpoint() {
                    error = fail("checkpoint", e.to_string());
                    break 'workload;
                }
            }
        }
        match db.close() {
            Ok(()) => {}
            Err(e) => {
                return Outcome {
                    acked,
                    error: fail("close", e.to_string()),
                }
            }
        }
        // Reopen while the plan is still armed: recovery's reads are
        // part of the swept operation space.
        let reopened = match Database::open(dir) {
            Ok(db) => db,
            Err(e) => {
                return Outcome {
                    acked,
                    error: fail("reopen", e.to_string()),
                }
            }
        };
        match reopened.query("SELECT COUNT(*) FROM t") {
            Ok(r) => assert_eq!(r.rows[0][0], Value::Integer(INSERTS)),
            Err(e) => {
                return Outcome {
                    acked,
                    error: fail("reopen-query", e.to_string()),
                }
            }
        }
        match reopened.close() {
            Err(e) => {
                return Outcome {
                    acked,
                    error: fail("reopen-close", e.to_string()),
                }
            }
            Ok(()) => return Outcome { acked, error: None },
        }
    }

    // A step failed with the session still in hand: the degradation
    // contract says it must stay usable.
    if table_exists {
        let q = db.query("SELECT COUNT(*) FROM t");
        assert!(q.is_ok(), "query after fault must work, got {q:?}");
    }
    if db.is_degraded() {
        let dml = db.execute("INSERT INTO t VALUES (999)").unwrap_err();
        assert!(
            dml.to_string().contains("read-only"),
            "degraded DML must name read-only mode: {dml}"
        );
        let q = db.query("SELECT 1 WHERE 1 = 0");
        assert!(q.is_ok(), "degraded queries must still run, got {q:?}");
        db.close()
            .expect("close of a degraded database must succeed");
    } else {
        // Not degraded: the one-shot fault has passed, so a retry of the
        // failed operation class must eventually succeed (checkpoints
        // are retriable by construction).
        let _ = db.checkpoint();
        drop(db);
    }
    Outcome { acked, error }
}

/// Reopen with no faults installed and assert the recovered table is a
/// contiguous committed prefix containing every acknowledged insert.
fn assert_committed_prefix(dir: &Path, acked: &[i64], ctx: &str) {
    let db = match Database::open(dir) {
        Ok(db) => db,
        Err(e) => panic!("{ctx}: reopen after fault cleared must recover, got {e}"),
    };
    if db.query("SELECT COUNT(*) FROM t").is_err() {
        // The CREATE itself was never acknowledged; an absent table is a
        // legal committed prefix only in that case.
        assert!(
            acked.is_empty(),
            "{ctx}: table lost after {} acknowledged inserts",
            acked.len()
        );
        return;
    }
    let rows = db.query("SELECT a FROM t ORDER BY a").unwrap().rows;
    let got: Vec<i64> = rows
        .iter()
        .map(|r| match &r[0] {
            Value::Integer(v) => *v,
            other => panic!("{ctx}: non-integer row {other:?}"),
        })
        .collect();
    let prefix: Vec<i64> = (0..got.len() as i64).collect();
    assert_eq!(
        got, prefix,
        "{ctx}: recovered rows are not a contiguous prefix"
    );
    assert!(
        got.len() >= acked.len(),
        "{ctx}: acknowledged-commit loss — {} acked, {} recovered",
        acked.len(),
        got.len()
    );
}

#[test]
fn fault_sweep_over_every_io_op_is_panic_free_and_loses_no_commit() {
    let _guard = plan_lock().lock().unwrap_or_else(|e| e.into_inner());

    // Probe pass: count the workload's I/O operations per class.
    let counts: Vec<(OpClass, u64)> = {
        let dir = TempDir::new("probe");
        let probe = Arc::new(FaultPlan::observing(dir.pattern()));
        let prev = set_fault_plan(Some(probe.clone()));
        let outcome = run_workload(dir.path());
        set_fault_plan(prev);
        assert!(
            outcome.error.is_none(),
            "probe run failed: {:?}",
            outcome.error
        );
        OpClass::ALL
            .iter()
            .map(|&c| (c, probe.observed(c)))
            .collect()
    };
    let total: u64 = counts.iter().map(|&(_, n)| n).sum();
    assert!(
        total > 40,
        "probe saw only {total} ops — pattern scoping broke"
    );

    for kind in FaultKind::ALL {
        // A `Once(i)` rule counts only operations its kind applies to.
        let matching: u64 = counts
            .iter()
            .filter(|&&(c, _)| kind.applies_to(c))
            .map(|&(_, n)| n)
            .sum();
        for i in 1..=matching {
            let dir = TempDir::new(&format!("sweep-{kind:?}-{i}").to_lowercase());
            let plan = FaultPlan::new().with_rule(kind, &dir.pattern(), Trigger::Once(i));
            let prev = set_fault_plan(Some(Arc::new(plan)));
            let outcome = std::panic::catch_unwind(|| run_workload(dir.path()));
            set_fault_plan(prev);
            let ctx = format!("{kind:?} at op {i}/{matching}");
            let outcome = match outcome {
                Ok(o) => o,
                Err(p) => panic!(
                    "{ctx}: workload panicked: {:?}",
                    p.downcast_ref::<String>().cloned().unwrap_or_default()
                ),
            };
            if kind == FaultKind::Transient {
                // The retry layer must absorb every single EINTR.
                assert!(
                    outcome.error.is_none(),
                    "{ctx}: transient fault leaked: {:?}",
                    outcome.error
                );
                assert_eq!(outcome.acked.len() as i64, INSERTS, "{ctx}");
            }
            assert_committed_prefix(dir.path(), &outcome.acked, &ctx);
        }
    }
}

#[test]
fn enospc_during_spill_aborts_only_that_query() {
    let _guard = plan_lock().lock().unwrap_or_else(|e| e.into_inner());

    let spill_dir = TempDir::new("spill");
    let mut db = Database::new();
    db.set_parallelism(1);
    db.set_memory_budget(Some(1));
    db.set_spill_dir(spill_dir.path());
    db.execute("CREATE TABLE t (k INTEGER)").unwrap();
    let values: Vec<String> = (0..300).map(|i| format!("({})", i % 7)).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
        .unwrap();

    let plan =
        FaultPlan::new().with_rule(FaultKind::Enospc, &spill_dir.pattern(), Trigger::Once(1));
    let prev = set_fault_plan(Some(Arc::new(plan)));
    let spilled = db.query("SELECT k, COUNT(*) FROM t GROUP BY k");
    set_fault_plan(prev);

    let err = spilled.expect_err("ENOSPC in the spill path must fail the query");
    assert!(
        !db.is_degraded(),
        "a spill failure must not poison the database"
    );
    // The same query (and the session) work once space is back.
    let rows = db
        .query("SELECT k, COUNT(*) FROM t GROUP BY k")
        .unwrap()
        .rows;
    assert_eq!(rows.len(), 7, "after {err}");
    // No torn spill temp files left behind.
    let leftovers: Vec<_> = std::fs::read_dir(spill_dir.path()).unwrap().collect();
    assert!(leftovers.is_empty(), "leaked spill files: {leftovers:?}");
}

#[test]
fn suite_survives_an_ambient_transient_plan() {
    let _guard = plan_lock().lock().unwrap_or_else(|e| e.into_inner());

    // The CI fault leg runs the whole suite under `transient@*:%7`; this
    // is the in-repo miniature: a periodic EINTR storm across the whole
    // workload must be invisible apart from the retry counter.
    let dir = TempDir::new("ambient");
    let plan = FaultPlan::new().with_rule(FaultKind::Transient, &dir.pattern(), Trigger::Every(3));
    let prev = set_fault_plan(Some(Arc::new(plan)));
    let outcome = run_workload(dir.path());
    set_fault_plan(prev);
    assert!(outcome.error.is_none(), "{:?}", outcome.error);
    let db = Database::open(dir.path()).unwrap();
    assert_eq!(
        db.query("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
        Value::Integer(INSERTS)
    );
    let stats = db.wal_stats().unwrap();
    assert!(
        stats.retries > 0,
        "every third op faulted yet retries={}",
        stats.retries
    );
    assert!(!stats.poisoned);
}
