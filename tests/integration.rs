//! Cross-crate integration: the full OpenIVM stack through the facade.

use openivm::ivm_core::{Dialect, IvmCompiler, IvmFlags, IvmSession};
use openivm::ivm_engine::{Database, Value};
use openivm::ivm_htap::HtapPipeline;
use openivm::ivm_oltp::OltpEngine;
use openivm::ivm_sql::{parse_statement, print_statement};

#[test]
fn facade_reexports_work_together() {
    // Parse → print through ivm_sql.
    let ast = parse_statement("SELECT 1 AS one").unwrap();
    assert_eq!(print_statement(&ast, Dialect::DuckDb), "SELECT 1 AS one");

    // Engine query.
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (41)").unwrap();
    let r = db.query("SELECT a + 1 FROM t").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Integer(42)));

    // OLTP engine.
    let mut pg = OltpEngine::new();
    pg.execute("CREATE TABLE t (a INTEGER)").unwrap();
    pg.execute("INSERT INTO t VALUES (1)").unwrap();
    assert_eq!(pg.row_count("t"), 1);
}

#[test]
fn compiler_output_runs_on_both_engines_shapes() {
    // The PostgreSQL-dialect script must avoid INSERT OR REPLACE; the
    // DuckDB-dialect script must use it. Both must re-parse.
    let mut db = Database::new();
    db.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
        .unwrap();
    let compiler = IvmCompiler::new();
    let view = "CREATE MATERIALIZED VIEW qg AS \
                SELECT group_index, SUM(group_value) AS total \
                FROM groups GROUP BY group_index";
    for dialect in [Dialect::DuckDb, Dialect::Postgres] {
        let flags = IvmFlags {
            dialect,
            ..IvmFlags::paper_defaults()
        };
        let artifacts = compiler.compile_sql(view, db.catalog(), &flags).unwrap();
        for stmt in artifacts
            .setup_statements()
            .iter()
            .chain(artifacts.maintenance_statements().iter())
        {
            parse_statement(stmt)
                .unwrap_or_else(|e| panic!("{dialect:?} output does not re-parse: {e}\n{stmt}"));
        }
        let joined = artifacts.maintenance_statements().join(";");
        match dialect {
            Dialect::DuckDb => assert!(joined.contains("INSERT OR REPLACE")),
            Dialect::Postgres => {
                assert!(!joined.contains("INSERT OR REPLACE"));
                assert!(joined.contains("ON CONFLICT"));
            }
        }
    }
}

#[test]
fn end_to_end_htap_through_facade() {
    let mut htap = HtapPipeline::with_defaults();
    htap.mirror_table("CREATE TABLE events (kind VARCHAR, weight INTEGER)")
        .unwrap();
    htap.create_materialized_view(
        "CREATE MATERIALIZED VIEW totals AS \
         SELECT kind, SUM(weight) AS w, COUNT(*) AS n FROM events GROUP BY kind",
    )
    .unwrap();
    for i in 0..50 {
        let kind = if i % 3 == 0 { "alpha" } else { "beta" };
        htap.execute_oltp(&format!("INSERT INTO events VALUES ('{kind}', {i})"))
            .unwrap();
    }
    htap.execute_oltp("DELETE FROM events WHERE weight < 10")
        .unwrap();
    htap.execute_oltp("UPDATE events SET weight = weight + 1 WHERE kind = 'alpha'")
        .unwrap();
    let report = htap.check_consistency().unwrap();
    assert!(report.is_consistent(), "{report:?}");
    let r = htap.query_view("totals").unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn session_survives_hundreds_of_mixed_statements() {
    let mut ivm = IvmSession::with_defaults();
    ivm.execute("CREATE TABLE m (k VARCHAR, v INTEGER)")
        .unwrap();
    ivm.execute(
        "CREATE MATERIALIZED VIEW mv AS SELECT k, SUM(v) AS s, COUNT(*) AS c \
         FROM m GROUP BY k",
    )
    .unwrap();
    for i in 0..200i64 {
        let k = format!("k{}", i % 7);
        match i % 5 {
            0..=2 => {
                ivm.execute(&format!("INSERT INTO m VALUES ('{k}', {i})"))
                    .unwrap();
            }
            3 => {
                ivm.execute(&format!("UPDATE m SET v = v + 1 WHERE k = '{k}'"))
                    .unwrap();
            }
            _ => {
                ivm.execute(&format!("DELETE FROM m WHERE k = '{k}' AND v < {}", i / 2))
                    .unwrap();
            }
        }
        if i % 40 == 39 {
            assert!(ivm.check_consistency("mv").unwrap(), "step {i}");
        }
    }
    assert!(ivm.check_consistency("mv").unwrap());
}

#[test]
fn mixed_dialect_sessions_coexist() {
    for flags in [IvmFlags::paper_defaults(), IvmFlags::for_postgres()] {
        let mut ivm = IvmSession::new(flags);
        ivm.execute("CREATE TABLE g (a VARCHAR, b INTEGER)")
            .unwrap();
        ivm.execute("CREATE MATERIALIZED VIEW v AS SELECT a, SUM(b) AS s FROM g GROUP BY a")
            .unwrap();
        ivm.execute("INSERT INTO g VALUES ('x', 1), ('y', 2)")
            .unwrap();
        assert!(ivm.check_consistency("v").unwrap());
    }
}
