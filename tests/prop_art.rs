//! Property test: the ART behaves exactly like an ordered map under
//! arbitrary operation sequences.

use std::collections::BTreeMap;

use openivm::ivm_engine::index::{encode_key, Art};
use openivm::ivm_engine::Value;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum ArtOp {
    Insert(Vec<u8>, u64),
    Remove(Vec<u8>),
    Get(Vec<u8>),
}

/// Keys drawn from a small alphabet with shared prefixes to force node
/// splits, path compression, and every node-size transition.
fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(0u8), any::<u8>()],
        0..12,
    )
    .prop_map(|mut k| {
        // Terminate like the engine's encoding so no key is a proper
        // prefix of another.
        k.push(0xFE);
        k.push(0xFF);
        k
    })
}

fn op_strategy() -> impl Strategy<Value = ArtOp> {
    prop_oneof![
        3 => (key_strategy(), any::<u64>()).prop_map(|(k, v)| ArtOp::Insert(k, v)),
        1 => key_strategy().prop_map(ArtOp::Remove),
        1 => key_strategy().prop_map(ArtOp::Get),
    ]
}

proptest! {
    #[test]
    fn art_matches_btreemap(ops in prop::collection::vec(op_strategy(), 0..400)) {
        let mut art = Art::new();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for op in &ops {
            match op {
                ArtOp::Insert(k, v) => {
                    prop_assert_eq!(art.insert(k, *v), model.insert(k.clone(), *v));
                }
                ArtOp::Remove(k) => {
                    prop_assert_eq!(art.remove(k), model.remove(k));
                }
                ArtOp::Get(k) => {
                    prop_assert_eq!(art.get(k), model.get(k).copied());
                }
            }
            prop_assert_eq!(art.len(), model.len());
        }
        // Full in-order iteration must match the model exactly.
        let mut art_entries = Vec::new();
        art.for_each(|k, v| art_entries.push((k.to_vec(), v)));
        let model_entries: Vec<(Vec<u8>, u64)> =
            model.into_iter().collect();
        prop_assert_eq!(art_entries, model_entries);
    }

    #[test]
    fn encoded_value_order_matches_total_cmp(
        mut values in prop::collection::vec(
            prop_oneof![
                Just(Value::Null),
                any::<bool>().prop_map(Value::Boolean),
                any::<i32>().prop_map(|i| Value::Integer(i64::from(i))),
                (-1e6f64..1e6).prop_map(Value::Double),
                "[a-z]{0,6}".prop_map(Value::from),
            ],
            2..30,
        )
    ) {
        // Sorting by encoded bytes must equal sorting by total_cmp.
        let mut by_encoding = values.clone();
        by_encoding.sort_by_key(|v| encode_key(std::slice::from_ref(v)));
        values.sort();
        prop_assert_eq!(by_encoding, values);
    }

    #[test]
    fn scan_prefix_equals_filtered_iteration(
        groups in prop::collection::vec(("[ab]{1,3}", 0i64..20), 1..60),
        probe in "[ab]{1,3}",
    ) {
        let mut art = Art::new();
        for (i, (g, v)) in groups.iter().enumerate() {
            let key = encode_key(&[Value::from(g.clone()), Value::Integer(*v)]);
            art.insert(&key, i as u64);
        }
        let prefix = encode_key(&[Value::from(probe.clone())]);
        let via_scan = art.scan_prefix(&prefix);
        let mut via_filter = Vec::new();
        art.for_each(|k, v| {
            if k.len() >= prefix.len() && &k[..prefix.len()] == prefix.as_slice() {
                via_filter.push(v);
            }
        });
        prop_assert_eq!(via_scan, via_filter);
    }
}
