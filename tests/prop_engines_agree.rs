//! Differential testing: the columnar OLAP engine and the row-store OLTP
//! engine implement single-table SQL independently — on the query subset
//! both support, they must agree for arbitrary data and queries.

use openivm::ivm_engine::{Database, Value};
use openivm::ivm_htap::rows_equal_as_multisets;
use openivm::ivm_oltp::OltpEngine;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Row {
    g: u8,
    v: i32,
    tag: bool,
}

fn row_strategy() -> impl Strategy<Value = Row> {
    (0u8..5, -100i32..100, any::<bool>()).prop_map(|(g, v, tag)| Row { g, v, tag })
}

/// A predicate from the overlap of both engines' WHERE support.
#[derive(Debug, Clone)]
enum Pred {
    None,
    VCmp(&'static str, i32),
    GEq(u8),
    TagIs(bool),
    VBetween(i32, i32),
    VCmpAndG(&'static str, i32, u8),
    VCmpOrTag(i32, bool),
}

fn cmp_op_strategy() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just(">"), Just("<"), Just(">="), Just("<="), Just("<>")]
}

fn pred_strategy() -> impl Strategy<Value = Pred> {
    prop_oneof![
        Just(Pred::None),
        (cmp_op_strategy(), -50i32..50).prop_map(|(op, k)| Pred::VCmp(op, k)),
        (0u8..5).prop_map(Pred::GEq),
        any::<bool>().prop_map(Pred::TagIs),
        (-50i32..0, 0i32..50).prop_map(|(a, b)| Pred::VBetween(a, b)),
        (cmp_op_strategy(), -50i32..50, 0u8..5).prop_map(|(op, k, g)| Pred::VCmpAndG(op, k, g)),
        (-50i32..50, any::<bool>()).prop_map(|(k, b)| Pred::VCmpOrTag(k, b)),
    ]
}

impl Pred {
    fn to_sql(&self) -> String {
        match self {
            Pred::None => String::new(),
            Pred::VCmp(op, k) => format!(" WHERE v {op} {k}"),
            Pred::GEq(g) => format!(" WHERE g = 'g{g}'"),
            Pred::TagIs(b) => format!(" WHERE tag = {}", if *b { "TRUE" } else { "FALSE" }),
            Pred::VBetween(a, b) => format!(" WHERE v BETWEEN {a} AND {b}"),
            Pred::VCmpAndG(op, k, g) => format!(" WHERE v {op} {k} AND g = 'g{g}'"),
            Pred::VCmpOrTag(k, b) => {
                format!(
                    " WHERE v < {k} OR tag = {}",
                    if *b { "TRUE" } else { "FALSE" }
                )
            }
        }
    }
}

/// Queries in the overlap of both engines: projections (plain and
/// computed), CASE, grouped aggregates (plain and computed arguments),
/// and — where marked `Ordered` — fully-ordered ORDER BY/LIMIT results
/// that must agree *as lists*, not just as multisets.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Cmp {
    Multiset,
    Ordered,
}

fn queries(pred: &Pred) -> Vec<(String, Cmp)> {
    let w = pred.to_sql();
    vec![
        (format!("SELECT g, v FROM t{w}"), Cmp::Multiset),
        (format!("SELECT v FROM t{w}"), Cmp::Multiset),
        (format!("SELECT v * 2 + 1 AS d, g FROM t{w}"), Cmp::Multiset),
        (
            format!("SELECT CASE WHEN v > 0 THEN 'pos' ELSE 'nonpos' END AS sign, v FROM t{w}"),
            Cmp::Multiset,
        ),
        (
            format!("SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t{w} GROUP BY g"),
            Cmp::Multiset,
        ),
        (
            format!("SELECT g, MIN(v) AS lo, MAX(v) AS hi FROM t{w} GROUP BY g"),
            Cmp::Multiset,
        ),
        (
            format!("SELECT g, AVG(v) AS m FROM t{w} GROUP BY g"),
            Cmp::Multiset,
        ),
        (
            format!("SELECT g, SUM(v + 1) AS s, COUNT(v) AS cv FROM t{w} GROUP BY g"),
            Cmp::Multiset,
        ),
        // Total order over every output column → comparable as lists.
        (
            format!("SELECT g, v, tag FROM t{w} ORDER BY v, g, tag"),
            Cmp::Ordered,
        ),
        (
            format!("SELECT g, v FROM t{w} ORDER BY v DESC, g DESC LIMIT 7"),
            Cmp::Ordered,
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn olap_and_oltp_agree(
        rows in prop::collection::vec(row_strategy(), 0..60),
        pred in pred_strategy(),
    ) {
        let mut olap = Database::new();
        let mut oltp = OltpEngine::new();
        let ddl = "CREATE TABLE t (g VARCHAR, v INTEGER, tag BOOLEAN)";
        olap.execute(ddl).unwrap();
        oltp.execute(ddl).unwrap();
        for r in &rows {
            let stmt = format!(
                "INSERT INTO t VALUES ('g{}', {}, {})",
                r.g,
                r.v,
                if r.tag { "TRUE" } else { "FALSE" }
            );
            olap.execute(&stmt).unwrap();
            oltp.execute(&stmt).unwrap();
        }
        for (q, cmp) in queries(&pred) {
            let a = olap.query(&q).unwrap().rows;
            let b = oltp.execute(&q).unwrap().rows;
            let agree = match cmp {
                Cmp::Multiset => rows_equal_as_multisets(&a, &b),
                Cmp::Ordered => a == b,
            };
            prop_assert!(agree, "engines disagree on {q}:\n olap={a:?}\n oltp={b:?}");
        }
    }

    #[test]
    fn engines_agree_after_updates_and_deletes(
        rows in prop::collection::vec(row_strategy(), 1..40),
        delete_g in 0u8..5,
        add in -10i32..10,
    ) {
        let mut olap = Database::new();
        let mut oltp = OltpEngine::new();
        let ddl = "CREATE TABLE t (g VARCHAR, v INTEGER, tag BOOLEAN)";
        olap.execute(ddl).unwrap();
        oltp.execute(ddl).unwrap();
        for r in &rows {
            let stmt = format!(
                "INSERT INTO t VALUES ('g{}', {}, {})",
                r.g, r.v, if r.tag { "TRUE" } else { "FALSE" }
            );
            olap.execute(&stmt).unwrap();
            oltp.execute(&stmt).unwrap();
        }
        let upd = format!("UPDATE t SET v = v + {add} WHERE tag = TRUE");
        let del = format!("DELETE FROM t WHERE g = 'g{delete_g}'");
        for stmt in [&upd, &del] {
            let a = olap.execute(stmt).unwrap().rows_affected;
            let b = oltp.execute(stmt).unwrap().rows_affected;
            prop_assert_eq!(a, b, "rows_affected diverged for {}", stmt);
        }
        let q = "SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t GROUP BY g";
        let a = olap.query(q).unwrap().rows;
        let b = oltp.execute(q).unwrap().rows;
        prop_assert!(rows_equal_as_multisets(&a, &b));
    }
}

/// Deterministic pin at the executor's batch boundary: 1025 rows straddle
/// the default 1024-row batch, so every streamed operator crosses a batch
/// edge while the row-at-a-time OLTP engine is oblivious to batching.
#[test]
fn engines_agree_across_batch_boundary() {
    let mut olap = Database::new();
    let mut oltp = OltpEngine::new();
    let ddl = "CREATE TABLE t (g VARCHAR, v INTEGER, tag BOOLEAN)";
    olap.execute(ddl).unwrap();
    oltp.execute(ddl).unwrap();
    let values: Vec<String> = (0..1025)
        .map(|v| {
            format!(
                "('g{}', {}, {})",
                v % 7,
                v,
                if v % 3 == 0 { "TRUE" } else { "FALSE" }
            )
        })
        .collect();
    let insert = format!("INSERT INTO t VALUES {}", values.join(", "));
    olap.execute(&insert).unwrap();
    oltp.execute(&insert).unwrap();
    for (q, cmp) in queries(&Pred::VCmp(">", 40)) {
        let a = olap.query(&q).unwrap().rows;
        let b = oltp.execute(&q).unwrap().rows;
        let agree = match cmp {
            Cmp::Multiset => rows_equal_as_multisets(&a, &b),
            Cmp::Ordered => a == b,
        };
        assert!(agree, "engines disagree on {q}:\n olap={a:?}\n oltp={b:?}");
    }
}

#[test]
fn engines_agree_on_empty_table() {
    let mut olap = Database::new();
    let mut oltp = OltpEngine::new();
    let ddl = "CREATE TABLE t (g VARCHAR, v INTEGER, tag BOOLEAN)";
    olap.execute(ddl).unwrap();
    oltp.execute(ddl).unwrap();
    let q = "SELECT g, SUM(v) AS s FROM t GROUP BY g";
    assert!(olap.query(q).unwrap().rows.is_empty());
    assert!(oltp.execute(q).unwrap().rows.is_empty());
    // Global aggregate over empty input: one all-NULL/zero row on both.
    let q = "SELECT SUM(v) AS s, COUNT(*) AS c FROM t";
    let a = olap.query(q).unwrap().rows;
    let b = oltp.execute(q).unwrap().rows;
    assert_eq!(a, vec![vec![Value::Null, Value::Integer(0)]]);
    assert_eq!(a, b);
}
