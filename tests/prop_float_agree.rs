//! Float aggregation determinism: parallel SUM/AVG must equal the serial
//! result **bitwise**, not merely within rounding noise. The exact
//! accumulator (`ExactSum`) keeps Shewchuk non-overlapping partials, so
//! the final rounding is independent of morsel boundaries and merge
//! order — workers 1, 2, and 4 must produce identical bit patterns even
//! over adversarial magnitude mixes (1e-300 .. 1e300, cancellation,
//! signed zeros).
//!
//! Rows are inserted through the storage API as `Value::Double`, not as
//! SQL literals, so no decimal round-trip can mask a divergence.

use std::collections::BTreeMap;

use openivm::ivm_engine::{Database, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct FRow {
    g: u8,
    v: f64,
}

/// Adversarial doubles: wide exponent range, both signs, plus exact
/// killer values (MAX-adjacent magnitudes would overflow the true sum,
/// which is out of scope — parallel-vs-serial for non-finite totals is
/// IEEE-sticky, not bitwise-deterministic).
fn double_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        // sign * mantissa * 2^exp, exponent swept across ~600 decimal
        // orders of magnitude.
        (any::<bool>(), 1u64..(1 << 52), -900i32..900).prop_map(|(neg, m, e)| {
            let d = (m as f64) * (e as f64 / 64.0).exp2();
            if neg {
                -d
            } else {
                d
            }
        }),
        Just(0.0),
        Just(-0.0),
        Just(1.0),
        Just(-1.0),
        Just(1e-300),
        Just(1e300),
        Just(-1e300),
        Just(f64::EPSILON),
        Just(1.0 + f64::EPSILON),
    ]
}

fn frow_strategy() -> impl Strategy<Value = FRow> {
    (0u8..5, double_strategy()).prop_map(|(g, v)| FRow { g, v })
}

fn database(workers: usize, rows: &[FRow]) -> Database {
    let mut db = Database::new();
    db.set_parallelism(workers);
    db.set_morsel_size(32);
    db.execute("CREATE TABLE t (g VARCHAR, v DOUBLE)").unwrap();
    let table = db.catalog_mut().table_mut("t").unwrap();
    for r in rows {
        table
            .insert(vec![
                Value::Varchar(format!("g{}", r.g)),
                Value::Double(r.v),
            ])
            .unwrap();
    }
    db
}

/// Group rows by key and extract the aggregate bit patterns.
fn agg_bits(db: &Database, sql: &str) -> BTreeMap<String, Vec<u64>> {
    let result = db.query(sql).unwrap();
    let mut out = BTreeMap::new();
    for row in result.rows {
        let key = match &row[0] {
            Value::Varchar(s) => s.clone(),
            Value::Null => "<null>".to_string(),
            other => format!("{other}"),
        };
        let bits = row[1..]
            .iter()
            .map(|v| match v {
                Value::Double(d) => d.to_bits(),
                Value::Integer(i) => (*i as f64).to_bits(),
                Value::Null => u64::MAX, // sentinel outside NaN payload use
                other => panic!("unexpected aggregate value {other:?}"),
            })
            .collect();
        assert!(out.insert(key, bits).is_none(), "duplicate group key");
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn float_aggregates_are_bitwise_identical_across_workers(
        rows in prop::collection::vec(frow_strategy(), 0..300),
    ) {
        let queries = [
            "SELECT g, SUM(v) AS s FROM t GROUP BY g",
            "SELECT g, AVG(v) AS a FROM t GROUP BY g",
            "SELECT g, SUM(v) AS s, AVG(v) AS a, COUNT(*) AS c FROM t GROUP BY g",
        ];
        let serial = database(1, &rows);
        for workers in [2usize, 4] {
            let parallel = database(workers, &rows);
            for q in &queries {
                let expected = agg_bits(&serial, q);
                let got = agg_bits(&parallel, q);
                prop_assert_eq!(
                    &expected, &got,
                    "workers={} query={} diverged from serial bit pattern",
                    workers, q
                );
            }
        }
    }
}
