//! Property tests for the flat open-addressing hash infrastructure
//! (`ivm_engine::exec::hash`): the [`FlatTable`] + arena pattern must
//! behave exactly like `std::collections::HashMap` keyed on the same
//! grouping equality, including under forced hash collisions, NULL keys,
//! and growth across the executor batch boundaries.

use std::collections::HashMap;

use openivm::ivm_engine::exec::hash::{hash_row, hash_value, FlatTable, ProbeMode, RowSet};
use openivm::ivm_engine::{Database, Value};
use proptest::prelude::*;

/// A generator over groupable values of every runtime type, NULL
/// included.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Boolean),
        (-50i64..50).prop_map(Value::Integer),
        (-50i64..50).prop_map(|v| Value::Double(v as f64 / 2.0)),
        "[a-d]{0,3}".prop_map(Value::from),
        (-100i32..100).prop_map(Value::Date),
    ]
}

fn key_strategy() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(value_strategy(), 1..3)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Grouping-map equivalence: folding a random key batch through a
    /// FlatTable + arena produces exactly the distinct-key set, first-seen
    /// order, and per-key multiplicities of a `HashMap` over the same keys.
    #[test]
    fn flat_table_matches_hashmap_grouping(keys in prop::collection::vec(key_strategy(), 0..300)) {
        // Model: HashMap keyed by the materialized row.
        let mut model: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut model_order: Vec<Vec<Value>> = Vec::new();
        for k in &keys {
            match model.get_mut(k) {
                Some(c) => *c += 1,
                None => {
                    model.insert(k.clone(), 1);
                    model_order.push(k.clone());
                }
            }
        }
        // Under test: FlatTable with arena-stored keys and counts.
        let mut table = FlatTable::new();
        let mut arena: Vec<Vec<Value>> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        for k in &keys {
            let h = hash_row(k);
            match table.find(h, |p| &arena[p as usize] == k) {
                Some(p) => counts[p as usize] += 1,
                None => {
                    let idx = arena.len() as u32;
                    arena.push(k.clone());
                    counts.push(1);
                    table.insert(h, idx);
                }
            }
        }
        prop_assert_eq!(table.len(), model.len());
        prop_assert_eq!(&arena, &model_order, "first-seen order must match");
        for (k, c) in arena.iter().zip(&counts) {
            prop_assert_eq!(model.get(k), Some(c), "multiplicity of {:?}", k);
        }
        // Negative probes: a key absent from the model is absent here.
        for k in &keys {
            let mut missing = k.clone();
            missing.push(Value::Integer(1_000_000));
            let h = hash_row(&missing);
            prop_assert_eq!(table.find(h, |p| arena[p as usize] == missing), None);
        }
    }

    /// Hash consistency: keys equal under grouping equality always hash
    /// equal (the FlatTable contract — a violation splits a group).
    #[test]
    fn grouping_equality_implies_hash_equality(a in key_strategy(), b in key_strategy()) {
        if a == b {
            prop_assert_eq!(hash_row(&a), hash_row(&b));
        }
        for (x, y) in a.iter().zip(&b) {
            if x == y {
                prop_assert_eq!(hash_value(x), hash_value(y), "{:?} vs {:?}", x, y);
            }
        }
    }

    /// RowSet (the DISTINCT structure) deduplicates exactly like a
    /// HashMap-backed set over materialized rows.
    #[test]
    fn row_set_matches_hashset(keys in prop::collection::vec(key_strategy(), 0..200)) {
        let mut model: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
        let mut set = RowSet::new();
        for k in &keys {
            let fresh_model = model.insert(k.clone());
            let fresh = set.insert_row(hash_row(k), k.clone());
            prop_assert_eq!(fresh, fresh_model, "disagree on {:?}", k);
        }
    }
}

/// Forced collisions: keys engineered to share one hash must still
/// resolve through probing + the equality closure, across growth.
#[test]
fn forced_collisions_resolve() {
    let mut table = FlatTable::new();
    let arena: Vec<i64> = (0..2000).collect();
    for (i, _) in arena.iter().enumerate() {
        // Two hash classes only → ~1000-long probe chains each, plus
        // multiple growth rounds while chains are live.
        let h = (i % 2) as u64;
        table.insert(h, i as u32);
    }
    assert_eq!(table.len(), 2000);
    for (i, v) in arena.iter().enumerate() {
        let h = (i % 2) as u64;
        assert_eq!(
            table.find(h, |p| arena[p as usize] == *v),
            Some(i as u32),
            "entry {i} lost under collisions"
        );
        // Same hash, absent key.
        assert_eq!(table.find(h, |p| arena[p as usize] == -1), None);
    }
}

/// Table growth across the executor batch boundaries: exactly
/// 0/1/1023/1024/1025 distinct keys inserted and re-found.
#[test]
fn growth_at_batch_boundaries() {
    for n in [0usize, 1, 1023, 1024, 1025] {
        let mut table = FlatTable::new();
        for k in 0..n as u32 {
            let h = hash_value(&Value::Integer(i64::from(k)));
            assert_eq!(table.find(h, |p| p == k), None, "n={n} premature {k}");
            table.insert(h, k);
        }
        assert_eq!(table.len(), n);
        for k in 0..n as u32 {
            let h = hash_value(&Value::Integer(i64::from(k)));
            assert_eq!(table.find(h, |p| p == k), Some(k), "n={n} lost {k}");
        }
    }
}

/// NULL-key semantics through the SQL surface: NULL join keys never
/// match (but outer rows survive), NULL group keys group together, and
/// DISTINCT treats NULL as one value — at sizes crossing batch
/// boundaries so the flat tables grow mid-query.
#[test]
fn null_keys_through_sql() {
    for n in [1usize, 1023, 1024, 1025] {
        let mut db = Database::new();
        db.execute("CREATE TABLE l (k INTEGER, v INTEGER)").unwrap();
        db.execute("CREATE TABLE r (k INTEGER, w INTEGER)").unwrap();
        {
            let t = db.catalog_mut().table_mut("l").unwrap();
            for i in 0..n {
                // Every third key NULL.
                let k = if i % 3 == 0 {
                    Value::Null
                } else {
                    Value::Integer((i % 50) as i64)
                };
                t.insert(vec![k, Value::Integer(i as i64)]).unwrap();
            }
        }
        {
            let t = db.catalog_mut().table_mut("r").unwrap();
            for i in 0..50 {
                let k = if i % 10 == 0 {
                    Value::Null
                } else {
                    Value::Integer(i as i64)
                };
                t.insert(vec![k, Value::Integer(i as i64 * 100)]).unwrap();
            }
        }
        // Inner join: no NULL key on either side ever matches.
        let inner = db
            .query("SELECT l.v, r.w FROM l JOIN r ON l.k = r.k")
            .unwrap();
        let non_null_l = (0..n).filter(|i| i % 3 != 0).count();
        assert!(inner.rows.len() <= non_null_l, "n={n}");
        // Left join: every left row survives exactly once or with matches.
        let left = db
            .query("SELECT l.v, r.w FROM l LEFT JOIN r ON l.k = r.k")
            .unwrap();
        assert!(left.rows.len() >= n, "n={n}");
        let null_padded = left.rows.iter().filter(|row| row[1].is_null()).count();
        assert!(null_padded >= n.div_ceil(3), "n={n}: NULL keys must pad");
        // NULL group keys form ONE group.
        let grouped = db
            .query("SELECT k, COUNT(*) AS c FROM l GROUP BY k")
            .unwrap();
        let null_groups = grouped.rows.iter().filter(|row| row[0].is_null()).count();
        assert_eq!(null_groups, 1, "n={n}: NULLs group together");
        // DISTINCT: NULL is one value.
        let distinct = db.query("SELECT DISTINCT k FROM l").unwrap();
        let nulls = distinct.rows.iter().filter(|row| row[0].is_null()).count();
        assert_eq!(nulls, 1, "n={n}");
    }
}

/// Join/aggregate results are invariant across executor batch sizes that
/// straddle the table-growth boundaries (the flat tables are internal —
/// output must not depend on when they grow).
#[test]
fn results_invariant_across_batch_sizes() {
    let build = |batch_size: usize| {
        let mut db = Database::with_batch_size(batch_size);
        db.execute("CREATE TABLE t (g INTEGER, v INTEGER)").unwrap();
        {
            let t = db.catalog_mut().table_mut("t").unwrap();
            for i in 0..1025 {
                t.insert(vec![
                    Value::Integer((i % 97) as i64),
                    Value::Integer(i as i64),
                ])
                .unwrap();
            }
        }
        db
    };
    let reference = build(1024);
    let expect_group = reference
        .query("SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t GROUP BY g")
        .unwrap()
        .rows;
    let expect_join = reference
        .query("SELECT a.v, b.v FROM t AS a JOIN t AS b ON a.g = b.g WHERE a.v < 20 ORDER BY 1, 2")
        .unwrap()
        .rows;
    for bs in [1usize, 7, 1023, 1025] {
        let db = build(bs);
        assert_eq!(
            db.query("SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t GROUP BY g")
                .unwrap()
                .rows,
            expect_group,
            "batch_size={bs}"
        );
        assert_eq!(
            db.query(
                "SELECT a.v, b.v FROM t AS a JOIN t AS b ON a.g = b.g WHERE a.v < 20 ORDER BY 1, 2"
            )
            .unwrap()
            .rows,
            expect_join,
            "batch_size={bs}"
        );
    }
}

/// Every probe mode, over every table under test.
const PROBE_MODES: [ProbeMode; 3] = [ProbeMode::Scalar, ProbeMode::Swar, ProbeMode::Sse2];

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Group-scan parity: the SWAR and SSE2 tag scans return exactly what
    /// the byte-at-a-time scalar scan returns — same payload on hits,
    /// `None` on misses — on tables grown through arbitrary insert
    /// sequences. Squeezing hashes into a handful of classes forces long
    /// probe sequences *and* identical 7-bit control tags packed densely
    /// into shared groups, the worst case for a vectorized tag compare.
    #[test]
    fn probe_modes_match_scalar(
        payloads in prop::collection::vec(0u32..5000, 0..600),
        classes in 1u64..8,
    ) {
        let mut table = FlatTable::new();
        for (i, &p) in payloads.iter().enumerate() {
            let h = (i as u64 % classes).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            table.insert(h, p);
        }
        for (i, &p) in payloads.iter().enumerate() {
            let h = (i as u64 % classes).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let scalar = table.find_in_mode(h, |q| q == p, ProbeMode::Scalar);
            prop_assert_eq!(scalar, Some(p), "scalar lost entry {}", i);
            for mode in PROBE_MODES {
                prop_assert_eq!(
                    table.find_in_mode(h, |q| q == p, mode),
                    scalar,
                    "{:?} disagrees on entry {}",
                    mode,
                    i
                );
            }
        }
        // Misses agree in every mode: same hash class, absent payload.
        for cls in 0..classes {
            let h = cls.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for mode in PROBE_MODES {
                prop_assert_eq!(table.find_in_mode(h, |q| q == u32::MAX, mode), None);
            }
        }
    }
}

/// Probe-mode parity across growth at the executor batch boundaries
/// (0/1/1023/1024/1025), plus re-insertion under the same hashes after
/// growth: the table never deletes, so chains extend tombstone-free and
/// every mode still resolves both the old and the new payloads.
#[test]
fn probe_modes_agree_across_growth_and_reinsertion() {
    for n in [0usize, 1, 1023, 1024, 1025] {
        let mut table = FlatTable::new();
        for k in 0..n as u32 {
            table.insert(hash_value(&Value::Integer(i64::from(k))), k);
        }
        for k in 0..n as u32 {
            let h = hash_value(&Value::Integer(i64::from(k)));
            for mode in PROBE_MODES {
                assert_eq!(
                    table.find_in_mode(h, |p| p == k, mode),
                    Some(k),
                    "n={n} k={k} {mode:?}"
                );
            }
        }
        // Second wave on the same hashes (no tombstones exist to reuse —
        // inserts only ever take first-empty slots).
        for k in 0..n as u32 {
            table.insert(hash_value(&Value::Integer(i64::from(k))), n as u32 + k);
        }
        assert_eq!(table.len(), 2 * n);
        for k in 0..n as u32 {
            let h = hash_value(&Value::Integer(i64::from(k)));
            for (want, miss) in [(k, false), (n as u32 + k, false), (u32::MAX, true)] {
                let expect = if miss { None } else { Some(want) };
                for mode in PROBE_MODES {
                    assert_eq!(
                        table.find_in_mode(h, |p| p == want, mode),
                        expect,
                        "n={n} k={k} want={want} {mode:?}"
                    );
                }
            }
        }
    }
}
