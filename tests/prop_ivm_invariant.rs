//! The central IVM property (DBSP's correctness statement): for arbitrary
//! change sequences ΔT, the incrementally-maintained view equals the view
//! recomputed from scratch — `I(f(ΔT)) == Q(I(ΔT))`.

use openivm::ivm_core::{IvmFlags, IvmSession, UpsertStrategy};
use proptest::prelude::*;

/// One random base-table operation.
#[derive(Debug, Clone)]
enum Op {
    Insert { g: u8, v: i16 },
    DeleteWhere { g: u8, below: i16 },
    UpdateAdd { g: u8, add: i16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..6, -50i16..50).prop_map(|(g, v)| Op::Insert { g, v }),
        1 => (0u8..6, -50i16..50).prop_map(|(g, below)| Op::DeleteWhere { g, below }),
        1 => (0u8..6, -5i16..5).prop_map(|(g, add)| Op::UpdateAdd { g, add }),
    ]
}

fn apply(ivm: &mut IvmSession, op: &Op) {
    match op {
        Op::Insert { g, v } => {
            ivm.execute(&format!("INSERT INTO t VALUES ('g{g}', {v})"))
                .unwrap();
        }
        Op::DeleteWhere { g, below } => {
            ivm.execute(&format!("DELETE FROM t WHERE k = 'g{g}' AND v < {below}"))
                .unwrap();
        }
        Op::UpdateAdd { g, add } => {
            ivm.execute(&format!("UPDATE t SET v = v + {add} WHERE k = 'g{g}'"))
                .unwrap();
        }
    }
}

fn run_view(view_sql: &str, strategy: UpsertStrategy, ops: &[Op]) {
    let needs_index = strategy.needs_index();
    let flags = IvmFlags {
        upsert_strategy: strategy,
        index_creation: if needs_index {
            openivm::ivm_core::IndexCreation::AfterPopulate
        } else {
            openivm::ivm_core::IndexCreation::None
        },
        ..IvmFlags::paper_defaults()
    };
    let mut ivm = IvmSession::new(flags);
    ivm.execute("CREATE TABLE t (k VARCHAR, v INTEGER)")
        .unwrap();
    // A little seed data so the initial population is non-trivial.
    ivm.execute("INSERT INTO t VALUES ('g0', 1), ('g1', -2), ('g1', 5)")
        .unwrap();
    ivm.execute(view_sql).unwrap();
    for (i, op) in ops.iter().enumerate() {
        apply(&mut ivm, op);
        // Check at every step: a transiently-wrong view is still a bug.
        assert!(
            ivm.check_consistency("v").unwrap(),
            "view diverged after op {i}: {op:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case replays a full DML sequence with per-step checks
        ..ProptestConfig::default()
    })]

    #[test]
    fn sum_count_view_stays_consistent(ops in prop::collection::vec(op_strategy(), 1..25)) {
        run_view(
            "CREATE MATERIALIZED VIEW v AS \
             SELECT k, SUM(v) AS s, COUNT(*) AS c FROM t GROUP BY k",
            UpsertStrategy::LeftJoinUpsert,
            &ops,
        );
    }

    #[test]
    fn avg_view_stays_consistent(ops in prop::collection::vec(op_strategy(), 1..20)) {
        run_view(
            "CREATE MATERIALIZED VIEW v AS SELECT k, AVG(v) AS m FROM t GROUP BY k",
            UpsertStrategy::LeftJoinUpsert,
            &ops,
        );
    }

    #[test]
    fn min_max_view_stays_consistent(ops in prop::collection::vec(op_strategy(), 1..20)) {
        run_view(
            "CREATE MATERIALIZED VIEW v AS \
             SELECT k, MIN(v) AS lo, MAX(v) AS hi FROM t GROUP BY k",
            UpsertStrategy::LeftJoinUpsert,
            &ops,
        );
    }

    #[test]
    fn filtered_projection_stays_consistent(ops in prop::collection::vec(op_strategy(), 1..20)) {
        run_view(
            "CREATE MATERIALIZED VIEW v AS SELECT k, v FROM t WHERE v > 0",
            UpsertStrategy::LeftJoinUpsert,
            &ops,
        );
    }

    #[test]
    fn union_regroup_strategy_stays_consistent(ops in prop::collection::vec(op_strategy(), 1..20)) {
        run_view(
            "CREATE MATERIALIZED VIEW v AS SELECT k, SUM(v) AS s FROM t GROUP BY k",
            UpsertStrategy::UnionRegroup,
            &ops,
        );
    }

    #[test]
    fn full_outer_join_strategy_stays_consistent(ops in prop::collection::vec(op_strategy(), 1..20)) {
        run_view(
            "CREATE MATERIALIZED VIEW v AS SELECT k, SUM(v) AS s FROM t GROUP BY k",
            UpsertStrategy::FullOuterJoin,
            &ops,
        );
    }
}

/// Join views get their own generator: two tables, deltas on both sides.
#[derive(Debug, Clone)]
enum JoinOp {
    InsertFact { key: u8, amount: i16 },
    InsertDim { key: u8 },
    DeleteFact { key: u8 },
    DeleteDim { key: u8 },
}

fn join_op_strategy() -> impl Strategy<Value = JoinOp> {
    prop_oneof![
        4 => (0u8..5, -30i16..30).prop_map(|(key, amount)| JoinOp::InsertFact { key, amount }),
        2 => (0u8..5).prop_map(|key| JoinOp::InsertDim { key }),
        1 => (0u8..5).prop_map(|key| JoinOp::DeleteFact { key }),
        1 => (0u8..5).prop_map(|key| JoinOp::DeleteDim { key }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn join_aggregate_view_stays_consistent(
        ops in prop::collection::vec(join_op_strategy(), 1..20),
    ) {
        let mut ivm = IvmSession::with_defaults();
        ivm.execute("CREATE TABLE facts (key INTEGER, amount INTEGER)").unwrap();
        ivm.execute("CREATE TABLE dims (key INTEGER, label VARCHAR)").unwrap();
        ivm.execute("INSERT INTO dims VALUES (0, 'd0'), (1, 'd1')").unwrap();
        ivm.execute("INSERT INTO facts VALUES (0, 10), (1, 20)").unwrap();
        ivm.execute(
            "CREATE MATERIALIZED VIEW v AS \
             SELECT dims.label, SUM(facts.amount) AS total \
             FROM facts JOIN dims ON facts.key = dims.key GROUP BY dims.label",
        ).unwrap();
        let mut dim_serial = 100;
        for (i, op) in ops.iter().enumerate() {
            match op {
                JoinOp::InsertFact { key, amount } => {
                    ivm.execute(&format!("INSERT INTO facts VALUES ({key}, {amount})")).unwrap();
                }
                JoinOp::InsertDim { key } => {
                    // Dimension labels stay unique to avoid PK-free dupes.
                    dim_serial += 1;
                    ivm.execute(&format!(
                        "INSERT INTO dims VALUES ({key}, 'd{key}_{dim_serial}')"
                    )).unwrap();
                }
                JoinOp::DeleteFact { key } => {
                    ivm.execute(&format!("DELETE FROM facts WHERE key = {key}")).unwrap();
                }
                JoinOp::DeleteDim { key } => {
                    ivm.execute(&format!("DELETE FROM dims WHERE key = {key}")).unwrap();
                }
            }
            prop_assert!(
                ivm.check_consistency("v").unwrap(),
                "join view diverged after op {}: {:?}", i, op
            );
        }
    }
}
