//! Parallel-executor differential testing: the same workload executed at
//! parallelism 1 (the serial operator tree), 2, and 4 must agree —
//! ordered queries compared as lists, unordered queries as multisets.
//!
//! Morsel size is shrunk to 32 slots so even property-sized tables span
//! many morsels and genuinely exercise the morsel scheduler, partitioned
//! joins, and partitioned aggregation.

use openivm::ivm_engine::{Database, Value};
use openivm::ivm_htap::rows_equal_as_multisets;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Row {
    g: u8,
    v: i32,
    tag: bool,
}

fn row_strategy() -> impl Strategy<Value = Row> {
    (0u8..6, -100i32..100, any::<bool>()).prop_map(|(g, v, tag)| Row { g, v, tag })
}

/// Whether results are order-sensitive (compared as lists) or bags.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Cmp {
    Multiset,
    Ordered,
}

fn queries() -> Vec<(&'static str, Cmp)> {
    vec![
        ("SELECT g, v, tag FROM t", Cmp::Multiset),
        (
            "SELECT v * 2 + 1 AS d, g FROM t WHERE v > -20",
            Cmp::Multiset,
        ),
        (
            "SELECT CASE WHEN v > 0 THEN 'pos' ELSE 'nonpos' END AS s, v FROM t",
            Cmp::Multiset,
        ),
        (
            "SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t GROUP BY g",
            Cmp::Multiset,
        ),
        (
            "SELECT g, MIN(v) AS lo, MAX(v) AS hi, AVG(v) AS m FROM t GROUP BY g",
            Cmp::Multiset,
        ),
        (
            "SELECT g, COUNT(DISTINCT tag) AS d FROM t GROUP BY g",
            Cmp::Multiset,
        ),
        (
            "SELECT SUM(v) AS s, COUNT(*) AS c FROM t WHERE tag = TRUE",
            Cmp::Multiset,
        ),
        (
            "SELECT t.v, d.name FROM t JOIN dim AS d ON t.g = d.id",
            Cmp::Multiset,
        ),
        (
            "SELECT t.v, d.name FROM t LEFT JOIN dim AS d ON t.g = d.id AND t.v > 0",
            Cmp::Multiset,
        ),
        (
            "SELECT t.v, d.name FROM t FULL JOIN dim AS d ON t.g = d.id",
            Cmp::Multiset,
        ),
        (
            "SELECT d.name, SUM(t.v) AS s FROM t JOIN dim AS d ON t.g = d.id GROUP BY d.name",
            Cmp::Multiset,
        ),
        ("SELECT DISTINCT g, tag FROM t", Cmp::Multiset),
        (
            "SELECT v FROM t EXCEPT SELECT v FROM t WHERE tag = TRUE",
            Cmp::Multiset,
        ),
        // Total order over every output column → comparable as lists.
        ("SELECT g, v, tag FROM t ORDER BY v, g, tag", Cmp::Ordered),
        (
            "SELECT g, v FROM t ORDER BY v DESC, g DESC LIMIT 9",
            Cmp::Ordered,
        ),
    ]
}

fn database(workers: usize, rows: &[Row]) -> Database {
    let mut db = Database::new();
    db.set_parallelism(workers);
    db.set_morsel_size(32);
    db.execute("CREATE TABLE t (g VARCHAR, v INTEGER, tag BOOLEAN)")
        .unwrap();
    // dim covers g0..g3: g4/g5 probe misses, one dim row ('gx') never
    // matches — exercising outer padding and FULL OUTER tails.
    db.execute("CREATE TABLE dim (id VARCHAR, name VARCHAR)")
        .unwrap();
    for d in 0..4 {
        db.execute(&format!("INSERT INTO dim VALUES ('g{d}', 'name{d}')"))
            .unwrap();
    }
    db.execute("INSERT INTO dim VALUES ('gx', 'lonely')")
        .unwrap();
    if !rows.is_empty() {
        let values: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "('g{}', {}, {})",
                    r.g,
                    r.v,
                    if r.tag { "TRUE" } else { "FALSE" }
                )
            })
            .collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn parallelism_levels_agree(
        rows in prop::collection::vec(row_strategy(), 0..200),
        delete_g in 0u8..6,
    ) {
        let mut dbs: Vec<Database> = [1usize, 2, 4]
            .iter()
            .map(|&w| database(w, &rows))
            .collect();
        // Tombstone a slice so morsel windows carry selection vectors.
        for db in &mut dbs {
            db.execute(&format!("DELETE FROM t WHERE g = 'g{delete_g}' AND v < 0"))
                .unwrap();
        }
        for (q, cmp) in queries() {
            let serial = dbs[0].query(q).unwrap().rows;
            for db in &dbs[1..] {
                let par = db.query(q).unwrap().rows;
                let agree = match cmp {
                    Cmp::Multiset => rows_equal_as_multisets(&serial, &par),
                    Cmp::Ordered => serial == par,
                };
                prop_assert!(
                    agree,
                    "parallelism {} disagrees with serial on {q}:\n serial={serial:?}\n parallel={par:?}",
                    db.parallelism()
                );
            }
        }
    }
}

/// Deterministic pin at the morsel boundary: 1025 rows with a 32-slot
/// morsel is 33 morsels (the last one a single row), so every pipeline
/// crosses morsel edges while the serial engine is oblivious to them.
#[test]
fn parallel_agrees_across_morsel_boundary() {
    let rows: Vec<Row> = (0..1025)
        .map(|i| Row {
            g: (i % 6) as u8,
            v: (i * 37) % 199 - 99,
            tag: i % 3 == 0,
        })
        .collect();
    let serial = database(1, &rows);
    for workers in [2usize, 4] {
        let par = database(workers, &rows);
        for (q, cmp) in queries() {
            let a = serial.query(q).unwrap().rows;
            let b = par.query(q).unwrap().rows;
            let agree = match cmp {
                Cmp::Multiset => rows_equal_as_multisets(&a, &b),
                Cmp::Ordered => a == b,
            };
            assert!(agree, "workers={workers} disagree on {q}");
        }
    }
}

/// The IVM pipeline end-to-end stays consistent when the OLAP engine runs
/// parallel: ingest → refresh → view equals recomputation.
#[test]
fn ivm_refresh_consistent_under_parallelism() {
    use openivm::ivm_core::IvmSession;
    for workers in [1usize, 4] {
        let mut ivm = IvmSession::with_defaults();
        ivm.set_parallelism(workers);
        ivm.database_mut().set_morsel_size(64);
        ivm.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
            .unwrap();
        ivm.execute(
            "CREATE MATERIALIZED VIEW qg AS \
             SELECT group_index, SUM(group_value) AS total \
             FROM groups GROUP BY group_index",
        )
        .unwrap();
        let changes: Vec<(Vec<Value>, bool)> = (0..500)
            .map(|i| {
                (
                    vec![Value::from(format!("g{}", i % 13)), Value::Integer(i % 29)],
                    true,
                )
            })
            .collect();
        ivm.ingest_deltas("groups", &changes).unwrap();
        ivm.refresh("qg").unwrap();
        assert!(ivm.check_consistency("qg").unwrap(), "workers={workers}");
        // Deletions flow through too.
        let deletions: Vec<(Vec<Value>, bool)> = (0..100)
            .map(|i| {
                (
                    vec![Value::from(format!("g{}", i % 13)), Value::Integer(i % 29)],
                    false,
                )
            })
            .collect();
        ivm.ingest_deltas("groups", &deletions).unwrap();
        ivm.refresh("qg").unwrap();
        assert!(ivm.check_consistency("qg").unwrap(), "workers={workers}");
        // The maintenance scripts hit the bound-plan cache on re-refresh.
        if workers == 1 {
            let (entries, hits) = ivm.database().plan_cache_stats();
            assert!(entries > 0, "maintenance statements cached");
            assert!(hits > 0, "second refresh reused cached plans");
        }
    }
}
