//! Property test: `parse(print(ast)) == ast` for generated expression and
//! statement trees, in both dialects.

use openivm::ivm_sql::ast::{
    BinaryOp, ColumnRef, Expr, Literal, Query, Select, SelectItem, SetExpr, Statement, TableRef,
    TypeName, UnaryOp,
};
use openivm::ivm_sql::{parse_statement, print_statement, Dialect, Ident};
use proptest::prelude::*;

fn ident_strategy() -> impl Strategy<Value = Ident> {
    // Arbitrary lowercase words, including ones that collide with keywords
    // (the printer must quote those).
    "[a-z][a-z0-9_]{0,8}".prop_map(Ident::new)
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        Just(Literal::Null),
        any::<bool>().prop_map(Literal::Boolean),
        any::<u32>().prop_map(|n| Literal::Number(n.to_string())),
        (any::<u16>(), 1u8..99).prop_map(|(a, b)| Literal::Number(format!("{a}.{b:02}"))),
        "[ -~]{0,12}".prop_map(Literal::String),
    ]
}

fn binary_op_strategy() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Or),
        Just(BinaryOp::And),
        Just(BinaryOp::Eq),
        Just(BinaryOp::NotEq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::LtEq),
        Just(BinaryOp::Gt),
        Just(BinaryOp::GtEq),
        Just(BinaryOp::Concat),
        Just(BinaryOp::Plus),
        Just(BinaryOp::Minus),
        Just(BinaryOp::Multiply),
        Just(BinaryOp::Divide),
        Just(BinaryOp::Modulo),
    ]
}

fn type_strategy() -> impl Strategy<Value = TypeName> {
    prop_oneof![
        Just(TypeName::Boolean),
        Just(TypeName::Integer),
        Just(TypeName::Double),
        Just(TypeName::Varchar),
        Just(TypeName::Date),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal_strategy().prop_map(Expr::Literal),
        ident_strategy().prop_map(|c| Expr::Column(ColumnRef {
            table: None,
            column: c
        })),
        (ident_strategy(), ident_strategy()).prop_map(|(t, c)| {
            Expr::Column(ColumnRef {
                table: Some(t),
                column: c,
            })
        }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), binary_op_strategy(), inner.clone()).prop_map(|(l, op, r)| {
                Expr::Binary {
                    left: Box::new(l),
                    op,
                    right: Box::new(r),
                }
            }),
            (
                prop_oneof![
                    Just(UnaryOp::Not),
                    Just(UnaryOp::Minus),
                    Just(UnaryOp::Plus)
                ],
                inner.clone()
            )
                .prop_map(|(op, e)| Expr::Unary {
                    op,
                    expr: Box::new(e)
                }),
            (
                ident_strategy(),
                prop::collection::vec(inner.clone(), 0..3),
                any::<bool>()
            )
                .prop_map(|(name, args, star)| {
                    // `f(*)` only without args; DISTINCT needs one arg.
                    let star = star && args.is_empty();
                    Expr::Function {
                        name,
                        args,
                        distinct: false,
                        star,
                    }
                }),
            (
                prop::option::of(inner.clone()),
                prop::collection::vec((inner.clone(), inner.clone()), 1..3),
                prop::option::of(inner.clone())
            )
                .prop_map(|(operand, branches, else_result)| Expr::Case {
                    operand: operand.map(Box::new),
                    branches,
                    else_result: else_result.map(Box::new),
                }),
            (inner.clone(), type_strategy()).prop_map(|(e, ty)| Expr::Cast {
                expr: Box::new(e),
                ty
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated
            }),
            (
                inner.clone(),
                prop::collection::vec(inner.clone(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated,
                }
            ),
            (inner.clone(), inner, any::<bool>()).prop_map(|(e, p, negated)| Expr::Like {
                expr: Box::new(e),
                pattern: Box::new(p),
                negated,
            }),
        ]
    })
}

fn select_statement_strategy() -> impl Strategy<Value = Statement> {
    (
        prop::collection::vec((expr_strategy(), prop::option::of(ident_strategy())), 1..4),
        prop::option::of(ident_strategy()),
        prop::option::of(expr_strategy()),
        prop::collection::vec(expr_strategy(), 0..2),
    )
        .prop_map(|(items, from, selection, group_by)| {
            let select = Select {
                distinct: false,
                projection: items
                    .into_iter()
                    .map(|(expr, alias)| SelectItem::Expr { expr, alias })
                    .collect(),
                from: from
                    .map(|t| {
                        vec![TableRef::Table {
                            name: t,
                            alias: None,
                        }]
                    })
                    .unwrap_or_default(),
                selection,
                group_by,
                having: None,
            };
            Statement::Query(Box::new(Query {
                ctes: vec![],
                body: SetExpr::Select(Box::new(select)),
                order_by: vec![],
                limit: None,
                offset: None,
            }))
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn expressions_round_trip(e in expr_strategy()) {
        let stmt = Statement::Query(Box::new(Query {
            ctes: vec![],
            body: SetExpr::Select(Box::new(Select::new(vec![SelectItem::expr(e)]))),
            order_by: vec![],
            limit: None,
            offset: None,
        }));
        for dialect in [Dialect::DuckDb, Dialect::Postgres] {
            let sql = print_statement(&stmt, dialect);
            let reparsed = parse_statement(&sql)
                .unwrap_or_else(|err| panic!("printed SQL failed to parse: {err}\n{sql}"));
            prop_assert_eq!(&reparsed, &stmt, "round trip failed for {}", sql);
        }
    }

    #[test]
    fn select_statements_round_trip(stmt in select_statement_strategy()) {
        let sql = print_statement(&stmt, Dialect::DuckDb);
        let reparsed = parse_statement(&sql)
            .unwrap_or_else(|err| panic!("printed SQL failed to parse: {err}\n{sql}"));
        prop_assert_eq!(&reparsed, &stmt, "round trip failed for {}", sql);
    }
}

proptest! {
    /// The lexer and parser must never panic, whatever bytes arrive — they
    /// either produce a statement or a structured error.
    #[test]
    fn lexer_and_parser_total_on_arbitrary_input(input in "\\PC{0,80}") {
        let _ = openivm::ivm_sql::tokenize(&input);
        let _ = openivm::ivm_sql::parse_statement(&input);
    }

    /// SQL-looking fragments exercise deeper parser paths without panics.
    #[test]
    fn parser_total_on_sql_shaped_noise(
        words in prop::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("GROUP"),
                Just("BY"), Just("("), Just(")"), Just(","), Just("*"),
                Just("JOIN"), Just("ON"), Just("AND"), Just("NOT"),
                Just("BETWEEN"), Just("CASE"), Just("WHEN"), Just("END"),
                Just("x"), Just("1"), Just("'s'"), Just("="), Just("INSERT"),
                Just("INTO"), Just("VALUES"), Just("UNION"), Just("ALL"),
            ],
            0..25,
        )
    ) {
        let sql = words.join(" ");
        let _ = openivm::ivm_sql::parse_statement(&sql);
    }
}
