//! Spill/in-memory equivalence testing: the same random workload
//! executed at memory budgets {unbounded, 64KB, 4KB, 1 byte ("one row
//! never fits")} × parallelism {1, 2, 4} must produce results that are
//! **row-identical to the unbounded serial run — values and order**.
//!
//! Spilling silently changes data paths (radix partitioning, temp-file
//! round trips, partition-at-a-time rebuilds), so this harness is the
//! proof obligation of the spill subsystem: every query class that can
//! spill (hash joins of every kind, GROUP BY with and without DISTINCT
//! aggregates, DISTINCT, EXCEPT/INTERSECT/UNION) is compared as an exact
//! list, and the constrained budgets additionally assert through the
//! session spill counters that the spill path genuinely ran.

use openivm::ivm_engine::Database;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Row {
    g: u8,
    v: i32,
    tag: bool,
}

fn row_strategy() -> impl Strategy<Value = Row> {
    (0u8..6, -100i32..100, any::<bool>()).prop_map(|(g, v, tag)| Row { g, v, tag })
}

/// Query classes covering every spill-capable operator. All results are
/// compared as exact lists: the spill paths restore the serial emission
/// order, so even unordered queries must match row for row.
fn queries() -> Vec<&'static str> {
    vec![
        // Hash joins: inner / left outer (with residual) / full outer.
        "SELECT t.v, d.name FROM t JOIN dim AS d ON t.g = d.id",
        "SELECT t.v, d.name FROM t LEFT JOIN dim AS d ON t.g = d.id AND t.v > 0",
        "SELECT t.v, d.name FROM t FULL JOIN dim AS d ON t.g = d.id",
        // GROUP BY: every accumulator kind plus DISTINCT aggregates.
        "SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t GROUP BY g",
        "SELECT g, MIN(v) AS lo, MAX(v) AS hi, AVG(v) AS m FROM t GROUP BY g",
        "SELECT g, COUNT(DISTINCT tag) AS d, SUM(v) AS s FROM t GROUP BY g",
        // Join feeding an aggregation: two spill operators stacked.
        "SELECT d.name, SUM(t.v) AS s FROM t JOIN dim AS d ON t.g = d.id GROUP BY d.name",
        // DISTINCT and set operations.
        "SELECT DISTINCT g, tag FROM t",
        "SELECT v FROM t EXCEPT SELECT v FROM t WHERE tag = TRUE",
        "SELECT v FROM t WHERE tag = TRUE INTERSECT SELECT v FROM t",
        "SELECT g FROM t UNION SELECT id FROM dim",
        // ORDER BY above a spilled aggregation.
        "SELECT g, SUM(v) AS s FROM t GROUP BY g ORDER BY s DESC, g",
    ]
}

/// Budgets swept by the harness; `None` is the unbounded baseline.
/// 1 byte means even a single row overflows — the "1 row" budget.
fn budgets() -> Vec<Option<usize>> {
    vec![None, Some(64 * 1024), Some(4 * 1024), Some(1)]
}

fn database(workers: usize, budget: Option<usize>, rows: &[Row]) -> Database {
    let mut db = Database::new();
    db.set_parallelism(workers);
    db.set_morsel_size(32);
    db.set_memory_budget(budget);
    db.execute("CREATE TABLE t (g VARCHAR, v INTEGER, tag BOOLEAN)")
        .unwrap();
    // dim covers g0..g3: g4/g5 probe misses, one dim row ('gx') never
    // matches — outer padding and FULL OUTER tails cross the spill path.
    db.execute("CREATE TABLE dim (id VARCHAR, name VARCHAR)")
        .unwrap();
    for d in 0..4 {
        db.execute(&format!("INSERT INTO dim VALUES ('g{d}', 'name{d}')"))
            .unwrap();
    }
    db.execute("INSERT INTO dim VALUES ('gx', 'lonely')")
        .unwrap();
    if !rows.is_empty() {
        let values: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "('g{}', {}, {})",
                    r.g,
                    r.v,
                    if r.tag { "TRUE" } else { "FALSE" }
                )
            })
            .collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
    }
    db
}

fn check_workload(rows: &[Row]) -> Result<(), TestCaseError> {
    let baseline = database(1, None, rows);
    for workers in [1usize, 2, 4] {
        for budget in budgets() {
            if workers == 1 && budget.is_none() {
                continue; // that IS the baseline
            }
            let db = database(workers, budget, rows);
            for q in queries() {
                let expect = baseline.query(q).unwrap().rows;
                let got = db.query(q).unwrap().rows;
                prop_assert_eq!(
                    &expect,
                    &got,
                    "workers={} budget={:?} disagree on {}",
                    workers,
                    budget,
                    q
                );
            }
            // A budget one byte wide cannot hold a single row: every
            // join build / group fold with input must have spilled.
            if budget == Some(1) && !rows.is_empty() {
                let stats = db.spill_stats();
                prop_assert!(
                    stats.spilled() && stats.spilled_rows > 0,
                    "workers={} at 1-byte budget never spilled: {:?}",
                    workers,
                    stats
                );
                prop_assert!(
                    stats.rehydrated_rows > 0,
                    "spilled rows were never read back: {:?}",
                    stats
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn spilled_results_agree_with_in_memory(
        rows in prop::collection::vec(row_strategy(), 0..200),
    ) {
        check_workload(&rows)?;
    }
}

/// Deterministic pin crossing batch (1024) and morsel (32) boundaries:
/// 1025 rows exercise partition buffers, write-buffer flushes, and
/// multi-frame rehydration on every query class.
#[test]
fn spill_agrees_at_batch_boundary_sizes() {
    for n in [0usize, 1, 1023, 1024, 1025] {
        let rows: Vec<Row> = (0..n)
            .map(|i| Row {
                g: (i % 6) as u8,
                v: ((i * 37) % 199) as i32 - 99,
                tag: i % 3 == 0,
            })
            .collect();
        check_workload(&rows).unwrap();
    }
}

/// Tiny budgets must take the spill path (counter proof), and the
/// recursive re-partition path must fire for heavily duplicated keys
/// (one key's rows all land in one partition at every level until the
/// depth cap).
#[test]
fn constrained_budgets_actually_spill() {
    let rows: Vec<Row> = (0..600)
        .map(|i| Row {
            g: (i % 2) as u8, // two heavy keys → fat partitions
            v: i % 50,
            tag: i % 2 == 0,
        })
        .collect();
    let db = database(1, Some(256), &rows);
    for q in queries() {
        db.query(q).unwrap();
    }
    let stats = db.spill_stats();
    assert!(stats.spilled(), "256-byte budget must spill: {stats:?}");
    assert!(stats.spill_files > 0 && stats.spilled_bytes > 0);
    assert!(stats.rehydrated_partitions > 0);
    assert!(
        stats.repartitions > 0,
        "duplicate-heavy keys must trigger recursive re-partitioning: {stats:?}"
    );

    // An unbounded session running the same workload never spills.
    let db = database(1, None, &rows);
    for q in queries() {
        db.query(q).unwrap();
    }
    assert!(!db.spill_stats().spilled());
}

/// No spill temp files may outlive the queries that created them, even
/// when eviction goes through the background writer thread at high
/// parallelism: every `openivm-spill-*` file in the session's spill
/// directory must be gone once results are materialized.
#[test]
fn background_writer_leaves_no_spill_files_behind() {
    let dir = std::env::temp_dir().join(format!("openivm-leakcheck-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let leaked = |dir: &std::path::Path| -> Vec<String> {
        std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("openivm-spill-"))
            .collect()
    };
    let rows: Vec<Row> = (0..1500)
        .map(|i| Row {
            g: (i % 6) as u8,
            v: (i % 211) - 100,
            tag: i % 2 == 0,
        })
        .collect();
    for workers in [1usize, 4] {
        let mut db = database(workers, Some(1), &rows);
        db.set_spill_dir(dir.clone());
        for q in queries() {
            db.query(q).unwrap();
        }
        let stats = db.spill_stats();
        assert!(
            stats.spill_files > 0,
            "workers={workers}: writer thread never produced a file: {stats:?}"
        );
        assert_eq!(
            leaked(&dir),
            Vec::<String>::new(),
            "workers={workers}: spill files leaked after queries completed"
        );
        drop(db);
        assert_eq!(
            leaked(&dir),
            Vec::<String>::new(),
            "workers={workers}: spill files leaked after session drop"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The memory budget holds end-to-end at parallelism 4: on a workload
/// whose working set is far larger than the budget, the peak of
/// budget-accounted bytes stays within the limit plus a small fixed
/// allowance (per-worker partition write buffers plus the bounded
/// writer queue) — proof that breaker inputs are never fully staged in
/// memory on the parallel path.
#[test]
fn parallel_spill_peak_memory_stays_near_budget() {
    const LIMIT: u64 = 64 * 1024;
    const SLACK: u64 = 512 * 1024;
    let mut db = Database::new();
    db.set_parallelism(4);
    db.set_memory_budget(Some(LIMIT as usize));
    db.execute("CREATE TABLE big (g VARCHAR, v INTEGER, tag BOOLEAN)")
        .unwrap();
    for chunk in 0..10 {
        let values: Vec<String> = (0..5000)
            .map(|i| {
                let i = chunk * 5000 + i;
                format!(
                    "('g{}', {}, {})",
                    i % 97,
                    i % 1009,
                    if i % 2 == 0 { "TRUE" } else { "FALSE" }
                )
            })
            .collect();
        db.execute(&format!("INSERT INTO big VALUES {}", values.join(", ")))
            .unwrap();
    }
    db.query("SELECT g, SUM(v) AS s, COUNT(*) AS c FROM big GROUP BY g")
        .unwrap();
    db.query("SELECT DISTINCT g, v FROM big").unwrap();
    db.query("SELECT a.g, COUNT(*) AS c FROM big AS a JOIN big AS b ON a.v = b.v GROUP BY a.g")
        .unwrap();
    let stats = db.spill_stats();
    assert!(
        stats.spilled_bytes > 4 * SLACK,
        "working set must dwarf the slack allowance for the bound to mean \
         anything: {stats:?}"
    );
    assert!(
        stats.peak_used <= LIMIT + SLACK,
        "peak accounted bytes {} exceed budget {} + allowance {}: {stats:?}",
        stats.peak_used,
        LIMIT,
        SLACK
    );
    assert!(
        stats.queue_high_water > 0,
        "eviction never reached the background writer queue: {stats:?}"
    );
}

/// The IVM pipeline end-to-end stays consistent when the OLAP engine
/// runs under a constrained budget: ingest → refresh → view equals
/// recomputation, at serial and parallel settings.
#[test]
fn ivm_refresh_consistent_under_memory_budget() {
    use openivm::ivm_core::IvmSession;
    use openivm::ivm_engine::Value;
    for workers in [1usize, 4] {
        let mut ivm = IvmSession::with_defaults();
        ivm.set_parallelism(workers);
        ivm.set_memory_budget(Some(4 * 1024));
        ivm.database_mut().set_morsel_size(64);
        ivm.execute("CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)")
            .unwrap();
        ivm.execute(
            "CREATE MATERIALIZED VIEW qg AS \
             SELECT group_index, SUM(group_value) AS total \
             FROM groups GROUP BY group_index",
        )
        .unwrap();
        let changes: Vec<(Vec<Value>, bool)> = (0..500)
            .map(|i| {
                (
                    vec![Value::from(format!("g{}", i % 13)), Value::Integer(i % 29)],
                    true,
                )
            })
            .collect();
        ivm.ingest_deltas("groups", &changes).unwrap();
        ivm.refresh("qg").unwrap();
        assert!(ivm.check_consistency("qg").unwrap(), "workers={workers}");
        assert!(
            ivm.spill_stats().spilled(),
            "a 4KB budget over 500 grouped rows must spill (workers={workers})"
        );
    }
}
