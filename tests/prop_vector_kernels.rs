//! Differential testing of the vectorized expression kernels: for random
//! expression trees over random columns (NULLs included, mixed types,
//! error-capable arithmetic), `VectorKernel::select` / `eval_column` must
//! agree with row-at-a-time `BoundExpr::eval` — same selected rows, same
//! output values, and errors on exactly the same inputs (short-circuit
//! `AND`/`OR` semantics must be preserved, so a row that `eval` never
//! divides on can't raise a division error vectorized).

use openivm::ivm_engine::exec::RowBatch;
use openivm::ivm_engine::expr::{BoundExpr, ScalarFunc, VectorKernel};
use openivm::ivm_engine::types::DataType;
use openivm::ivm_engine::value::Value;
use openivm::ivm_sql::ast::{BinaryOp, UnaryOp};
use proptest::prelude::*;

/// Column layout shared by every case:
/// 0: INTEGER (nullable), 1: INTEGER, 2: VARCHAR (nullable),
/// 3: BOOLEAN (nullable), 4: DOUBLE.
const WIDTH: usize = 5;

fn value_strategy(col: usize) -> BoxedStrategy<Value> {
    match col {
        0 => prop_oneof![
            3 => (-50i64..50).prop_map(Value::Integer),
            1 => Just(Value::Null),
        ]
        .boxed(),
        1 => (-50i64..50).prop_map(Value::Integer).boxed(),
        2 => prop_oneof![
            3 => "[a-c]{0,2}".prop_map(Value::from),
            1 => Just(Value::Null),
        ]
        .boxed(),
        3 => prop_oneof![
            2 => any::<bool>().prop_map(Value::Boolean),
            1 => Just(Value::Null),
        ]
        .boxed(),
        _ => (-5.0f64..5.0).prop_map(Value::Double).boxed(),
    }
}

fn rows_strategy() -> impl Strategy<Value = Vec<Vec<Value>>> {
    let row = (
        value_strategy(0),
        value_strategy(1),
        value_strategy(2),
        value_strategy(3),
        value_strategy(4),
    );
    proptest::collection::vec(row, 0..40).prop_map(|rows| {
        let mut columns: Vec<Vec<Value>> =
            (0..WIDTH).map(|_| Vec::with_capacity(rows.len())).collect();
        for (a, b, c, d, e) in rows {
            columns[0].push(a);
            columns[1].push(b);
            columns[2].push(c);
            columns[3].push(d);
            columns[4].push(e);
        }
        columns
    })
}

fn col(index: usize, ty: DataType) -> BoundExpr {
    BoundExpr::Column {
        index,
        ty: Some(ty),
        name: format!("c{index}"),
    }
}

fn leaf_strategy() -> BoxedStrategy<BoundExpr> {
    prop_oneof![
        Just(col(0, DataType::Integer)),
        Just(col(1, DataType::Integer)),
        Just(col(2, DataType::Varchar)),
        Just(col(3, DataType::Boolean)),
        Just(col(4, DataType::Double)),
        (-10i64..10).prop_map(|v| BoundExpr::Literal(Value::Integer(v))),
        (-3.0f64..3.0).prop_map(|v| BoundExpr::Literal(Value::Double(v))),
        "[a-c]{0,2}".prop_map(|s| BoundExpr::Literal(Value::from(s))),
        any::<bool>().prop_map(|b| BoundExpr::Literal(Value::Boolean(b))),
        Just(BoundExpr::Literal(Value::Null)),
    ]
    .boxed()
}

fn cmp_ops() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Eq),
        Just(BinaryOp::NotEq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::LtEq),
        Just(BinaryOp::Gt),
        Just(BinaryOp::GtEq),
    ]
}

fn arith_ops() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Plus),
        Just(BinaryOp::Minus),
        Just(BinaryOp::Multiply),
        Just(BinaryOp::Divide),
        Just(BinaryOp::Modulo),
    ]
}

fn bool_ops() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![Just(BinaryOp::And), Just(BinaryOp::Or)]
}

fn expr_strategy() -> impl Strategy<Value = BoundExpr> {
    leaf_strategy().prop_recursive(3, 48, 3, move |inner| {
        prop_oneof![
            // Comparisons and arithmetic over arbitrary (possibly
            // ill-typed, possibly zero-divisor) operands.
            (cmp_ops(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| {
                BoundExpr::Binary {
                    op,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }),
            (arith_ops(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| {
                BoundExpr::Binary {
                    op,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }),
            (bool_ops(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| {
                BoundExpr::Binary {
                    op,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }),
            inner.clone().prop_map(|e| BoundExpr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            }),
            inner.clone().prop_map(|e| BoundExpr::Unary {
                op: UnaryOp::Minus,
                expr: Box::new(e),
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| BoundExpr::IsNull {
                expr: Box::new(e),
                negated,
            }),
            // CASE exercises the row-at-a-time fallback inside kernels.
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(w, t, e)| {
                BoundExpr::Case {
                    branches: vec![(w, t)],
                    else_result: Some(Box::new(e)),
                }
            }),
            (
                inner.clone(),
                proptest::collection::vec(inner.clone(), 1..3),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| BoundExpr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(|args| BoundExpr::ScalarFn {
                func: ScalarFunc::Coalesce,
                args,
            }),
        ]
    })
}

/// Row-at-a-time reference: exactly what `FilterOp` used to do.
fn eval_select(expr: &BoundExpr, batch: &RowBatch<'_>) -> Result<Vec<u32>, String> {
    let mut keep = Vec::new();
    for row in 0..batch.num_rows() {
        match expr.eval(&batch.row_view(row)) {
            Ok(v) => {
                if v.as_bool() == Some(true) {
                    keep.push(row as u32);
                }
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    Ok(keep)
}

fn eval_project(expr: &BoundExpr, batch: &RowBatch<'_>) -> Result<Vec<Value>, String> {
    (0..batch.num_rows())
        .map(|row| expr.eval(&batch.row_view(row)).map_err(|e| e.to_string()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn kernels_agree_with_row_at_a_time_eval(
        columns in rows_strategy(),
        expr in expr_strategy(),
    ) {
        let batch = RowBatch::from_columns(columns);
        let kernel = VectorKernel::compile(&expr);

        // Predicate semantics: the selected row sets must be identical,
        // and an error must occur on both sides or neither.
        let expected = eval_select(&expr, &batch);
        let got = kernel.select(&batch).map_err(|e| e.to_string());
        match (&expected, &got) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "selection mismatch for {:?}", expr),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(
                false,
                "error divergence for {:?}: eval={:?} kernel={:?}",
                expr, a, b
            ),
        }

        // Projection semantics: same values (SQL equality — 5 and 5.0 are
        // the same value), same error behavior.
        let expected = eval_project(&expr, &batch);
        let got = kernel.eval_column(&batch).map_err(|e| e.to_string());
        match (&expected, &got) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "projection mismatch for {:?}", expr),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(
                false,
                "error divergence for {:?}: eval={:?} kernel={:?}",
                expr, a, b
            ),
        }
    }
}
