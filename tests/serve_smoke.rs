//! End-to-end smoke test of `openivm --serve`: boot the real binary on an
//! ephemeral port, then drive it with 4 concurrent read clients × 100
//! queries each while a writer client streams inserts (each of which
//! triggers incremental view maintenance). Every reply must be a
//! well-formed `ROW*`/`OK` frame — an `ERR` or a torn frame fails.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const CLIENTS: usize = 4;
const QUERIES: usize = 100;

/// Kill the server on drop so a failing assert can't leak the child.
struct Server(Child);

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn start_server() -> (Server, String) {
    let schema = "CREATE TABLE t (g VARCHAR, v INTEGER); \
                  CREATE MATERIALIZED VIEW mv AS \
                  SELECT g, COUNT(*) AS c, SUM(v) AS s FROM t GROUP BY g";
    let mut child = Command::new(env!("CARGO_BIN_EXE_openivm"))
        .args(["--serve", "127.0.0.1:0", "--schema", schema])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn openivm --serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read banner");
    let addr = line
        .trim()
        .strip_prefix("openivm: serving on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    (Server(child), addr)
}

fn connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    (BufReader::new(stream.try_clone().unwrap()), stream)
}

/// Send one statement, collect the reply frame. Returns (rows, ok_count).
fn roundtrip(
    input: &mut BufReader<TcpStream>,
    out: &mut TcpStream,
    sql: &str,
) -> (Vec<String>, usize) {
    writeln!(out, "{sql}").expect("send");
    let mut rows = Vec::new();
    loop {
        let mut line = String::new();
        assert!(
            input.read_line(&mut line).expect("reply") > 0,
            "server hung up"
        );
        let line = line.trim_end().to_string();
        if let Some(rest) = line.strip_prefix("OK ") {
            return (rows, rest.parse().expect("OK count"));
        }
        assert!(!line.starts_with("ERR"), "server error for {sql:?}: {line}");
        rows.push(
            line.strip_prefix("ROW\t")
                .unwrap_or_else(|| panic!("torn frame for {sql:?}: {line:?}"))
                .to_string(),
        );
    }
}

#[test]
fn four_clients_hundred_queries_during_active_refresh() {
    let (_server, addr) = start_server();

    std::thread::scope(|scope| {
        // Writer client: stream inserts; each one runs view maintenance
        // server-side, so reads below race an actively refreshing view.
        let writer_addr = addr.clone();
        let writer = scope.spawn(move || {
            let (mut input, mut out) = connect(&writer_addr);
            for i in 0..200 {
                let (_, n) = roundtrip(
                    &mut input,
                    &mut out,
                    &format!("INSERT INTO t VALUES ('g{}', {i})", i % 8),
                );
                assert_eq!(n, 1, "insert {i} affected {n} rows");
            }
        });

        let mut readers = Vec::new();
        for _ in 0..CLIENTS {
            let addr = addr.clone();
            readers.push(scope.spawn(move || {
                let (mut input, mut out) = connect(&addr);
                for q in 0..QUERIES {
                    let sql = if q % 2 == 0 {
                        "SELECT g, c, s FROM mv"
                    } else {
                        "SELECT g, COUNT(*) AS c, SUM(v) AS s FROM t GROUP BY g"
                    };
                    let (rows, n) = roundtrip(&mut input, &mut out, sql);
                    assert_eq!(rows.len(), n, "frame count mismatch");
                    for row in &rows {
                        assert_eq!(row.split('\t').count(), 3, "bad row {row:?}");
                    }
                }
            }));
        }

        writer.join().expect("writer client panicked");
        for r in readers {
            r.join().expect("reader client panicked");
        }

        // Quiesced totals: all 200 inserts visible through both paths.
        let (mut input, mut out) = connect(&addr);
        let (rows, _) = roundtrip(&mut input, &mut out, "SELECT SUM(c) AS total FROM mv");
        assert_eq!(rows, vec!["200".to_string()]);
        let (rows, _) = roundtrip(&mut input, &mut out, "SELECT COUNT(*) AS total FROM t");
        assert_eq!(rows, vec!["200".to_string()]);
        // Clean stop: the server checkpoints, drops its session (and
        // any ephemeral durable directory), acks, and exits.
        let (rows, n) = roundtrip(&mut input, &mut out, "SHUTDOWN");
        assert!(rows.is_empty() && n == 0, "unexpected shutdown reply");
    });
}
