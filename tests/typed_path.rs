//! SQL-level equivalence suite for the typed columnar key path
//! (`ivm_engine::exec::typed`): queries whose keys take the packed
//! `(tag, word)` arena must produce exactly the rows (order included)
//! that `Vec<Value>` grouping semantics dictate — across INTEGER≡DOUBLE
//! grouping, NULL keys, empty-string vs NULL text, NaN keys, and the
//! beyond-±2^53 integers that force the row-store fallback.
//!
//! The typed/fallback row counters are process-wide atomics, so every
//! test serializes on one mutex before resetting them.

use std::sync::{Mutex, MutexGuard, OnceLock};

use openivm::ivm_engine::{reset_typed_path_stats, typed_path_stats, Database, Value};

/// Serialize tests that reset/read the process-wide typed-path counters.
fn stats_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poison) => poison.into_inner(),
    }
}

fn i(v: i64) -> Value {
    Value::Integer(v)
}

fn d(v: f64) -> Value {
    Value::Double(v)
}

/// INTEGER and DOUBLE key values that compare equal under grouping
/// equality (3 ≡ 3.0) land in one group, keyed by the first-seen value;
/// NULL keys form one group of their own. The whole workload stays on
/// the typed path — zero fallback rows.
#[test]
fn mixed_int_double_keys_group_together() {
    let _g = stats_lock();
    let mut db = Database::new();
    db.execute("CREATE TABLE t (k DOUBLE, v INTEGER)").unwrap();
    {
        let t = db.catalog_mut().table_mut("t").unwrap();
        // DOUBLE accepts INTEGER values as-is (widening), so one column
        // carries both runtime types — the grouping-equality stress case.
        for (n, k) in [i(3), d(3.0), i(4), d(4.5), Value::Null, Value::Null, d(3.0)]
            .into_iter()
            .enumerate()
        {
            t.insert(vec![k, i(n as i64)]).unwrap();
        }
    }
    reset_typed_path_stats();
    let out = db.query("SELECT k, COUNT(*) FROM t GROUP BY k").unwrap();
    // First-seen group order, first-seen key representative.
    assert_eq!(
        out.rows,
        vec![
            vec![i(3), i(3)],
            vec![i(4), i(1)],
            vec![d(4.5), i(1)],
            vec![Value::Null, i(2)],
        ]
    );
    let (typed, fallback) = typed_path_stats();
    assert!(typed > 0, "grouping must take the typed path");
    assert_eq!(fallback, 0, "no key here is unrepresentable");
}

/// DISTINCT over text: the empty string and NULL are different keys (one
/// row each), and duplicate strings deduplicate through the interned
/// text column.
#[test]
fn distinct_empty_string_vs_null_text() {
    let _g = stats_lock();
    let mut db = Database::new();
    db.execute("CREATE TABLE t (s VARCHAR)").unwrap();
    {
        let t = db.catalog_mut().table_mut("t").unwrap();
        for s in [
            Value::from(""),
            Value::Null,
            Value::from(""),
            Value::Null,
            Value::from("a"),
        ] {
            t.insert(vec![s]).unwrap();
        }
    }
    reset_typed_path_stats();
    let out = db.query("SELECT DISTINCT s FROM t").unwrap();
    assert_eq!(
        out.rows,
        vec![
            vec![Value::from("")],
            vec![Value::Null],
            vec![Value::from("a")]
        ]
    );
    let (typed, fallback) = typed_path_stats();
    assert!(typed > 0, "text keys must take the typed path");
    assert_eq!(fallback, 0);
}

/// NaN keys: grouping equality treats NaN as equal to itself (one
/// group), and ORDER BY's total order places NaN after every finite
/// double.
#[test]
fn nan_keys_group_and_order() {
    let _g = stats_lock();
    let mut db = Database::new();
    db.execute("CREATE TABLE t (k DOUBLE)").unwrap();
    {
        let t = db.catalog_mut().table_mut("t").unwrap();
        for k in [d(f64::NAN), d(1.0), d(f64::NAN)] {
            t.insert(vec![k]).unwrap();
        }
    }
    let grouped = db.query("SELECT k, COUNT(*) FROM t GROUP BY k").unwrap();
    assert_eq!(grouped.rows.len(), 2, "NaN must form exactly one group");
    assert_eq!(
        grouped.rows[0][1],
        i(2),
        "both NaNs in the first-seen group"
    );
    assert_eq!(grouped.rows[1], vec![d(1.0), i(1)]);
    let ordered = db.query("SELECT k FROM t ORDER BY k").unwrap();
    assert_eq!(ordered.rows[0], vec![d(1.0)], "finite doubles sort first");
    assert!(
        ordered.rows[1][0].as_f64().unwrap().is_nan()
            && ordered.rows[2][0].as_f64().unwrap().is_nan()
    );
}

/// Integers beyond ±2^53 cannot be packed into the f64-keyed word
/// column; the store demotes to rows (counted as fallback) and the
/// answers stay exact — 2^53 and 2^53 + 1 are distinct groups even
/// though they share an f64 image (and therefore a hash).
#[test]
fn big_int_keys_fall_back_without_wrong_answers() {
    let _g = stats_lock();
    const BIG: i64 = 1 << 53;
    let mut db = Database::new();
    db.execute("CREATE TABLE t (k INTEGER)").unwrap();
    {
        let t = db.catalog_mut().table_mut("t").unwrap();
        for k in [BIG, BIG + 1, BIG, i64::MAX, i64::MIN, BIG + 1] {
            t.insert(vec![i(k)]).unwrap();
        }
    }
    reset_typed_path_stats();
    let out = db.query("SELECT k, COUNT(*) FROM t GROUP BY k").unwrap();
    assert_eq!(
        out.rows,
        vec![
            vec![i(BIG), i(2)],
            vec![i(BIG + 1), i(2)],
            vec![i(i64::MAX), i(1)],
            vec![i(i64::MIN), i(1)],
        ]
    );
    let (_, fallback) = typed_path_stats();
    assert!(fallback > 0, "beyond-2^53 keys must be counted as fallback");
}

/// Join-key equality through the typed probe: an INTEGER probe key
/// equals a DOUBLE build key when their grouping comparison says so
/// (2^53 + 1 ≡ 9007199254740992.0 — the widened image), but never
/// equals a *different* INTEGER that shares the same f64 image and
/// hash. This pins the exact-compare matrix of the probe-side
/// fallback.
#[test]
fn join_probe_exactness_beyond_2_53() {
    let _g = stats_lock();
    const BIG: i64 = 1 << 53;
    let mut db = Database::new();
    db.execute("CREATE TABLE l (k INTEGER, tag VARCHAR)")
        .unwrap();
    db.execute("CREATE TABLE rd (k DOUBLE, tag VARCHAR)")
        .unwrap();
    db.execute("CREATE TABLE ri (k INTEGER, tag VARCHAR)")
        .unwrap();
    {
        let t = db.catalog_mut().table_mut("l").unwrap();
        t.insert(vec![i(BIG + 1), Value::from("probe")]).unwrap();
    }
    {
        let t = db.catalog_mut().table_mut("rd").unwrap();
        t.insert(vec![d(BIG as f64), Value::from("double")])
            .unwrap();
    }
    {
        let t = db.catalog_mut().table_mut("ri").unwrap();
        t.insert(vec![i(BIG), Value::from("int")]).unwrap();
    }
    // Probe Integer(2^53+1) vs build Double(2^53 as f64): the grouping
    // comparison widens the integer, so they match.
    let vs_double = db
        .query("SELECT l.tag, rd.tag FROM l JOIN rd ON l.k = rd.k")
        .unwrap();
    assert_eq!(
        vs_double.rows,
        vec![vec![Value::from("probe"), Value::from("double")]]
    );
    // Probe Integer(2^53+1) vs build Integer(2^53): equal hashes, equal
    // f64 images — but integer comparison is exact, so no match.
    let vs_int = db
        .query("SELECT l.tag, ri.tag FROM l JOIN ri ON l.k = ri.k")
        .unwrap();
    assert!(vs_int.rows.is_empty(), "{:?}", vs_int.rows);
}

/// A plain integer join + GROUP BY workload never falls back — the
/// acceptance gate that integer keys take the typed path silently is
/// observable through the public counters.
#[test]
fn integer_workload_is_fallback_free() {
    let _g = stats_lock();
    let mut db = Database::new();
    db.execute("CREATE TABLE f (k INTEGER, v INTEGER)").unwrap();
    db.execute("CREATE TABLE dim (k INTEGER, w INTEGER)")
        .unwrap();
    {
        let t = db.catalog_mut().table_mut("f").unwrap();
        for n in 0..3000i64 {
            t.insert(vec![i(n % 97), i(n)]).unwrap();
        }
    }
    {
        let t = db.catalog_mut().table_mut("dim").unwrap();
        for n in 0..97i64 {
            t.insert(vec![i(n), i(n * 10)]).unwrap();
        }
    }
    reset_typed_path_stats();
    let joined = db
        .query("SELECT f.k, dim.w FROM f JOIN dim ON f.k = dim.k")
        .unwrap();
    assert_eq!(joined.rows.len(), 3000);
    let grouped = db
        .query("SELECT k, COUNT(*), SUM(v) FROM f GROUP BY k")
        .unwrap();
    assert_eq!(grouped.rows.len(), 97);
    let distinct = db.query("SELECT DISTINCT k FROM f").unwrap();
    assert_eq!(distinct.rows.len(), 97);
    let (typed, fallback) = typed_path_stats();
    assert!(typed > 0);
    assert_eq!(fallback, 0, "integer keys must never fall back");
}
