//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the `ivm-bench` benches use — benchmark
//! groups, [`BenchmarkId`], `bench_function` / `bench_with_input`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a plain
//! mean/min/max timing loop instead of criterion's statistical machinery.
//! Output is one line per benchmark on stdout.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: a function name plus an
/// optional parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a parameter, rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Run `f` once per sample, timing each run.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        self.samples.clear();
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark (min 3).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.render(), |b| f(b));
        self
    }

    /// Benchmark a closure parameterized by an input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.render(), |b| f(b, input));
        self
    }

    fn run(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            samples: Vec::new(),
        };
        // One untimed warm-up pass, as criterion does.
        let mut warmup = Bencher {
            iters: 1,
            samples: Vec::new(),
        };
        f(&mut warmup);
        f(&mut bencher);
        let full = format!("{}/{}", self.name, label);
        self.criterion.report(&full, &bencher.samples);
    }

    /// Finish the group (report flushing is immediate; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    fn report(&mut self, label: &str, samples: &[Duration]) {
        if samples.is_empty() {
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "{label:<55} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  (n={})",
            samples.len()
        );
        self.results.push((label.to_string(), mean));
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("f", |b| b.iter(|| 2 + 2));
            g.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &n| {
                b.iter(|| n * 2)
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert!(c.results[0].0.starts_with("g/f"));
        assert!(c.results[1].0.contains("with_input/7"));
    }
}
