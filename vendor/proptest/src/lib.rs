//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use: the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`]
//! macros, a [`Strategy`] trait with `prop_map` and `prop_recursive`,
//! integer/float range strategies, [`any`], regex-lite string strategies,
//! [`collection::vec`], and [`option::of`].
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failing case reports the generated input verbatim.
//! - **Deterministic seeding.** Each test derives its RNG stream from the
//!   test name, so runs are reproducible; set `PROPTEST_SEED` to explore a
//!   different stream.

#![warn(missing_docs)]

pub mod strategy;

pub use strategy::{any, BoxedStrategy, Just, Strategy};

use std::fmt::Debug;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration. Only `cases` is honored; the struct keeps the
/// functional-update construction pattern of the real crate.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Accepted for API parity; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Failure raised by `prop_assert*` macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Collection strategies (`vec`).
pub mod collection {
    use std::ops::Range;

    use crate::strategy::{Strategy, TestRng};

    /// Sizes accepted by [`vec`]: a fixed size or a half-open range.
    pub trait SizeRange {
        /// Draw one length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.below(self.end.max(self.start + 1) - self.start) + self.start
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Option strategies (`of`).
pub mod option {
    use crate::strategy::{Strategy, TestRng};

    /// Strategy producing `Option`s of an inner strategy's values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.new_value(rng))
            }
        }
    }
}

/// Module alias mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::{collection, option};
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, TestCaseError,
        TestCaseResult,
    };
}

/// Drive one property: `cases` random inputs through `test`.
///
/// Used by the [`proptest!`] macro expansion; not part of the mirrored API.
pub fn run_property<S>(
    config: &ProptestConfig,
    name: &str,
    strategy: &S,
    mut test: impl FnMut(S::Value) -> TestCaseResult,
) where
    S: Strategy,
    S::Value: Debug,
{
    let base = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or(0xC0FFEE),
        Err(_) => 0xC0FFEE,
    };
    // Per-test stream so sibling properties explore different inputs.
    let seed = name
        .bytes()
        .fold(base, |h, b| h.wrapping_mul(0x100000001B3) ^ u64::from(b));
    let mut rng = strategy::TestRng::new(StdRng::seed_from_u64(seed));
    for case in 0..config.cases {
        let value = strategy.new_value(&mut rng);
        let rendered = format!("{value:?}");
        match catch_unwind(AssertUnwindSafe(|| test(value))) {
            Ok(Ok(())) => {}
            Ok(Err(TestCaseError(msg))) => {
                panic!(
                    "property {name} failed at case {case}/{}: {msg}\n\
                     input: {rendered}\n(seed {seed}; set PROPTEST_SEED to vary)",
                    config.cases
                );
            }
            Err(payload) => {
                eprintln!(
                    "property {name} panicked at case {case}/{} on input: {rendered}\n\
                     (seed {seed}; set PROPTEST_SEED to vary)",
                    config.cases
                );
                resume_unwind(payload);
            }
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running the body over random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = ($($strat,)+);
            $crate::run_property(&config, stringify!($name), &strategy, |($($arg,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Assert inside a property body; failure reports the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Choose between strategies, optionally weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}
