//! The [`Strategy`] trait and the built-in strategies.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// The RNG handed to strategies during generation.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Wrap a seeded generator.
    pub fn new(rng: StdRng) -> TestRng {
        TestRng(rng)
    }

    /// Uniform value in `[0, n)`; `n` must be > 0.
    pub fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.0.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Borrow the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of random values. Object-safe core (`new_value`) plus
/// `Sized`-only combinators, mirroring the real crate's surface.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build recursive values: `recurse` receives a strategy for smaller
    /// instances and returns the strategy for one more level. `depth`
    /// bounds the recursion; the size hints are accepted for API parity.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            recurse: Arc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Weighted choice between strategies (the [`crate::prop_oneof!`] output).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms. Weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as usize) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// Output of [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T: 'static> Recursive<T> {
    fn level(&self, depth: u32) -> BoxedStrategy<T> {
        if depth == 0 {
            return self.base.clone();
        }
        let deeper = self.level(depth - 1);
        // Leaves outweigh recursion so expected sizes stay bounded even
        // when a level draws several children.
        let inner = Union::new(vec![(2, self.base.clone()), (1, deeper)]).boxed();
        (self.recurse)(inner)
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        if rng.below(4) == 0 {
            self.base.new_value(rng)
        } else {
            self.level(self.depth).new_value(rng)
        }
    }
}

impl<T: rand::SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.clone())
    }
}

/// Primitive types with a canonical full-domain strategy.
pub trait ArbitraryPrim: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryPrim for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryPrim for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().next_u64() & 1 == 1
    }
}

impl ArbitraryPrim for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite doubles over a wide but well-behaved span.
        (rng.unit() - 0.5) * 2e12
    }
}

/// Strategy over a primitive type's full domain (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for a primitive type: `any::<bool>()` etc.
pub fn any<T: ArbitraryPrim>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: ArbitraryPrim> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )+};
}

impl_strategy_for_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------- regex-lite

/// One pattern atom: a set of character ranges plus a repetition count.
#[derive(Debug, Clone)]
struct Atom {
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

/// Parse the regex subset the workspace's patterns use: literal characters,
/// character classes `[a-z0-9_]` (with ranges), `\PC` (printable ASCII),
/// and `{m}` / `{m,n}` repetition suffixes.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let ranges = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed character class in pattern {pattern}"))
                    + i;
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                i = close + 1;
                ranges
            }
            '\\' => {
                // Only `\PC` ("not a control character") is supported;
                // generate printable ASCII for it.
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "unsupported escape in pattern {pattern}"
                );
                i += 3;
                vec![(' ', '~')]
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
                None => {
                    let n = body.parse().unwrap();
                    (n, n)
                }
            };
            i = close + 1;
            (lo, hi)
        } else {
            (1, 1)
        };
        atoms.push(Atom { ranges, min, max });
    }
    atoms
}

fn sample_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    let n = atom.min + rng.below(atom.max - atom.min + 1);
    let total: usize = atom
        .ranges
        .iter()
        .map(|(lo, hi)| (*hi as usize) - (*lo as usize) + 1)
        .sum();
    for _ in 0..n {
        let mut pick = rng.below(total);
        for (lo, hi) in &atom.ranges {
            let span = (*hi as usize) - (*lo as usize) + 1;
            if pick < span {
                out.push(char::from_u32(*lo as u32 + pick as u32).expect("valid char range"));
                break;
            }
            pick -= span;
        }
    }
}

/// String patterns: a `&str` is a regex-lite strategy producing matching
/// strings, mirroring proptest's regex string strategies.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            sample_atom(atom, rng, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::new(StdRng::seed_from_u64(1))
    }

    #[test]
    fn ranges_and_any() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (0u8..5).new_value(&mut r);
            assert!(v < 5);
            let w = (-50i32..50).new_value(&mut r);
            assert!((-50..50).contains(&w));
            let f = (-1e6f64..1e6).new_value(&mut r);
            assert!((-1e6..1e6).contains(&f));
            let _: u64 = any::<u64>().new_value(&mut r);
        }
    }

    #[test]
    fn pattern_strategies_match_shape() {
        let mut r = rng();
        for _ in 0..500 {
            let s = "[a-z][a-z0-9_]{0,8}".new_value(&mut r);
            assert!(!s.is_empty() && s.len() <= 9, "bad length: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let p = "\\PC{0,80}".new_value(&mut r);
            assert!(p.len() <= 80);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));

            let ab = "[ab]{1,3}".new_value(&mut r);
            assert!((1..=3).contains(&ab.len()));
            assert!(ab.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    #[test]
    fn map_union_recursive_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 3, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut r = rng();
        let mut saw_node = false;
        let mut saw_leaf = false;
        for _ in 0..200 {
            match strat.new_value(&mut r) {
                Tree::Leaf(v) => {
                    assert!(v < 10);
                    saw_leaf = true;
                }
                Tree::Node(_) => saw_node = true,
            }
        }
        assert!(saw_leaf && saw_node, "recursion should produce both shapes");
    }

    #[test]
    fn union_respects_weights() {
        let u = Union::new(vec![(9, Just(0u8).boxed()), (1, Just(1u8).boxed())]);
        let mut r = rng();
        let ones = (0..1000).filter(|_| u.new_value(&mut r) == 1).count();
        assert!((20..350).contains(&ones), "weight-1 arm hit {ones}/1000");
    }
}
