//! Offline stand-in for the `rand` crate, implementing the subset of the
//! 0.8 API this workspace uses: [`rngs::StdRng`], [`SeedableRng`], and
//! [`Rng::gen_range`] / [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — statistically fine for workload
//! generation, not cryptographic. Unlike the real crate, `StdRng` makes no
//! stability promise beyond this workspace.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[low, high)`. `high` must be > `low`.
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
    /// The successor of `v`, saturating (for inclusive ranges).
    fn successor(v: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                // Widen through i128 so signed spans cannot overflow.
                let span = (high as i128) - (low as i128);
                let v = (rng.next_u64() as i128).rem_euclid(span);
                (low as i128 + v) as $t
            }
            fn successor(v: Self) -> Self {
                v.saturating_add(1)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
    fn successor(v: Self) -> Self {
        // Inclusive float ranges sample the closed interval directly.
        v
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        let (low, high) = self.into_inner();
        T::sample_half_open(rng, low, T::successor(high))
    }
}

/// The core generator interface: a source of 64-bit values.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic, seedable generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i32..50);
            assert!((-50..50).contains(&v));
            let w = rng.gen_range(1..=5i64);
            assert!((1..=5).contains(&w));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 gave {hits}/10000");
    }

    #[test]
    fn covers_full_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
